#include "interop/supervised.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "catalog/spec_json.hpp"
#include "common/json.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "frameworks/version_policy.hpp"
#include "soap/version.hpp"

namespace wsx::interop {
namespace {

Error bad_config(const std::string& what) {
  return Error{"resilience.bad-config", "campaign config: " + what};
}

Error bad_record(const std::string& id, const std::string& what) {
  return Error{"resilience.bad-record", "task record for '" + id + "': " + what};
}

bool shape_from_string(std::string_view text, frameworks::ServiceShape& out) {
  for (const frameworks::ServiceShape shape :
       {frameworks::ServiceShape::kSimpleEcho, frameworks::ServiceShape::kCrud}) {
    if (text == frameworks::to_string(shape)) {
      out = shape;
      return true;
    }
  }
  return false;
}

/// Compact Diagnostic round-trip for task records. Only the first error of
/// each test is journaled (the samples cap means nothing else is ever
/// reported), so the encoding favours smallness over self-description.
std::string diagnostic_json(const Diagnostic& diagnostic) {
  return json::ObjectWriter{}
      .field("sev", to_string(diagnostic.severity))
      .field("code", diagnostic.code)
      .field("msg", diagnostic.message)
      .field("subj", diagnostic.subject)
      .field("uri", diagnostic.location.uri)
      .field("line", diagnostic.location.line)
      .field("col", diagnostic.location.column)
      .field("fix", diagnostic.fixit)
      .str();
}

bool diagnostic_from_json(const json::Value& value, Diagnostic& out) {
  const json::Value* sev = value.find("sev");
  const json::Value* code = value.find("code");
  const json::Value* msg = value.find("msg");
  const json::Value* subj = value.find("subj");
  const json::Value* uri = value.find("uri");
  const json::Value* line = value.find("line");
  const json::Value* col = value.find("col");
  const json::Value* fix = value.find("fix");
  if (sev == nullptr || !sev->is_string() || !severity_from_string(sev->as_string(), out.severity)) {
    return false;
  }
  if (code == nullptr || !code->is_string() || msg == nullptr || !msg->is_string() ||
      subj == nullptr || !subj->is_string() || uri == nullptr || !uri->is_string() ||
      line == nullptr || !line->is_number() || col == nullptr || !col->is_number() ||
      fix == nullptr || !fix->is_string()) {
    return false;
  }
  out.code = code->as_string();
  out.message = msg->as_string();
  out.subject = subj->as_string();
  out.location.uri = uri->as_string();
  out.location.line = static_cast<std::size_t>(line->as_number());
  out.location.column = static_cast<std::size_t>(col->as_number());
  out.fixit = fix->as_string();
  return true;
}

/// Reads a required bool member; false return = malformed record.
bool read_bool(const json::Value& value, std::string_view key, bool& out) {
  const json::Value* member = value.find(key);
  if (member == nullptr || !member->is_bool()) return false;
  out = member->as_bool();
  return true;
}

Result<catalog::JavaCatalogSpec> java_spec_member(const json::Value& config) {
  const json::Value* spec = config.find("java");
  if (spec == nullptr || !spec->is_object()) {
    return bad_config("missing java catalog spec");
  }
  return catalog::java_spec_from_json(json::to_text(*spec));
}

Result<catalog::DotNetCatalogSpec> dotnet_spec_member(const json::Value& config) {
  const json::Value* spec = config.find("dotnet");
  if (spec == nullptr || !spec->is_object()) {
    return bad_config("missing dotnet catalog spec");
  }
  return catalog::dotnet_spec_from_json(json::to_text(*spec));
}

bool read_flag(const json::Value& config, std::string_view key, bool& out) {
  const json::Value* member = config.find(key);
  if (member == nullptr || !member->is_bool()) return false;
  out = member->as_bool();
  return true;
}

/// Maps a task index back to its (server, service) pair given the first
/// task index of each server's range.
std::pair<std::size_t, std::size_t> locate_task(const std::vector<std::size_t>& first_task,
                                                std::size_t task) {
  std::size_t server_index = first_task.size() - 1;
  while (first_task[server_index] > task) --server_index;
  return {server_index, task - first_task[server_index]};
}

/// One client cell's worth of fold input, normalised from either an
/// in-memory ClientTestOutcome or a journal-record row, so the aggregation
/// below has exactly one code path. The two sources are interchangeable:
/// the record is a pure serialisation of the outcome and the round-trip is
/// exact (the interrupt/resume equivalence tests pin the byte-identity).
struct FoldRow {
  bool gw = false;
  bool ge = false;
  bool cw = false;
  bool ce = false;
  bool art = false;
  std::vector<std::string> codes;  ///< unique error codes, first-seen order
  std::optional<Diagnostic> first;
};

FoldRow row_from_outcome(const ClientTestOutcome& outcome) {
  FoldRow row;
  row.gw = outcome.generation_warning;
  row.ge = outcome.generation_error;
  row.cw = outcome.compilation_warning;
  row.ce = outcome.compilation_error;
  row.art = outcome.artifacts_generated;
  for (const Diagnostic& diagnostic : outcome.errors) {
    if (std::find(row.codes.begin(), row.codes.end(), diagnostic.code) != row.codes.end()) {
      continue;
    }
    row.codes.push_back(diagnostic.code);
  }
  if (!outcome.errors.empty()) row.first = outcome.errors.front();
  return row;
}

bool row_from_json(const json::Value& value, FoldRow& row) {
  const json::Value* codes = value.find("codes");
  if (!read_bool(value, "gw", row.gw) || !read_bool(value, "ge", row.ge) ||
      !read_bool(value, "cw", row.cw) || !read_bool(value, "ce", row.ce) ||
      !read_bool(value, "art", row.art) || codes == nullptr || !codes->is_array()) {
    return false;
  }
  for (const json::Value& code : codes->items()) {
    if (!code.is_string()) return false;
    row.codes.push_back(code.as_string());
  }
  const json::Value* first = value.find("first");
  if (first != nullptr) {
    Diagnostic sample;
    if (!diagnostic_from_json(*first, sample)) return false;
    row.first = std::move(sample);
  }
  return true;
}

resilience::SupervisorOptions to_supervisor_options(const SupervisedOptions& options,
                                                    obs::Registry* metrics) {
  resilience::SupervisorOptions sup;
  sup.journal = options.journal;
  sup.jobs = options.jobs;
  sup.checkpoint_path = options.checkpoint_path;
  sup.resume = options.resume;
  sup.trip_after_tasks = options.trip_after_tasks;
  sup.metrics = metrics;
  return sup;
}

}  // namespace

std::string study_config_json(const StudyConfig& config) {
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(config.java_spec))
      .raw_field("dotnet", catalog::to_json(config.dotnet_spec))
      .field("samples_per_cell", config.samples_per_cell)
      .field("shape", frameworks::to_string(config.shape))
      .field("wsi_deploy_gate", config.wsi_deploy_gate)
      .field("parse_cache", config.parse_cache)
      .str();
}

Result<StudyConfig> study_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  StudyConfig config;
  Result<catalog::JavaCatalogSpec> java = java_spec_member(*parsed);
  if (!java.ok()) return java.error();
  config.java_spec = java.value();
  Result<catalog::DotNetCatalogSpec> dotnet = dotnet_spec_member(*parsed);
  if (!dotnet.ok()) return dotnet.error();
  config.dotnet_spec = dotnet.value();
  const json::Value* samples = parsed->find("samples_per_cell");
  if (samples == nullptr || !samples->is_number()) {
    return bad_config("missing samples_per_cell");
  }
  config.samples_per_cell = static_cast<std::size_t>(samples->as_number());
  const json::Value* shape = parsed->find("shape");
  if (shape == nullptr || !shape->is_string() ||
      !shape_from_string(shape->as_string(), config.shape)) {
    return bad_config("missing or unknown shape");
  }
  if (!read_flag(*parsed, "wsi_deploy_gate", config.wsi_deploy_gate)) {
    return bad_config("missing wsi_deploy_gate");
  }
  if (!read_flag(*parsed, "parse_cache", config.parse_cache)) {
    return bad_config("missing parse_cache");
  }
  return config;
}

std::string communication_config_json(const StudyConfig& config) {
  json::ArrayWriter versions;
  for (const frameworks::VersionPolicy policy : config.versions) {
    versions.item(frameworks::to_string(policy));
  }
  return json::ObjectWriter{}
      .raw_field("java", catalog::to_json(config.java_spec))
      .raw_field("dotnet", catalog::to_json(config.dotnet_spec))
      .field("parse_cache", config.parse_cache)
      .raw_field("versions", versions.str())
      .str();
}

Result<StudyConfig> communication_config_from_json(std::string_view text) {
  Result<json::Value> parsed = json::parse(text);
  if (!parsed.ok()) return parsed.error();
  StudyConfig config;
  Result<catalog::JavaCatalogSpec> java = java_spec_member(*parsed);
  if (!java.ok()) return java.error();
  config.java_spec = java.value();
  Result<catalog::DotNetCatalogSpec> dotnet = dotnet_spec_member(*parsed);
  if (!dotnet.ok()) return dotnet.error();
  config.dotnet_spec = dotnet.value();
  if (!read_flag(*parsed, "parse_cache", config.parse_cache)) {
    return bad_config("missing parse_cache");
  }
  const json::Value* versions = parsed->find("versions");
  if (versions == nullptr || !versions->is_array()) return bad_config("missing versions");
  for (const json::Value& policy : versions->items()) {
    if (!policy.is_string()) return bad_config("malformed version policy");
    const std::optional<frameworks::VersionPolicy> known =
        frameworks::parse_version_policy(policy.as_string());
    if (!known.has_value()) {
      return bad_config("unknown version policy '" + policy.as_string() + "'");
    }
    config.versions.push_back(*known);
  }
  return config;
}

Result<SupervisedStudyResult> run_study_supervised(const StudyConfig& config,
                                                   const SupervisedOptions& options) {
  SupervisedStudyResult out;
  StudyResult& result = out.study;

  obs::Span run_span(config.tracer, "study");

  // Preparation phase, identical to run_study (§III.A).
  obs::Span prepare_span(config.tracer, "phase:prepare", run_span);
  obs::ScopedTimer prepare_timer = obs::timer(config.metrics, "study.phase.prepare_us");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const std::vector<frameworks::ServiceSpec> java_services =
      frameworks::make_services(java_catalog, config.shape);
  const std::vector<frameworks::ServiceSpec> dotnet_services =
      frameworks::make_services(dotnet_catalog, config.shape);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }
  prepare_span.end();
  prepare_timer.stop();

  // Deploy/parse/wsi/gate every server up front; only the testing phase —
  // the expensive, per-service part — runs under supervision.
  std::vector<PreparedServer> prepared;
  std::vector<std::size_t> first_task;
  resilience::CampaignTasks tasks;
  tasks.campaign = "study";
  tasks.config_json = study_config_json(config);
  for (const auto& server : servers) {
    obs::Span server_span(config.tracer, "server:" + server->name(), run_span);
    const std::vector<frameworks::ServiceSpec>& services =
        server->language() == "C#" ? dotnet_services : java_services;
    prepared.push_back(prepare_server_campaign(*server, services, config, server_span.id()));
    first_task.push_back(tasks.ids.size());
    for (const frameworks::DeployedService& service : prepared.back().deployed) {
      tasks.ids.push_back(server->name() + "|" + service.spec.service_name());
    }
  }

  // Side channel for the fold: a task executed in this process parks its
  // outcomes here (indices are distinct across workers, so no locking) and
  // the record string — needed only for the journal — is built solely when
  // a checkpoint file is in play. Resumed tasks have no slot and fold from
  // their journal record instead; FoldRow makes the two paths identical.
  struct TaskRows {
    bool executed = false;
    std::vector<ClientTestOutcome> outcomes;
  };
  std::vector<TaskRows> side(tasks.ids.size());
  const bool journaling = !options.checkpoint_path.empty();

  // The task function: steps (b)+(c) for one service against all clients.
  // Pure in the task index — the determinism contract supervise() needs.
  tasks.run = [&, journaling](std::size_t index, resilience::TaskContext& context) {
    const auto [server_index, service_index] = locate_task(first_task, index);
    const PreparedServer& server = prepared[server_index];
    const frameworks::DeployedService& service = server.deployed[service_index];
    const frameworks::SharedDescription* description =
        config.parse_cache ? &server.descriptions[service_index] : nullptr;
    TaskRows& data = side[index];
    data.executed = false;
    data.outcomes.clear();  // a deadline retry re-runs the task from scratch
    data.outcomes.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      ClientTestOutcome outcome = run_client_test(
          service, description, *clients[i], client_compilers[i].get(), config.metrics);
      data.outcomes.push_back(std::move(outcome));
      context.charge(1);  // cost model: one virtual ms per client test
    }
    data.executed = true;
    if (!journaling) return std::string{};
    json::ArrayWriter rows;
    for (const ClientTestOutcome& outcome : data.outcomes) {
      json::ObjectWriter row;
      row.field("gw", outcome.generation_warning)
          .field("ge", outcome.generation_error)
          .field("cw", outcome.compilation_warning)
          .field("ce", outcome.compilation_error)
          .field("art", outcome.artifacts_generated);
      json::ArrayWriter codes;
      std::vector<std::string_view> seen;
      for (const Diagnostic& diagnostic : outcome.errors) {
        if (std::find(seen.begin(), seen.end(), diagnostic.code) != seen.end()) continue;
        seen.push_back(diagnostic.code);
        codes.item(diagnostic.code);
      }
      row.raw_field("codes", codes.str());
      if (!outcome.errors.empty()) {
        row.raw_field("first", diagnostic_json(outcome.errors.front()));
      }
      rows.raw_item(row.str());
    }
    return json::ObjectWriter{}.raw_field("clients", rows.str()).str();
  };

  obs::Span testing_span(config.tracer, "phase:testing", run_span);
  obs::ScopedTimer testing_timer = obs::timer(config.metrics, "study.phase.testing_us");
  Result<resilience::SupervisorReport> supervised =
      resilience::supervise(tasks, to_supervisor_options(options, config.metrics));
  testing_span.end();
  testing_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold, in task order, through the same aggregation run_server_campaign
  // applies. Resumed records fold exactly like freshly executed ones, so
  // the StudyResult — and every report rendered from it — is byte-identical
  // across interrupt/resume splits and worker counts.
  for (std::size_t server_index = 0; server_index < servers.size(); ++server_index) {
    ServerResult server_result = std::move(prepared[server_index].result);
    server_result.cells.resize(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      server_result.cells[i].client = clients[i]->name();
      server_result.cells[i].client_language = clients[i]->language();
      server_result.cells[i].compiled = clients[i]->requires_compilation();
    }
    result.flagged_services += server_result.description_warnings;
    result.servers.push_back(std::move(server_result));
  }
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    if (task.state != resilience::TaskState::kCompleted) continue;
    const auto [server_index, service_index] = locate_task(first_task, task.task);
    std::vector<FoldRow> rows;
    rows.reserve(clients.size());
    const TaskRows& data = side[task.task];
    if (data.executed) {
      for (const ClientTestOutcome& outcome : data.outcomes) {
        rows.push_back(row_from_outcome(outcome));
      }
    } else {
      Result<json::Value> record = json::parse(task.record);
      if (!record.ok()) return record.error();
      const json::Value* items = record->find("clients");
      if (items == nullptr || !items->is_array()) {
        return bad_record(task.id, "client row count mismatch");
      }
      for (const json::Value& item : items->items()) {
        FoldRow row;
        if (!row_from_json(item, row)) return bad_record(task.id, "malformed client row");
        rows.push_back(std::move(row));
      }
    }
    if (rows.size() != clients.size()) {
      return bad_record(task.id, "client row count mismatch");
    }
    ServerResult& server_result = result.servers[server_index];
    const bool is_flagged = prepared[server_index].flagged[service_index];
    const frameworks::DeployedService& service =
        prepared[server_index].deployed[service_index];
    bool service_errored = false;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const FoldRow& row = rows[i];
      const bool gw = row.gw;
      const bool ge = row.ge;
      const bool cw = row.cw;
      const bool ce = row.ce;
      const bool art = row.art;
      CellResult& cell = server_result.cells[i];
      ++cell.tests;
      obs::add(config.metrics, "study.tests_total");
      if (art) obs::add(config.metrics, "study.artifacts_generated");
      if (gw) ++cell.generation.warnings;
      if (ge) ++cell.generation.errors;
      if (cw) ++cell.compilation.warnings;
      if (ce) ++cell.compilation.errors;
      if (ge) obs::add(config.metrics, "study.generation_errors");
      if (ce) obs::add(config.metrics, "study.compilation_errors");
      if (row.first.has_value() && cell.samples.size() < config.samples_per_cell) {
        cell.samples.push_back(*row.first);
      }
      for (const std::string& code : row.codes) ++cell.error_codes[code];
      if (config.observer) {
        TestRecord record_line;
        record_line.server = server_result.server;
        record_line.client = clients[i]->name();
        record_line.service = service.spec.service_name();
        record_line.type_name =
            service.spec.type != nullptr ? service.spec.type->qualified_name() : "";
        record_line.description_flagged = is_flagged;
        record_line.generation_warning = gw;
        record_line.generation_error = ge;
        record_line.compilation_warning = cw;
        record_line.compilation_error = ce;
        config.observer(record_line);
      }
      if (ge || ce) {
        service_errored = true;
        if (same_framework_pair(server_result.server, clients[i]->name())) {
          ++result.same_framework_failures;
        }
        if (same_platform_pair(server_result.server, clients[i]->name())) {
          ++result.same_platform_failures;
        }
      }
      if (ge) {
        if (is_flagged) {
          ++result.generation_errors_on_flagged;
        } else {
          ++result.generation_errors_on_compliant;
        }
      }
    }
    if (is_flagged && service_errored) ++result.flagged_services_with_downstream_error;
  }
  return out;
}

Result<SupervisedCommunicationResult> run_communication_supervised(
    const StudyConfig& config, const SupervisedOptions& options) {
  SupervisedCommunicationResult out;
  CommunicationResult& result = out.communication;

  obs::Span run_span(config.tracer, "communication");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  // One round per (server, version policy) pair — mirroring
  // run_communication_study — or one per server when the axis is off. The
  // round label scopes task ids so a resumed journal can never splice a
  // strict round's rows into a shaded one.
  struct Round {
    const frameworks::ServerFramework* server;
    std::optional<frameworks::VersionPolicy> policy;
    std::string label;
  };
  std::vector<Round> rounds;
  for (const auto& server : servers) {
    if (config.versions.empty()) {
      rounds.push_back({server.get(), std::nullopt, server->name()});
      continue;
    }
    for (const frameworks::VersionPolicy policy : config.versions) {
      rounds.push_back({server.get(), policy,
                        server->name() + " [" + frameworks::to_string(policy) + "]"});
    }
  }
  std::vector<soap::HybridProfile> profiles;
  for (const auto& client : clients) {
    profiles.push_back(config.versions.empty()
                           ? soap::HybridProfile::kPure11
                           : frameworks::profile_for(client->version_policy()));
  }

  // Deployment + the shared parse up front, as in run_communication_study;
  // the invocations run under supervision.
  struct PreparedCommServer {
    std::vector<frameworks::DeployedService> deployed;
    std::vector<frameworks::SharedDescription> descriptions;
  };
  std::vector<PreparedCommServer> prepared;
  std::vector<std::size_t> first_task;
  resilience::CampaignTasks tasks;
  tasks.campaign = "communication";
  tasks.config_json = communication_config_json(config);
  for (const Round& round : rounds) {
    const frameworks::ServerFramework* server = round.server;
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    obs::Span server_span(config.tracer, "server:" + round.label, run_span);
    obs::Span deploy_span(config.tracer, "phase:deploy", server_span);
    obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "comm.phase.deploy_us");
    PreparedCommServer prep;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) prep.deployed.push_back(std::move(service.value()));
    }
    obs::add(config.metrics, "comm.services_deployed", prep.deployed.size());
    deploy_span.annotate("deployed", prep.deployed.size());
    deploy_span.end();
    deploy_timer.stop();
    if (config.parse_cache) {
      obs::Span parse_span(config.tracer, "phase:parse", server_span);
      obs::ScopedTimer parse_timer = obs::timer(config.metrics, "comm.phase.parse_us");
      prep.descriptions.reserve(prep.deployed.size());
      for (const frameworks::DeployedService& service : prep.deployed) {
        prep.descriptions.push_back(
            frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false));
      }
      parse_span.end();
      parse_timer.stop();
    }
    first_task.push_back(tasks.ids.size());
    for (const frameworks::DeployedService& service : prep.deployed) {
      tasks.ids.push_back(round.label + "|" + service.spec.service_name());
    }
    prepared.push_back(std::move(prep));
  }

  // Side channel for the fold, as in run_study_supervised: executed tasks
  // park their invocation outcomes in memory and only build the journal
  // record when a checkpoint file is in play.
  struct CommTaskRows {
    bool executed = false;
    std::size_t sniffed = 0;
    std::vector<InvocationOutcome> invocations;
  };
  std::vector<CommTaskRows> side(tasks.ids.size());
  const bool journaling = !options.checkpoint_path.empty();

  tasks.run = [&, journaling](std::size_t index, resilience::TaskContext& context) {
    const auto [round_index, service_index] = locate_task(first_task, index);
    const Round& round = rounds[round_index];
    const PreparedCommServer& prep = prepared[round_index];
    const frameworks::DeployedService& service = prep.deployed[service_index];
    const frameworks::SharedDescription* description =
        config.parse_cache ? &prep.descriptions[service_index] : nullptr;
    CommTaskRows& data = side[index];
    data.executed = false;
    data.sniffed = 0;
    data.invocations.clear();  // a deadline retry re-runs the task from scratch
    data.invocations.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      data.invocations.push_back(invoke_echo_once(
          *round.server, service, description, *clients[i], client_compilers[i].get(),
          &data.sniffed, profiles[i], round.policy.has_value() ? &*round.policy : nullptr));
      context.charge(1);  // cost model: one virtual ms per invocation
    }
    data.executed = true;
    if (!journaling) return std::string{};
    json::ArrayWriter rows;
    for (const InvocationOutcome& invocation : data.invocations) {
      rows.raw_item(json::ObjectWriter{}
                        .field("o", static_cast<std::size_t>(invocation.outcome))
                        .field("st", static_cast<long long>(invocation.http_status))
                        .str());
    }
    return json::ObjectWriter{}
        .field("sniffed", data.sniffed)
        .raw_field("clients", rows.str())
        .str();
  };

  obs::Span invoke_span(config.tracer, "phase:invoke", run_span);
  obs::ScopedTimer invoke_timer = obs::timer(config.metrics, "comm.phase.invoke_us");
  Result<resilience::SupervisorReport> supervised =
      resilience::supervise(tasks, to_supervisor_options(options, config.metrics));
  invoke_span.end();
  invoke_timer.stop();
  if (!supervised.ok()) return supervised.error();
  out.supervisor = std::move(supervised.value());

  // Fold in task order (see run_study_supervised); one result row per round.
  for (std::size_t round_index = 0; round_index < rounds.size(); ++round_index) {
    CommServerResult server_result;
    server_result.server = rounds[round_index].label;
    server_result.services_deployed = prepared[round_index].deployed.size();
    for (const auto& client : clients) {
      CommCell cell;
      cell.client = client->name();
      server_result.cells.push_back(std::move(cell));
    }
    result.servers.push_back(std::move(server_result));
  }
  for (const resilience::TaskOutcome& task : out.supervisor.tasks) {
    if (task.state != resilience::TaskState::kCompleted) continue;
    const auto [round_index, service_index] = locate_task(first_task, task.task);
    // (o, http_status) pairs from memory for executed tasks, from the
    // journal record for resumed ones — the round-trip is exact.
    std::vector<std::pair<std::size_t, int>> rows;
    rows.reserve(clients.size());
    const CommTaskRows& data = side[task.task];
    if (data.executed) {
      result.sniffed_violations += data.sniffed;
      for (const InvocationOutcome& invocation : data.invocations) {
        rows.emplace_back(static_cast<std::size_t>(invocation.outcome),
                          invocation.http_status);
      }
    } else {
      Result<json::Value> record = json::parse(task.record);
      if (!record.ok()) return record.error();
      const json::Value* sniffed = record->find("sniffed");
      const json::Value* items = record->find("clients");
      if (sniffed == nullptr || !sniffed->is_number() || items == nullptr ||
          !items->is_array()) {
        return bad_record(task.id, "malformed communication record");
      }
      result.sniffed_violations += static_cast<std::size_t>(sniffed->as_number());
      for (const json::Value& row : items->items()) {
        const json::Value* outcome_index = row.find("o");
        const json::Value* status = row.find("st");
        if (outcome_index == nullptr || !outcome_index->is_number() || status == nullptr ||
            !status->is_number()) {
          return bad_record(task.id, "malformed invocation row");
        }
        rows.emplace_back(static_cast<std::size_t>(outcome_index->as_number()),
                          static_cast<int>(status->as_number()));
      }
    }
    if (rows.size() != clients.size()) {
      return bad_record(task.id, "malformed communication record");
    }
    CommServerResult& server_result = result.servers[round_index];
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const std::size_t o = rows[i].first;
      if (o >= kCommOutcomeCount) return bad_record(task.id, "unknown outcome index");
      const CommOutcome outcome = static_cast<CommOutcome>(o);
      const int http_status = rows[i].second;
      CommCell& cell = server_result.cells[i];
      ++cell.outcomes[o];
      obs::add(config.metrics, "comm.invocations_total");
      obs::add(config.metrics,
               config.parse_cache ? "comm.parse.cache_hits" : "comm.parse.wsdl_parses");
      if (outcome != CommOutcome::kBlockedEarlier && outcome != CommOutcome::kOk) {
        obs::add(config.metrics, "comm.failures");
      }
      if (outcome == CommOutcome::kTransportError) {
        if (http_status >= 400 && http_status < 500) {
          ++cell.transport_4xx;
        } else if (http_status >= 500 && http_status < 600) {
          ++cell.transport_5xx;
        }
      }
    }
  }
  obs::add(config.metrics, "comm.sniffed_violations", result.sniffed_violations);
  return out;
}

}  // namespace wsx::interop
