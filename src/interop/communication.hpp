// communication.hpp — the Communication (4) and Execution (5) steps the
// paper defers to future work ("we intend to test WS frameworks during the
// communication and execution phase to test the whole inter-operation
// lifecycle"), implemented over the simulated stacks.
//
// For every (service, client) pair that survives description, generation
// and compilation, the client's runtime marshals an echo call, ships it
// through the HTTP wire model, the server executes it, and the response is
// unmarshalled and compared against the sent payload.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "interop/study.hpp"
#include "soap/version.hpp"

namespace wsx::interop {

enum class CommOutcome {
  kBlockedEarlier,   ///< steps 1–3 already failed; the call never happens
  kNoInvocableProxy, ///< client object exists but has no method to call
  kTransportError,   ///< HTTP-level rejection (e.g. missing SOAPAction)
  kServerFault,      ///< server returned a soap:Fault
  kEchoMismatch,     ///< call completed but the echoed payload is wrong
  kOk,
  kVersionMismatch,  ///< the endpoint rejected the call's version shape
                     ///< (VersionMismatch/MustUnderstand fault) — the
                     ///< mixed-version axis's distinct outcome class
                     ///< (appended so journal outcome indices stay stable)
};
inline constexpr std::size_t kCommOutcomeCount = 7;

const char* to_string(CommOutcome outcome);

/// Per client, per server: how the communication step ended, counted over
/// all deployed services.
struct CommCell {
  std::string client;
  std::array<std::size_t, kCommOutcomeCount> outcomes{};
  /// Transport-level detail: kTransportError split by HTTP status class.
  /// 4xx means the request was refused (405/415 — retrying is pointless);
  /// 5xx means the server side rejected or failed at the HTTP layer
  /// (e.g. the .NET SOAPAction refusal). An unparseable body on a 2xx
  /// status falls in neither bucket, so transport_4xx + transport_5xx <=
  /// count(kTransportError); the outcome buckets themselves are unchanged.
  std::size_t transport_4xx = 0;
  std::size_t transport_5xx = 0;

  std::size_t count(CommOutcome outcome) const {
    return outcomes[static_cast<std::size_t>(outcome)];
  }
  std::size_t attempted() const;  ///< everything except kBlockedEarlier
  std::size_t failures() const;   ///< attempted minus kOk
};

struct CommServerResult {
  std::string server;
  std::size_t services_deployed = 0;
  std::vector<CommCell> cells;
};

struct CommunicationResult {
  std::vector<CommServerResult> servers;
  /// Requests the conformance sniffer (soap/validate.hpp) flagged as
  /// contract violations before the server even saw them.
  std::size_t sniffed_violations = 0;

  std::size_t total_attempted() const;
  std::size_t total_failures() const;
  std::size_t total(CommOutcome outcome) const;
};

/// Runs the communication study on top of the usual campaign configuration.
CommunicationResult run_communication_study(const StudyConfig& config = {});

/// Wire-level outcome of one end-to-end echo invocation. Exposed for the
/// resilience supervisor, which drives invocations one service at a time.
struct InvocationOutcome {
  CommOutcome outcome = CommOutcome::kBlockedEarlier;
  int http_status = 0;  ///< only meaningful for wire-level outcomes
};

/// One end-to-end invocation: marshal → HTTP → execute → unmarshal → check.
/// `description` is the campaign's shared parse (null = re-parse, the
/// --no-parse-cache path); `compiler` is null for dynamic clients.
/// `sniffed_violations`, when non-null, is incremented for requests the
/// conformance sniffer (soap/validate.hpp) flags as contract violations.
/// `profile` dresses the call in 1.2-era headers (the --versions axis;
/// kPure11 = classic behaviour); `policy` overrides the server's documented
/// version-validation policy for this delivery (null = documented policy).
InvocationOutcome invoke_echo_once(const frameworks::ServerFramework& server,
                                   const frameworks::DeployedService& service,
                                   const frameworks::SharedDescription* description,
                                   const frameworks::ClientFramework& client,
                                   const compilers::Compiler* compiler,
                                   std::size_t* sniffed_violations = nullptr,
                                   soap::HybridProfile profile = soap::HybridProfile::kPure11,
                                   const frameworks::VersionPolicy* policy = nullptr);

/// Renders the extension table (no paper reference exists; this is the
/// future-work experiment).
std::string format_communication(const CommunicationResult& result);

/// Machine-readable form: server,client,<one column per outcome>.
std::string communication_csv(const CommunicationResult& result);

}  // namespace wsx::interop
