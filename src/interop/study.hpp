// study.hpp — the interoperability assessment approach (paper §III).
//
// Preparation Phase: select server and client frameworks, create one echo
// service per native type. Testing Phase, per service: (a) generate the
// description at deployment, (b) generate client artifacts with every
// client tool, (c) compile them (or check instantiation), (d) classify
// each step's outcome. Description documents are additionally checked for
// WS-I Basic Profile compliance.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "common/diagnostics.hpp"
#include "frameworks/client.hpp"
#include "frameworks/server.hpp"
#include "frameworks/shared_description.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::compilers {
class Compiler;
}  // namespace wsx::compilers

namespace wsx::interop {

/// Aggregated outcome of one testing-phase step for one server×client cell:
/// number of tests with at least one warning / at least one error.
struct StepCounts {
  std::size_t warnings = 0;
  std::size_t errors = 0;

  StepCounts& operator+=(const StepCounts& other) {
    warnings += other.warnings;
    errors += other.errors;
    return *this;
  }
  friend bool operator==(const StepCounts&, const StepCounts&) = default;
};

/// One cell of Table III: one client tool against one server's services.
struct CellResult {
  std::string client;
  code::Language client_language = code::Language::kJava;
  bool compiled = true;  ///< Table II "Compilation" column
  std::size_t tests = 0;
  StepCounts generation;
  StepCounts compilation;
  /// Sample diagnostics (first few distinct error codes) for reporting.
  std::vector<Diagnostic> samples;
  /// Error diagnostic code → number of tests that produced it (a test can
  /// contribute several codes). Feeds the failure catalog.
  std::map<std::string, std::size_t> error_codes;
};

/// Everything measured against one server framework.
struct ServerResult {
  std::string server;
  std::string application_server;
  std::size_t services_created = 0;
  std::size_t services_deployed = 0;
  std::size_t deployment_refusals = 0;

  /// Description-step classification: the step never errors (refused
  /// deployments are excluded up front, §III.B.a); warnings are services
  /// whose published WSDL fails WS-I or is unusable (zero operations).
  std::size_t description_warnings = 0;
  std::size_t description_errors = 0;
  std::size_t wsi_failures = 0;
  std::size_t zero_operation_services = 0;
  std::size_t gate_rejections = 0;  ///< only with StudyConfig::wsi_deploy_gate

  std::vector<CellResult> cells;  ///< one per client, Table II order

  StepCounts generation_totals() const;
  StepCounts compilation_totals() const;
};

/// Full study outcome.
struct StudyResult {
  std::vector<ServerResult> servers;

  std::size_t total_tests() const;
  std::size_t total_services_created() const;
  std::size_t total_deployment_refusals() const;
  std::size_t total_description_warnings() const;
  StepCounts total_generation() const;
  StepCounts total_compilation() const;
  /// Generation + compilation errors — the paper's "situations that led to
  /// interoperability errors".
  std::size_t total_interop_errors() const;

  /// Failures where client and server subsystems belong to the same
  /// framework. `same_platform_failures` restricts to same framework AND
  /// platform (the .NET-on-.NET count, which is the paper's 307).
  std::size_t same_framework_failures = 0;
  std::size_t same_platform_failures = 0;

  /// WS-I gate ablation: of the description-step-flagged services, how
  /// many produced at least one downstream error (the paper's 95.3%).
  std::size_t flagged_services = 0;
  std::size_t flagged_services_with_downstream_error = 0;

  /// Of all generation-step errors, how many occurred against services
  /// that failed the WS-I check (the paper's ~97%).
  std::size_t generation_errors_on_flagged = 0;
  std::size_t generation_errors_on_compliant = 0;
};

/// One executed test, as reported to StudyConfig::observer. Suitable for
/// JSON-lines logging (see to_json_line).
struct TestRecord {
  std::string server;
  std::string client;
  std::string service;     ///< e.g. "EchoSimpleDateFormat"
  std::string type_name;   ///< the native type behind the service
  bool description_flagged = false;
  bool generation_warning = false;
  bool generation_error = false;
  bool compilation_warning = false;
  bool compilation_error = false;
};

/// Renders a TestRecord as one JSON object (no trailing newline).
std::string to_json_line(const TestRecord& record);

struct StudyConfig {
  catalog::JavaCatalogSpec java_spec;      ///< defaults: the paper's population
  catalog::DotNetCatalogSpec dotnet_spec;  ///< defaults: the paper's population
  std::size_t threads = 0;                 ///< 0 = hardware concurrency
  std::size_t samples_per_cell = 3;        ///< diagnostics kept for reporting

  /// Service complexity. kSimpleEcho is the paper's batch; kCrud runs its
  /// future-work extension (multi-operation services with array returns).
  frameworks::ServiceShape shape = frameworks::ServiceShape::kSimpleEcho;

  /// Ablation: the deploy-time WS-I gate the paper advocates (§IV.A).
  /// Flagged descriptions (WS-I failure or zero operations) are withdrawn
  /// before any client sees them; `ServerResult::gate_rejections` counts
  /// them. Off by default — the paper's measured reality.
  bool wsi_deploy_gate = false;

  /// Parse-once pipeline: each deployed service's served WSDL is parsed and
  /// analyzed exactly once (SharedDescription) and shared by the WS-I check
  /// and every client tool, instead of once per consumer. Results are
  /// byte-identical either way (only the "study.parse.*" counters differ);
  /// the escape hatch exists for A/B measurement (`--no-parse-cache`).
  bool parse_cache = true;

  /// The mixed-version axis (communication study): when non-empty, every
  /// server runs one round per listed policy — overriding its documented
  /// version-validation policy — while each client dresses its calls in
  /// the hybrid profile its own documented policy implies
  /// (frameworks::profile_for). Rounds are labeled "Server [policy]".
  /// Empty = classic pure-1.1 behaviour. The static study (steps 1–3)
  /// never touches the wire, so the axis only affects the communication
  /// and chaos campaigns.
  std::vector<frameworks::VersionPolicy> versions;

  /// Optional per-test observer (e.g. a JSON-lines logger). Called from
  /// worker threads under an internal mutex; keep it cheap.
  std::function<void(const TestRecord&)> observer;

  /// Observability sinks, both optional (null = off, zero overhead). The
  /// tracer receives the span tree (run → server → phase → cell); the
  /// registry receives counters and per-step wall-time histograms under
  /// the "study."/"comm." prefixes (see docs/OBSERVABILITY.md).
  obs::Tracer* tracer = nullptr;
  obs::Registry* metrics = nullptr;
};

/// Runs one server's campaign: deploy every service, run every client.
/// `parent_span` nests the campaign's spans under the run's root span.
ServerResult run_server_campaign(const frameworks::ServerFramework& server,
                                 const std::vector<frameworks::ServiceSpec>& services,
                                 const std::vector<std::unique_ptr<frameworks::ClientFramework>>& clients,
                                 const StudyConfig& config, StudyResult* cross_totals = nullptr,
                                 obs::SpanId parent_span = obs::kNoSpan);

/// Runs the full study: both catalogs, all three servers, all 11 clients.
StudyResult run_study(const StudyConfig& config = {});

// --- Testing-phase primitives, exposed for the supervised runner ---------
//
// The resilience supervisor re-drives the testing phase one service at a
// time (so tasks can be checkpointed, retried and quarantined), then folds
// the per-test outcomes through the same aggregation run_server_campaign
// applies. These hooks are that shared vocabulary.

/// Outcome of one client tool against one deployed service.
struct ClientTestOutcome {
  bool generation_warning = false;
  bool generation_error = false;
  bool compilation_warning = false;
  bool compilation_error = false;
  bool artifacts_generated = false;
  std::vector<Diagnostic> errors;  ///< error/crash diagnostics, tool order

  bool any_error() const { return generation_error || compilation_error; }
};

/// Steps (b)+(c) for one (service, client) pair: artifact generation, then
/// compilation or the instantiation check. `description` is the campaign's
/// shared parse (null = re-parse the served text, the --no-parse-cache
/// path); `compiler` is null for dynamic clients.
ClientTestOutcome run_client_test(const frameworks::DeployedService& service,
                                  const frameworks::SharedDescription* description,
                                  const frameworks::ClientFramework& client,
                                  const compilers::Compiler* compiler,
                                  obs::Registry* metrics);

/// The paper's same-framework / same-platform classification of a
/// (server, client) name pair (§V).
bool same_framework_pair(const std::string& server, const std::string& client);
bool same_platform_pair(const std::string& server, const std::string& client);

/// Everything run_server_campaign computes before the testing phase:
/// deployment, the shared parse, WS-I verdicts, and (optionally) the
/// deploy-time gate. `result` carries the deploy/WS-I counters with empty
/// cells; `flagged[i]` pairs with `deployed[i]`; `descriptions` is empty
/// when the parse cache is off.
struct PreparedServer {
  ServerResult result;
  std::vector<frameworks::DeployedService> deployed;
  std::vector<frameworks::SharedDescription> descriptions;
  std::vector<bool> flagged;
};

/// Runs the deploy / parse / wsi-check / gate phases for one server.
/// `parent_span` nests the phase spans (typically the server span).
PreparedServer prepare_server_campaign(const frameworks::ServerFramework& server,
                                       const std::vector<frameworks::ServiceSpec>& services,
                                       const StudyConfig& config,
                                       obs::SpanId parent_span = obs::kNoSpan);

}  // namespace wsx::interop
