// scorecard.hpp — one report card per client tool, synthesized from the
// campaigns: the paper's steps 1–3 study, the communication extension,
// the robustness fuzzing, and (optionally) the wire-fault chaos study.
// This is the artifact a framework selector would actually want: "if I
// pick this client stack, what is my exposure?"
#pragma once

#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "fuzz/campaign.hpp"
#include "interop/communication.hpp"
#include "interop/study.hpp"

namespace wsx::interop {

struct ToolScorecard {
  std::string client;

  // Steps 1–3 (the paper's study).
  std::size_t tests = 0;
  std::size_t generation_errors = 0;
  std::size_t compilation_errors = 0;

  // Communication + Execution extension.
  std::size_t invocations_attempted = 0;
  std::size_t wire_failures = 0;
  /// Version-policy rejections (the --versions axis; zero outside it).
  std::size_t version_mismatches = 0;

  // Robustness fuzzing.
  std::size_t fuzz_mutants = 0;
  std::size_t silent_on_broken = 0;

  // Wire-fault chaos study (zero when the campaign didn't run).
  std::size_t chaos_challenged = 0;  ///< calls that saw an injected fault
  std::size_t chaos_resilient = 0;   ///< challenged calls that still succeeded
  std::size_t chaos_downgraded = 0;  ///< successes won by the downgrade-retry
                                     ///< recovery (1.1-coherent retransmit)

  /// Steps 1–3 error rate in percent.
  double static_failure_rate() const;
  /// Wire failure rate in percent (of attempted invocations).
  double wire_failure_rate() const;
  /// Share of fault-challenged calls the stack still carried to success.
  double wire_resilience_rate() const;
};

struct Scorecard {
  std::vector<ToolScorecard> tools;  ///< sorted by static failure rate, best first

  const ToolScorecard* find(std::string_view client) const;
};

/// Combines the three campaign results into per-tool cards.
Scorecard build_scorecard(const StudyResult& study, const CommunicationResult& communication,
                          const fuzz::FuzzReport& fuzzing);

/// As above, folding in the chaos campaign's resilience column.
Scorecard build_scorecard(const StudyResult& study, const CommunicationResult& communication,
                          const fuzz::FuzzReport& fuzzing, const chaos::ChaosResult& chaos);

/// Renders the card table.
std::string format_scorecard(const Scorecard& scorecard);

}  // namespace wsx::interop
