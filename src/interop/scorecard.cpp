#include "interop/scorecard.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "interop/paper_reference.hpp"

namespace wsx::interop {

double ToolScorecard::static_failure_rate() const {
  if (tests == 0) return 0.0;
  return 100.0 * static_cast<double>(generation_errors + compilation_errors) /
         static_cast<double>(tests);
}

double ToolScorecard::wire_failure_rate() const {
  if (invocations_attempted == 0) return 0.0;
  return 100.0 * static_cast<double>(wire_failures) /
         static_cast<double>(invocations_attempted);
}

double ToolScorecard::wire_resilience_rate() const {
  if (chaos_challenged == 0) return 0.0;
  return 100.0 * static_cast<double>(chaos_resilient) /
         static_cast<double>(chaos_challenged);
}

const ToolScorecard* Scorecard::find(std::string_view client) const {
  for (const ToolScorecard& tool : tools) {
    if (tool.client == client) return &tool;
  }
  return nullptr;
}

Scorecard build_scorecard(const StudyResult& study, const CommunicationResult& communication,
                          const fuzz::FuzzReport& fuzzing) {
  Scorecard scorecard;
  const auto card_for = [&scorecard](const std::string& client) -> ToolScorecard& {
    for (ToolScorecard& tool : scorecard.tools) {
      if (tool.client == client) return tool;
    }
    scorecard.tools.push_back({});
    scorecard.tools.back().client = client;
    return scorecard.tools.back();
  };

  for (const ServerResult& server : study.servers) {
    for (const CellResult& cell : server.cells) {
      ToolScorecard& card = card_for(cell.client);
      card.tests += cell.tests;
      card.generation_errors += cell.generation.errors;
      card.compilation_errors += cell.compilation.errors;
    }
  }
  for (const CommServerResult& server : communication.servers) {
    for (const CommCell& cell : server.cells) {
      ToolScorecard& card = card_for(cell.client);
      card.invocations_attempted += cell.attempted();
      card.wire_failures += cell.failures();
      card.version_mismatches += cell.count(CommOutcome::kVersionMismatch);
    }
  }
  for (const fuzz::ToolRobustness& tool : fuzzing.tools) {
    ToolScorecard& card = card_for(tool.client);
    card.fuzz_mutants += fuzzing.mutant_count;
    card.silent_on_broken += tool.silent_on_broken();
  }

  std::sort(scorecard.tools.begin(), scorecard.tools.end(),
            [](const ToolScorecard& a, const ToolScorecard& b) {
              return a.static_failure_rate() < b.static_failure_rate();
            });
  return scorecard;
}

Scorecard build_scorecard(const StudyResult& study, const CommunicationResult& communication,
                          const fuzz::FuzzReport& fuzzing, const chaos::ChaosResult& chaos) {
  Scorecard scorecard = build_scorecard(study, communication, fuzzing);
  for (const chaos::ChaosServerResult& server : chaos.servers) {
    for (const chaos::ChaosCell& cell : server.cells) {
      for (ToolScorecard& tool : scorecard.tools) {
        if (tool.client != cell.client) continue;
        tool.chaos_challenged += cell.challenged;
        tool.chaos_resilient += cell.challenged_ok;
        tool.chaos_downgraded += cell.count(chaos::ChaosOutcome::kDowngraded);
      }
    }
  }
  return scorecard;
}

std::string format_scorecard(const Scorecard& scorecard) {
  std::ostringstream out;
  out << "Tool report card (steps 1-3 / wire / fuzzing / chaos), best static rate first\n";
  out << "  " << std::left << std::setw(40) << "client" << std::right << std::setw(10)
      << "gen errs" << std::setw(10) << "comp errs" << std::setw(9) << "static%"
      << std::setw(10) << "wire errs" << std::setw(8) << "wire%" << std::setw(18)
      << "silent-on-broken" << std::setw(8) << "resil%" << std::setw(11) << "vmismatch"
      << std::setw(11) << "downgraded" << "\n";
  for (const ToolScorecard& tool : scorecard.tools) {
    out << "  " << std::left << std::setw(40)
        << std::string(paper::normalize_client_name(tool.client)) << std::right
        << std::setw(10) << tool.generation_errors << std::setw(10) << tool.compilation_errors
        << std::setw(8) << std::fixed << std::setprecision(2) << tool.static_failure_rate()
        << "%" << std::setw(10) << tool.wire_failures << std::setw(7) << std::setprecision(2)
        << tool.wire_failure_rate() << "%" << std::setw(12) << tool.silent_on_broken << " / "
        << tool.fuzz_mutants << std::setw(7) << std::setprecision(1)
        << tool.wire_resilience_rate() << "%" << std::setw(11) << tool.version_mismatches
        << std::setw(11) << tool.chaos_downgraded << "\n";
  }
  out << "\nReading guide: low static% + low wire% + low silent-on-broken is what a\n"
         "framework selector wants; a tool can look clean on steps 1-3 and still\n"
         "fail on the wire (Zend) or hide defects by accepting broken input.\n"
         "resil% is the share of fault-challenged chaos calls the stack still\n"
         "carried to success (0 when the chaos campaign didn't run).\n"
         "vmismatch counts version-policy rejections under the --versions axis;\n"
         "downgraded counts chaos successes won by the 1.1-coherent downgrade\n"
         "retransmit (both 0 outside the mixed-version campaigns).\n";
  return out.str();
}

}  // namespace wsx::interop
