#include "interop/report_formats.hpp"

#include <sstream>

#include "interop/paper_reference.hpp"

namespace wsx::interop {
namespace {

/// Escapes a CSV field (quotes when it contains a comma or quote).
std::string csv_field(std::string_view value) {
  if (value.find_first_of(",\"\n") == std::string_view::npos) return std::string(value);
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

const paper::Fig4Row* fig4_reference(const ServerResult& server) {
  const std::string_view short_name = paper::normalize_server_name(server.server);
  for (const paper::Fig4Row& row : paper::kFig4) {
    if (row.server == short_name) return &row;
  }
  return nullptr;
}

}  // namespace

std::string fig4_csv(const StudyResult& result) {
  std::ostringstream out;
  out << "server,metric,paper,measured\n";
  for (const ServerResult& server : result.servers) {
    const paper::Fig4Row* reference = fig4_reference(server);
    const auto row = [&](const char* metric, std::size_t paper_value, std::size_t measured) {
      out << csv_field(server.server) << ',' << metric << ',' << paper_value << ','
          << measured << '\n';
    };
    if (reference == nullptr) continue;
    row("description_warnings", reference->description_warnings, server.description_warnings);
    row("description_errors", reference->description_errors, server.description_errors);
    row("generation_warnings", reference->generation_warnings,
        server.generation_totals().warnings);
    row("generation_errors", reference->generation_errors, server.generation_totals().errors);
    row("compilation_warnings", reference->compilation_warnings,
        server.compilation_totals().warnings);
    row("compilation_errors", reference->compilation_errors,
        server.compilation_totals().errors);
  }
  return out.str();
}

std::string table3_csv(const StudyResult& result) {
  std::ostringstream out;
  out << "server,client,tests,generation_warnings,generation_errors,"
         "compilation_warnings,compilation_errors\n";
  for (const ServerResult& server : result.servers) {
    for (const CellResult& cell : server.cells) {
      out << csv_field(server.server) << ',' << csv_field(cell.client) << ',' << cell.tests
          << ',' << cell.generation.warnings << ',' << cell.generation.errors << ','
          << cell.compilation.warnings << ',' << cell.compilation.errors << '\n';
    }
  }
  return out.str();
}

std::string fig4_markdown(const StudyResult& result) {
  std::ostringstream out;
  out << "| server | metric | paper | measured | status |\n";
  out << "|---|---|---:|---:|---|\n";
  for (const ServerResult& server : result.servers) {
    const paper::Fig4Row* reference = fig4_reference(server);
    if (reference == nullptr) continue;
    const auto row = [&](const char* metric, std::size_t paper_value, std::size_t measured) {
      out << "| " << server.server << " | " << metric << " | " << paper_value << " | "
          << measured << " | " << (paper_value == measured ? "MATCH" : "DIVERGE") << " |\n";
    };
    row("description warnings", reference->description_warnings, server.description_warnings);
    row("description errors", reference->description_errors, server.description_errors);
    row("generation warnings", reference->generation_warnings,
        server.generation_totals().warnings);
    row("generation errors", reference->generation_errors, server.generation_totals().errors);
    row("compilation warnings", reference->compilation_warnings,
        server.compilation_totals().warnings);
    row("compilation errors", reference->compilation_errors,
        server.compilation_totals().errors);
  }
  return out.str();
}

std::string table3_markdown(const StudyResult& result) {
  std::ostringstream out;
  out << "| server | client | Gw | Ge | Cw | Ce |\n";
  out << "|---|---|---:|---:|---:|---:|\n";
  for (const ServerResult& server : result.servers) {
    for (const CellResult& cell : server.cells) {
      out << "| " << server.server << " | " << cell.client << " | "
          << cell.generation.warnings << " | " << cell.generation.errors << " | ";
      if (cell.compiled) {
        out << cell.compilation.warnings << " | " << cell.compilation.errors << " |\n";
      } else {
        out << "n/a | n/a |\n";
      }
    }
  }
  return out.str();
}

}  // namespace wsx::interop
