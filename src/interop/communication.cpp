#include "interop/communication.hpp"

#include <iomanip>
#include <optional>
#include <sstream>

#include "common/pool.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"

namespace wsx::interop {

const char* to_string(CommOutcome outcome) {
  switch (outcome) {
    case CommOutcome::kBlockedEarlier:
      return "blocked earlier";
    case CommOutcome::kNoInvocableProxy:
      return "no invocable proxy";
    case CommOutcome::kTransportError:
      return "transport error";
    case CommOutcome::kServerFault:
      return "server fault";
    case CommOutcome::kEchoMismatch:
      return "echo mismatch";
    case CommOutcome::kOk:
      return "ok";
    case CommOutcome::kVersionMismatch:
      return "version mismatch";
  }
  return "unknown";
}

std::size_t CommCell::attempted() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kCommOutcomeCount; ++i) total += outcomes[i];
  return total - count(CommOutcome::kBlockedEarlier);
}

std::size_t CommCell::failures() const { return attempted() - count(CommOutcome::kOk); }

std::size_t CommunicationResult::total_attempted() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.attempted();
  }
  return total;
}

std::size_t CommunicationResult::total_failures() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.failures();
  }
  return total;
}

std::size_t CommunicationResult::total(CommOutcome outcome) const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.count(outcome);
  }
  return total;
}

/// The call preparation and response classification live in
/// frameworks/invocation.* and are shared with the chaos campaign.
InvocationOutcome invoke_echo_once(const frameworks::ServerFramework& server,
                                   const frameworks::DeployedService& service,
                                   const frameworks::SharedDescription* description,
                                   const frameworks::ClientFramework& client,
                                   const compilers::Compiler* compiler,
                                   std::size_t* sniffed_violations,
                                   soap::HybridProfile profile,
                                   const frameworks::VersionPolicy* policy) {
  const frameworks::PreparedCall call =
      description != nullptr
          ? frameworks::prepare_echo_call(service, *description, client, compiler, profile)
          : frameworks::prepare_echo_call(
                service,
                frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false),
                client, compiler, profile);
  if (call.status == frameworks::PreparedCall::Status::kBlockedEarlier) {
    return {CommOutcome::kBlockedEarlier, 0};
  }
  if (call.status == frameworks::PreparedCall::Status::kNoInvocableProxy) {
    return {CommOutcome::kNoInvocableProxy, 0};
  }

  if (sniffed_violations != nullptr) {
    // Streaming sniffer: no DOM, no Envelope — one pass over the wire bytes.
    Result<std::vector<soap::ValidationIssue>> issues =
        soap::validate_request_text(service.wsdl, call.request.body);
    if (issues.ok() && !issues.value().empty()) {
      ++*sniffed_violations;
    }
  }

  // The wire + Execution step.
  const soap::HttpResponse http_response = server.handle_http(
      service, call.request, policy != nullptr ? *policy : server.version_policy());
  const frameworks::EchoClassification classified =
      frameworks::classify_echo_response(http_response, call.payload);
  switch (classified.outcome) {
    case frameworks::EchoOutcome::kTransportError:
      // A 415 is the HTTP face of a version-policy rejection (the strict
      // media-type gate); keep it in the version-mismatch outcome class.
      if (classified.http_status == 415) {
        return {CommOutcome::kVersionMismatch, classified.http_status};
      }
      return {CommOutcome::kTransportError, classified.http_status};
    case frameworks::EchoOutcome::kVersionMismatch:
      return {CommOutcome::kVersionMismatch, classified.http_status};
    case frameworks::EchoOutcome::kServerFault:
      return {CommOutcome::kServerFault, classified.http_status};
    case frameworks::EchoOutcome::kEchoMismatch:
      return {CommOutcome::kEchoMismatch, classified.http_status};
    case frameworks::EchoOutcome::kOk:
      break;
  }
  return {CommOutcome::kOk, classified.http_status};
}

CommunicationResult run_communication_study(const StudyConfig& config) {
  CommunicationResult result;

  obs::Span run_span(config.tracer, "communication");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  // The mixed-version axis: one round per server × policy with labeled
  // results; clients dress calls in their documented hybrid profiles.
  // Empty config.versions = the classic single-round pure-1.1 study.
  struct Round {
    const frameworks::ServerFramework* server;
    std::optional<frameworks::VersionPolicy> policy;
    std::string label;
  };
  std::vector<Round> rounds;
  for (const auto& server : servers) {
    if (config.versions.empty()) {
      rounds.push_back({server.get(), std::nullopt, server->name()});
      continue;
    }
    for (const frameworks::VersionPolicy policy : config.versions) {
      rounds.push_back({server.get(), policy,
                        server->name() + " [" + frameworks::to_string(policy) + "]"});
    }
  }
  std::vector<soap::HybridProfile> profiles;
  for (const auto& client : clients) {
    profiles.push_back(config.versions.empty()
                           ? soap::HybridProfile::kPure11
                           : frameworks::profile_for(client->version_policy()));
  }

  for (const Round& round : rounds) {
    const frameworks::ServerFramework* server = round.server;
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    CommServerResult server_result;
    server_result.server = round.label;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      CommCell cell;
      cell.client = clients[i]->name();
      server_result.cells.push_back(std::move(cell));
    }

    obs::Span server_span(config.tracer, "server:" + server_result.server, run_span);

    // Deployment is cheap and sequential; invocations parallelize over
    // services (the same plan as the main campaign runner).
    obs::Span deploy_span(config.tracer, "phase:deploy", server_span);
    obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "comm.phase.deploy_us");
    std::vector<frameworks::DeployedService> deployed;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) deployed.push_back(std::move(service.value()));
    }
    server_result.services_deployed = deployed.size();
    obs::add(config.metrics, "comm.services_deployed", deployed.size());
    deploy_span.annotate("deployed", deployed.size());
    deploy_span.end();
    deploy_timer.stop();

    // Parse-once: one shared description per service (no WS-I — the
    // communication study never consults the verdict), shared by all 11
    // clients' generation gates and the marshaller.
    std::vector<frameworks::SharedDescription> descriptions;
    if (config.parse_cache) {
      obs::Span parse_span(config.tracer, "phase:parse", server_span);
      obs::ScopedTimer parse_timer = obs::timer(config.metrics, "comm.phase.parse_us");
      const auto build_slice = [&](std::size_t begin, std::size_t end) {
        std::vector<frameworks::SharedDescription> built;
        built.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          built.push_back(
              frameworks::SharedDescription::from_deployed(deployed[i], /*with_wsi=*/false));
        }
        return built;
      };
      descriptions.reserve(deployed.size());
      for (std::vector<frameworks::SharedDescription>& slice :
           parallel_slices(deployed.size(), config.threads, build_slice)) {
        for (frameworks::SharedDescription& description : slice) {
          descriptions.push_back(std::move(description));
        }
      }
      obs::add(config.metrics, "comm.parse.wsdl_parses", descriptions.size());
      parse_span.end();
      parse_timer.stop();
    }

    struct PartialCell {
      std::array<std::size_t, kCommOutcomeCount> outcomes{};
      std::size_t transport_4xx = 0;
      std::size_t transport_5xx = 0;
    };
    struct Partial {
      std::vector<PartialCell> cells;
      std::size_t sniffed = 0;
    };
    obs::Span invoke_span(config.tracer, "phase:invoke", server_span);
    obs::ScopedTimer invoke_timer = obs::timer(config.metrics, "comm.phase.invoke_us");
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
      Partial partial;
      partial.cells.resize(clients.size());
      for (std::size_t index = begin; index < end; ++index) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          const InvocationOutcome result = invoke_echo_once(
              *server, deployed[index],
              config.parse_cache ? &descriptions[index] : nullptr, *clients[i],
              client_compilers[i].get(), &partial.sniffed, profiles[i],
              round.policy.has_value() ? &*round.policy : nullptr);
          ++partial.cells[i].outcomes[static_cast<std::size_t>(result.outcome)];
          obs::add(config.metrics, "comm.invocations_total");
          obs::add(config.metrics,
                   config.parse_cache ? "comm.parse.cache_hits" : "comm.parse.wsdl_parses");
          if (result.outcome != CommOutcome::kBlockedEarlier &&
              result.outcome != CommOutcome::kOk) {
            obs::add(config.metrics, "comm.failures");
          }
          if (result.outcome == CommOutcome::kTransportError) {
            if (result.http_status >= 400 && result.http_status < 500) {
              ++partial.cells[i].transport_4xx;
            } else if (result.http_status >= 500 && result.http_status < 600) {
              ++partial.cells[i].transport_5xx;
            }
          }
        }
      }
      return partial;
    };
    PoolStats pool_stats;
    const std::vector<Partial> partials =
        parallel_slices(deployed.size(), config.threads, run_slice, &pool_stats);
    if (config.metrics != nullptr) {
      config.metrics->gauge("comm.pool.workers").set_max(
          static_cast<std::int64_t>(pool_stats.workers));
      config.metrics->gauge("comm.pool.max_queue_depth").set_max(
          static_cast<std::int64_t>(pool_stats.max_queue_depth));
    }
    for (const Partial& partial : partials) {
      result.sniffed_violations += partial.sniffed;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        for (std::size_t outcome = 0; outcome < kCommOutcomeCount; ++outcome) {
          server_result.cells[i].outcomes[outcome] += partial.cells[i].outcomes[outcome];
        }
        server_result.cells[i].transport_4xx += partial.cells[i].transport_4xx;
        server_result.cells[i].transport_5xx += partial.cells[i].transport_5xx;
      }
    }
    for (const CommCell& cell : server_result.cells) {
      obs::Span cell_span(config.tracer, "cell:" + cell.client, invoke_span);
      cell_span.annotate("attempted", cell.attempted());
      cell_span.annotate("ok", cell.count(CommOutcome::kOk));
    }
    invoke_span.end();
    invoke_timer.stop();
    result.servers.push_back(std::move(server_result));
  }
  obs::add(config.metrics, "comm.sniffed_violations", result.sniffed_violations);
  return result;
}

std::string format_communication(const CommunicationResult& result) {
  std::ostringstream out;
  out << "Communication + Execution study (the paper's future work; no paper "
         "reference values exist)\n";
  for (const CommServerResult& server : result.servers) {
    out << server.server << " — " << server.services_deployed << " services\n";
    out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(9)
        << "attempted" << std::setw(8) << "ok" << std::setw(10) << "no-proxy" << std::setw(11)
        << "transport" << std::setw(8) << "fault" << std::setw(10) << "mismatch"
        << std::setw(11) << "vmismatch" << "\n";
    for (const CommCell& cell : server.cells) {
      out << "  " << std::left << std::setw(44) << cell.client << std::right << std::setw(9)
          << cell.attempted() << std::setw(8) << cell.count(CommOutcome::kOk) << std::setw(10)
          << cell.count(CommOutcome::kNoInvocableProxy) << std::setw(11)
          << cell.count(CommOutcome::kTransportError) << std::setw(8)
          << cell.count(CommOutcome::kServerFault) << std::setw(10)
          << cell.count(CommOutcome::kEchoMismatch) << std::setw(11)
          << cell.count(CommOutcome::kVersionMismatch) << "\n";
    }
  }
  std::size_t transport_4xx = 0;
  std::size_t transport_5xx = 0;
  for (const CommServerResult& server : result.servers) {
    for (const CommCell& cell : server.cells) {
      transport_4xx += cell.transport_4xx;
      transport_5xx += cell.transport_5xx;
    }
  }
  out << "totals: " << result.total_attempted() << " invocations attempted, "
      << result.total_failures() << " communication-step failures, "
      << result.sniffed_violations
      << " requests flagged by the contract-conformance sniffer\n";
  out << "transport detail: " << transport_4xx << " refused at the HTTP layer (4xx), "
      << transport_5xx << " rejected server-side (5xx)\n";
  return out.str();
}

std::string communication_csv(const CommunicationResult& result) {
  std::ostringstream out;
  out << "server,client,blocked,no_proxy,transport,server_fault,mismatch,ok,"
         "version_mismatch,transport_4xx,transport_5xx\n";
  for (const CommServerResult& server : result.servers) {
    for (const CommCell& cell : server.cells) {
      out << server.server << ',' << cell.client << ','
          << cell.count(CommOutcome::kBlockedEarlier) << ','
          << cell.count(CommOutcome::kNoInvocableProxy) << ','
          << cell.count(CommOutcome::kTransportError) << ','
          << cell.count(CommOutcome::kServerFault) << ','
          << cell.count(CommOutcome::kEchoMismatch) << ',' << cell.count(CommOutcome::kOk)
          << ',' << cell.count(CommOutcome::kVersionMismatch)
          << ',' << cell.transport_4xx << ',' << cell.transport_5xx << '\n';
    }
  }
  return out.str();
}

}  // namespace wsx::interop
