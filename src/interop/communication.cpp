#include "interop/communication.hpp"

#include <atomic>
#include <future>
#include <iomanip>
#include <sstream>
#include <thread>

#include "compilers/compiler.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"

namespace wsx::interop {

const char* to_string(CommOutcome outcome) {
  switch (outcome) {
    case CommOutcome::kBlockedEarlier:
      return "blocked earlier";
    case CommOutcome::kNoInvocableProxy:
      return "no invocable proxy";
    case CommOutcome::kTransportError:
      return "transport error";
    case CommOutcome::kServerFault:
      return "server fault";
    case CommOutcome::kEchoMismatch:
      return "echo mismatch";
    case CommOutcome::kOk:
      return "ok";
  }
  return "unknown";
}

std::size_t CommCell::attempted() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kCommOutcomeCount; ++i) total += outcomes[i];
  return total - count(CommOutcome::kBlockedEarlier);
}

std::size_t CommCell::failures() const { return attempted() - count(CommOutcome::kOk); }

std::size_t CommunicationResult::total_attempted() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.attempted();
  }
  return total;
}

std::size_t CommunicationResult::total_failures() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.failures();
  }
  return total;
}

std::size_t CommunicationResult::total(CommOutcome outcome) const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.count(outcome);
  }
  return total;
}

namespace {

struct InvocationOutcome {
  CommOutcome outcome = CommOutcome::kBlockedEarlier;
  int http_status = 0;  ///< only meaningful for wire-level outcomes
};

/// One end-to-end invocation: marshal → HTTP → execute → unmarshal → check.
/// The call preparation and response classification live in
/// frameworks/invocation.* and are shared with the chaos campaign.
/// `sniffed_violations`, when non-null, counts requests the conformance
/// sniffer (soap/validate.hpp) flags as contract violations — measured
/// independently of how the server reacts.
InvocationOutcome invoke_once(const frameworks::ServerFramework& server,
                              const frameworks::DeployedService& service,
                              const frameworks::ClientFramework& client,
                              const compilers::Compiler* compiler,
                              std::size_t* sniffed_violations = nullptr) {
  const frameworks::PreparedCall call =
      frameworks::prepare_echo_call(service, client, compiler);
  if (call.status == frameworks::PreparedCall::Status::kBlockedEarlier) {
    return {CommOutcome::kBlockedEarlier, 0};
  }
  if (call.status == frameworks::PreparedCall::Status::kNoInvocableProxy) {
    return {CommOutcome::kNoInvocableProxy, 0};
  }

  if (sniffed_violations != nullptr) {
    Result<soap::Envelope> request = soap::parse(call.request.body);
    if (request.ok() && !soap::validate_request(service.wsdl, *request).empty()) {
      ++*sniffed_violations;
    }
  }

  // The wire + Execution step.
  const soap::HttpResponse http_response = server.handle_http(service, call.request);
  const frameworks::EchoClassification classified =
      frameworks::classify_echo_response(http_response, call.payload);
  switch (classified.outcome) {
    case frameworks::EchoOutcome::kTransportError:
      return {CommOutcome::kTransportError, classified.http_status};
    case frameworks::EchoOutcome::kServerFault:
      return {CommOutcome::kServerFault, classified.http_status};
    case frameworks::EchoOutcome::kEchoMismatch:
      return {CommOutcome::kEchoMismatch, classified.http_status};
    case frameworks::EchoOutcome::kOk:
      break;
  }
  return {CommOutcome::kOk, classified.http_status};
}

}  // namespace

CommunicationResult run_communication_study(const StudyConfig& config) {
  CommunicationResult result;

  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  for (const auto& server : servers) {
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    CommServerResult server_result;
    server_result.server = server->name();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      CommCell cell;
      cell.client = clients[i]->name();
      server_result.cells.push_back(std::move(cell));
    }

    // Deployment is cheap and sequential; invocations parallelize over
    // services (the same plan as the main campaign runner).
    std::vector<frameworks::DeployedService> deployed;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) deployed.push_back(std::move(service.value()));
    }
    server_result.services_deployed = deployed.size();

    struct PartialCell {
      std::array<std::size_t, kCommOutcomeCount> outcomes{};
      std::size_t transport_4xx = 0;
      std::size_t transport_5xx = 0;
    };
    struct Partial {
      std::vector<PartialCell> cells;
      std::size_t sniffed = 0;
    };
    const std::size_t worker_count = std::max<std::size_t>(
        1, config.threads != 0 ? config.threads : std::thread::hardware_concurrency());
    const std::size_t chunk =
        (deployed.size() + worker_count - 1) / std::max<std::size_t>(1, worker_count);
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
      Partial partial;
      partial.cells.resize(clients.size());
      for (std::size_t index = begin; index < end; ++index) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          const InvocationOutcome result = invoke_once(
              *server, deployed[index], *clients[i], client_compilers[i].get(),
              &partial.sniffed);
          ++partial.cells[i].outcomes[static_cast<std::size_t>(result.outcome)];
          if (result.outcome == CommOutcome::kTransportError) {
            if (result.http_status >= 400 && result.http_status < 500) {
              ++partial.cells[i].transport_4xx;
            } else if (result.http_status >= 500 && result.http_status < 600) {
              ++partial.cells[i].transport_5xx;
            }
          }
        }
      }
      return partial;
    };
    std::vector<std::future<Partial>> futures;
    for (std::size_t begin = 0; begin < deployed.size(); begin += chunk) {
      futures.push_back(std::async(std::launch::async, run_slice, begin,
                                   std::min(deployed.size(), begin + chunk)));
    }
    for (std::future<Partial>& future : futures) {
      const Partial partial = future.get();
      result.sniffed_violations += partial.sniffed;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        for (std::size_t outcome = 0; outcome < kCommOutcomeCount; ++outcome) {
          server_result.cells[i].outcomes[outcome] += partial.cells[i].outcomes[outcome];
        }
        server_result.cells[i].transport_4xx += partial.cells[i].transport_4xx;
        server_result.cells[i].transport_5xx += partial.cells[i].transport_5xx;
      }
    }
    result.servers.push_back(std::move(server_result));
  }
  return result;
}

std::string format_communication(const CommunicationResult& result) {
  std::ostringstream out;
  out << "Communication + Execution study (the paper's future work; no paper "
         "reference values exist)\n";
  for (const CommServerResult& server : result.servers) {
    out << server.server << " — " << server.services_deployed << " services\n";
    out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(9)
        << "attempted" << std::setw(8) << "ok" << std::setw(10) << "no-proxy" << std::setw(11)
        << "transport" << std::setw(8) << "fault" << std::setw(10) << "mismatch" << "\n";
    for (const CommCell& cell : server.cells) {
      out << "  " << std::left << std::setw(44) << cell.client << std::right << std::setw(9)
          << cell.attempted() << std::setw(8) << cell.count(CommOutcome::kOk) << std::setw(10)
          << cell.count(CommOutcome::kNoInvocableProxy) << std::setw(11)
          << cell.count(CommOutcome::kTransportError) << std::setw(8)
          << cell.count(CommOutcome::kServerFault) << std::setw(10)
          << cell.count(CommOutcome::kEchoMismatch) << "\n";
    }
  }
  std::size_t transport_4xx = 0;
  std::size_t transport_5xx = 0;
  for (const CommServerResult& server : result.servers) {
    for (const CommCell& cell : server.cells) {
      transport_4xx += cell.transport_4xx;
      transport_5xx += cell.transport_5xx;
    }
  }
  out << "totals: " << result.total_attempted() << " invocations attempted, "
      << result.total_failures() << " communication-step failures, "
      << result.sniffed_violations
      << " requests flagged by the contract-conformance sniffer\n";
  out << "transport detail: " << transport_4xx << " refused at the HTTP layer (4xx), "
      << transport_5xx << " rejected server-side (5xx)\n";
  return out.str();
}

std::string communication_csv(const CommunicationResult& result) {
  std::ostringstream out;
  out << "server,client,blocked,no_proxy,transport,server_fault,mismatch,ok,"
         "transport_4xx,transport_5xx\n";
  for (const CommServerResult& server : result.servers) {
    for (const CommCell& cell : server.cells) {
      out << server.server << ',' << cell.client << ','
          << cell.count(CommOutcome::kBlockedEarlier) << ','
          << cell.count(CommOutcome::kNoInvocableProxy) << ','
          << cell.count(CommOutcome::kTransportError) << ','
          << cell.count(CommOutcome::kServerFault) << ','
          << cell.count(CommOutcome::kEchoMismatch) << ',' << cell.count(CommOutcome::kOk)
          << ',' << cell.transport_4xx << ',' << cell.transport_5xx << '\n';
    }
  }
  return out.str();
}

}  // namespace wsx::interop
