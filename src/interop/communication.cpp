#include "interop/communication.hpp"

#include <atomic>
#include <future>
#include <iomanip>
#include <sstream>
#include <thread>

#include "compilers/compiler.hpp"
#include "frameworks/features.hpp"
#include "frameworks/registry.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"

namespace wsx::interop {

const char* to_string(CommOutcome outcome) {
  switch (outcome) {
    case CommOutcome::kBlockedEarlier:
      return "blocked earlier";
    case CommOutcome::kNoInvocableProxy:
      return "no invocable proxy";
    case CommOutcome::kTransportError:
      return "transport error";
    case CommOutcome::kServerFault:
      return "server fault";
    case CommOutcome::kEchoMismatch:
      return "echo mismatch";
    case CommOutcome::kOk:
      return "ok";
  }
  return "unknown";
}

std::size_t CommCell::attempted() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kCommOutcomeCount; ++i) total += outcomes[i];
  return total - count(CommOutcome::kBlockedEarlier);
}

std::size_t CommCell::failures() const { return attempted() - count(CommOutcome::kOk); }

std::size_t CommunicationResult::total_attempted() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.attempted();
  }
  return total;
}

std::size_t CommunicationResult::total_failures() const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.failures();
  }
  return total;
}

std::size_t CommunicationResult::total(CommOutcome outcome) const {
  std::size_t total = 0;
  for (const CommServerResult& server : servers) {
    for (const CommCell& cell : server.cells) total += cell.count(outcome);
  }
  return total;
}

namespace {

/// One end-to-end invocation: marshal → HTTP → execute → unmarshal → check.
/// `sniffed_violations`, when non-null, counts requests the conformance
/// sniffer (soap/validate.hpp) flags as contract violations — measured
/// independently of how the server reacts.
CommOutcome invoke_once(const frameworks::ServerFramework& server,
                        const frameworks::DeployedService& service,
                        const frameworks::ClientFramework& client,
                        const compilers::Compiler* compiler,
                        std::size_t* sniffed_violations = nullptr) {
  // Steps 2–3 gate the call exactly as in the main study.
  frameworks::GenerationResult generation = client.generate(service.wsdl_text);
  if (generation.diagnostics.has_errors() || !generation.produced_artifacts()) {
    return CommOutcome::kBlockedEarlier;
  }
  if (compiler != nullptr && compiler->compile(*generation.artifacts).has_errors()) {
    return CommOutcome::kBlockedEarlier;
  }
  if (generation.artifacts->client_operations.empty()) {
    // The method-less client objects of the zero-operation descriptions.
    return CommOutcome::kNoInvocableProxy;
  }

  const std::string operation = generation.artifacts->client_operations.front();
  // Typed proxies send values from the parameter type's value space: for
  // enumeration types the stub API only admits the declared constants.
  std::string payload = "probe-" + service.spec.service_name();
  for (const xsd::Schema& schema : service.wsdl.schemas) {
    for (const xsd::SimpleTypeDecl& simple : schema.simple_types) {
      if (!simple.enumeration.empty()) payload = simple.enumeration.front();
    }
  }

  // Marshalling — the client runtime builds the request envelope.
  const frameworks::ClientFramework::InvocationPolicy policy = client.invocation_policy();
  const frameworks::WsdlFeatures features = frameworks::analyze(service.wsdl);
  const bool uncommon = policy.marshals_uncommon_structure &&
                        (features.unresolved_foreign_type_ref ||
                         features.unresolved_foreign_attr_ref || features.schema_element_ref);
  const std::string argument_name = uncommon ? "arg0Struct" : "arg0";
  Result<soap::Envelope> request =
      soap::build_request(service.wsdl, operation, {{argument_name, payload}});
  if (!request.ok()) return CommOutcome::kNoInvocableProxy;

  if (sniffed_violations != nullptr &&
      !soap::validate_request(service.wsdl, *request).empty()) {
    ++*sniffed_violations;
  }

  // SOAPAction header policy.
  bool binding_declares_action = false;
  for (const wsdl::Binding& binding : service.wsdl.bindings) {
    for (const wsdl::BindingOperation& bound : binding.operations) {
      if (bound.name == operation && bound.has_soap_action) binding_declares_action = true;
    }
  }
  soap::HttpRequest http = soap::make_soap_request(
      service.wsdl.services.empty() ? "http://localhost/"
                                    : service.wsdl.services.front().ports.front().location,
      "", soap::write(*request));
  if (!binding_declares_action && policy.omit_soap_action_when_unspecified) {
    // gSOAP stubs send no SOAPAction header when the binding declares none.
    std::erase_if(http.headers,
                  [](const soap::HttpHeader& header) { return header.name == "SOAPAction"; });
  }

  // The wire + Execution step.
  const soap::HttpResponse http_response = server.handle_http(service, http);
  if (http_response.status == 405 || http_response.status == 415) {
    return CommOutcome::kTransportError;
  }
  Result<soap::Envelope> response = soap::parse(http_response.body);
  if (!response.ok()) return CommOutcome::kTransportError;
  if (response->is_fault()) {
    // Distinguish header-level rejections from execution faults.
    return response->fault().fault_string.find("SOAPAction") != std::string::npos
               ? CommOutcome::kTransportError
               : CommOutcome::kServerFault;
  }
  Result<std::string> echoed = soap::response_value(*response);
  if (!echoed.ok()) return CommOutcome::kServerFault;
  return *echoed == payload ? CommOutcome::kOk : CommOutcome::kEchoMismatch;
}

}  // namespace

CommunicationResult run_communication_study(const StudyConfig& config) {
  CommunicationResult result;

  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  for (const auto& server : servers) {
    const catalog::TypeCatalog& catalog =
        server->language() == "C#" ? dotnet_catalog : java_catalog;
    CommServerResult server_result;
    server_result.server = server->name();
    for (std::size_t i = 0; i < clients.size(); ++i) {
      CommCell cell;
      cell.client = clients[i]->name();
      server_result.cells.push_back(std::move(cell));
    }

    // Deployment is cheap and sequential; invocations parallelize over
    // services (the same plan as the main campaign runner).
    std::vector<frameworks::DeployedService> deployed;
    for (const catalog::TypeInfo& type : catalog.types()) {
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (service.ok()) deployed.push_back(std::move(service.value()));
    }
    server_result.services_deployed = deployed.size();

    struct Partial {
      std::vector<std::array<std::size_t, kCommOutcomeCount>> cells;
      std::size_t sniffed = 0;
    };
    const std::size_t worker_count = std::max<std::size_t>(
        1, config.threads != 0 ? config.threads : std::thread::hardware_concurrency());
    const std::size_t chunk =
        (deployed.size() + worker_count - 1) / std::max<std::size_t>(1, worker_count);
    const auto run_slice = [&](std::size_t begin, std::size_t end) {
      Partial partial;
      partial.cells.resize(clients.size());
      for (std::size_t index = begin; index < end; ++index) {
        for (std::size_t i = 0; i < clients.size(); ++i) {
          const CommOutcome outcome = invoke_once(
              *server, deployed[index], *clients[i], client_compilers[i].get(),
              &partial.sniffed);
          ++partial.cells[i][static_cast<std::size_t>(outcome)];
        }
      }
      return partial;
    };
    std::vector<std::future<Partial>> futures;
    for (std::size_t begin = 0; begin < deployed.size(); begin += chunk) {
      futures.push_back(std::async(std::launch::async, run_slice, begin,
                                   std::min(deployed.size(), begin + chunk)));
    }
    for (std::future<Partial>& future : futures) {
      const Partial partial = future.get();
      result.sniffed_violations += partial.sniffed;
      for (std::size_t i = 0; i < clients.size(); ++i) {
        for (std::size_t outcome = 0; outcome < kCommOutcomeCount; ++outcome) {
          server_result.cells[i].outcomes[outcome] += partial.cells[i][outcome];
        }
      }
    }
    result.servers.push_back(std::move(server_result));
  }
  return result;
}

std::string format_communication(const CommunicationResult& result) {
  std::ostringstream out;
  out << "Communication + Execution study (the paper's future work; no paper "
         "reference values exist)\n";
  for (const CommServerResult& server : result.servers) {
    out << server.server << " — " << server.services_deployed << " services\n";
    out << "  " << std::left << std::setw(44) << "client" << std::right << std::setw(9)
        << "attempted" << std::setw(8) << "ok" << std::setw(10) << "no-proxy" << std::setw(11)
        << "transport" << std::setw(8) << "fault" << std::setw(10) << "mismatch" << "\n";
    for (const CommCell& cell : server.cells) {
      out << "  " << std::left << std::setw(44) << cell.client << std::right << std::setw(9)
          << cell.attempted() << std::setw(8) << cell.count(CommOutcome::kOk) << std::setw(10)
          << cell.count(CommOutcome::kNoInvocableProxy) << std::setw(11)
          << cell.count(CommOutcome::kTransportError) << std::setw(8)
          << cell.count(CommOutcome::kServerFault) << std::setw(10)
          << cell.count(CommOutcome::kEchoMismatch) << "\n";
    }
  }
  out << "totals: " << result.total_attempted() << " invocations attempted, "
      << result.total_failures() << " communication-step failures, "
      << result.sniffed_violations
      << " requests flagged by the contract-conformance sniffer\n";
  return out.str();
}

std::string communication_csv(const CommunicationResult& result) {
  std::ostringstream out;
  out << "server,client,blocked,no_proxy,transport,server_fault,mismatch,ok\n";
  for (const CommServerResult& server : result.servers) {
    for (const CommCell& cell : server.cells) {
      out << server.server << ',' << cell.client << ','
          << cell.count(CommOutcome::kBlockedEarlier) << ','
          << cell.count(CommOutcome::kNoInvocableProxy) << ','
          << cell.count(CommOutcome::kTransportError) << ','
          << cell.count(CommOutcome::kServerFault) << ','
          << cell.count(CommOutcome::kEchoMismatch) << ',' << cell.count(CommOutcome::kOk)
          << '\n';
    }
  }
  return out.str();
}

}  // namespace wsx::interop
