#include "interop/study.hpp"

#include <algorithm>
#include <mutex>

#include "common/json.hpp"
#include "common/pool.hpp"
#include "common/strings.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "wsi/profile.hpp"

namespace wsx::interop {
namespace {

/// Moves the error/crash diagnostics out of `sink` into `errors`. Clean
/// sinks — the overwhelmingly common case — skip the scan entirely, and
/// failing ones reserve once and move instead of copying string payloads.
void take_errors(DiagnosticSink& sink, std::vector<Diagnostic>& errors) {
  if (!sink.has_errors()) return;
  std::size_t count = 0;
  for (const Diagnostic& diagnostic : sink.diagnostics()) {
    if (diagnostic.severity == Severity::kError || diagnostic.severity == Severity::kCrash) {
      ++count;
    }
  }
  errors.reserve(errors.size() + count);
  for (Diagnostic& diagnostic : sink.diagnostics()) {
    if (diagnostic.severity == Severity::kError || diagnostic.severity == Severity::kCrash) {
      errors.push_back(std::move(diagnostic));
    }
  }
}

/// Partial aggregation produced by one worker over a slice of services.
struct Partial {
  std::vector<CellResult> cells;
  std::size_t same_framework_failures = 0;
  std::size_t same_platform_failures = 0;
  std::size_t flagged_with_downstream_error = 0;
  std::size_t generation_errors_on_flagged = 0;
  std::size_t generation_errors_on_compliant = 0;
};

}  // namespace

bool same_framework_pair(const std::string& server, const std::string& client) {
  // Framework identity across the client/server subsystem split (the
  // paper's same-framework analysis, §V).
  if (starts_with(server, "Metro") && starts_with(client, "Oracle Metro")) return true;
  if (starts_with(server, "JBossWS") && starts_with(client, "JBossWS")) return true;
  if (starts_with(server, "WCF") && starts_with(client, ".NET")) return true;
  return false;
}

bool same_platform_pair(const std::string& server, const std::string& client) {
  // The strict reading behind the paper's 307: client and server running on
  // the very same installed platform (.NET hosts all three languages).
  return starts_with(server, "WCF") && starts_with(client, ".NET");
}

ClientTestOutcome run_client_test(const frameworks::DeployedService& service,
                                  const frameworks::SharedDescription* description,
                                  const frameworks::ClientFramework& client,
                                  const compilers::Compiler* compiler,
                                  obs::Registry* metrics) {
  ClientTestOutcome outcome;

  // Step (b): client artifact generation — against the campaign's shared
  // parse when the cache is on, or re-parsing the served text when off.
  obs::ScopedTimer generation_timer = obs::timer(metrics, "study.step.generation_us");
  frameworks::GenerationResult generation = description != nullptr
                                                ? client.generate(*description)
                                                : client.generate(service.wsdl_text);
  generation_timer.stop();
  if (description != nullptr) {
    obs::add(metrics, "study.parse.cache_hits");
  } else {
    obs::add(metrics, "study.parse.wsdl_parses");
  }
  outcome.generation_warning = generation.diagnostics.has_warnings();
  outcome.generation_error = generation.diagnostics.has_errors();
  take_errors(generation.diagnostics, outcome.errors);
  // Erratic tools may leave partial artifacts behind even after reporting
  // an error (§III.B.c); when they do, the artifacts proceed to step (c).
  if (!generation.produced_artifacts()) return outcome;
  outcome.artifacts_generated = true;

  // Step (c): compilation — or, for dynamic clients, the instantiation
  // check, whose outcome the study reports under the generation step
  // (Table II footnote 3: these clients have no compilation column).
  if (compiler == nullptr) {
    DiagnosticSink instantiation = compilers::check_instantiation(*generation.artifacts);
    outcome.generation_warning |= instantiation.has_warnings();
    outcome.generation_error |= instantiation.has_errors();
    take_errors(instantiation, outcome.errors);
    return outcome;
  }

  obs::ScopedTimer compilation_timer = obs::timer(metrics, "study.step.compilation_us");
  DiagnosticSink compile_diagnostics = compiler->compile(*generation.artifacts);
  compilation_timer.stop();
  outcome.compilation_warning = compile_diagnostics.has_warnings();
  outcome.compilation_error = compile_diagnostics.has_errors();
  take_errors(compile_diagnostics, outcome.errors);
  return outcome;
}

std::string to_json_line(const TestRecord& record) {
  return json::ObjectWriter{}
      .field("server", record.server)
      .field("client", record.client)
      .field("service", record.service)
      .field("type", record.type_name)
      .field("description_flagged", record.description_flagged)
      .field("generation_warning", record.generation_warning)
      .field("generation_error", record.generation_error)
      .field("compilation_warning", record.compilation_warning)
      .field("compilation_error", record.compilation_error)
      .str();
}

StepCounts ServerResult::generation_totals() const {
  StepCounts totals;
  for (const CellResult& cell : cells) totals += cell.generation;
  return totals;
}

StepCounts ServerResult::compilation_totals() const {
  StepCounts totals;
  for (const CellResult& cell : cells) totals += cell.compilation;
  return totals;
}

std::size_t StudyResult::total_tests() const {
  std::size_t total = 0;
  for (const ServerResult& server : servers) {
    for (const CellResult& cell : server.cells) total += cell.tests;
  }
  return total;
}

std::size_t StudyResult::total_services_created() const {
  std::size_t total = 0;
  for (const ServerResult& server : servers) total += server.services_created;
  return total;
}

std::size_t StudyResult::total_deployment_refusals() const {
  std::size_t total = 0;
  for (const ServerResult& server : servers) total += server.deployment_refusals;
  return total;
}

std::size_t StudyResult::total_description_warnings() const {
  std::size_t total = 0;
  for (const ServerResult& server : servers) total += server.description_warnings;
  return total;
}

StepCounts StudyResult::total_generation() const {
  StepCounts totals;
  for (const ServerResult& server : servers) totals += server.generation_totals();
  return totals;
}

StepCounts StudyResult::total_compilation() const {
  StepCounts totals;
  for (const ServerResult& server : servers) totals += server.compilation_totals();
  return totals;
}

std::size_t StudyResult::total_interop_errors() const {
  return total_generation().errors + total_compilation().errors;
}

PreparedServer prepare_server_campaign(const frameworks::ServerFramework& server,
                                       const std::vector<frameworks::ServiceSpec>& services,
                                       const StudyConfig& config, obs::SpanId parent_span) {
  PreparedServer prepared;
  ServerResult& result = prepared.result;
  result.server = server.name();
  result.application_server = server.application_server();
  result.services_created = services.size();

  // --- Testing-phase step (a): description generation at deployment. ---
  obs::Span deploy_span(config.tracer, "phase:deploy", parent_span);
  obs::ScopedTimer deploy_timer = obs::timer(config.metrics, "study.phase.deploy_us");
  std::vector<frameworks::DeployedService>& deployed = prepared.deployed;
  std::vector<bool>& flagged = prepared.flagged;  // failed WS-I or unusable
  deployed.reserve(services.size());
  for (const frameworks::ServiceSpec& spec : services) {
    Result<frameworks::DeployedService> deployment = server.deploy(spec);
    if (!deployment.ok()) {
      ++result.deployment_refusals;
      continue;
    }
    deployed.push_back(std::move(deployment.value()));
  }
  result.services_deployed = deployed.size();
  obs::add(config.metrics, "study.services_created", services.size());
  obs::add(config.metrics, "study.services_deployed", deployed.size());
  obs::add(config.metrics, "study.deployment_refusals", result.deployment_refusals);
  deploy_span.annotate("deployed", result.services_deployed);
  deploy_span.annotate("refused", result.deployment_refusals);
  deploy_span.end();
  deploy_timer.stop();

  // Parse-once phase: one SharedDescription per deployed service, built in
  // parallel. The descriptions carry the client-view parse, the marshalling
  // feature vector, and the WS-I verdict consumed by the phase below and by
  // every client in the testing phase.
  std::vector<frameworks::SharedDescription>& descriptions = prepared.descriptions;
  if (config.parse_cache) {
    obs::Span parse_span(config.tracer, "phase:parse", parent_span);
    obs::ScopedTimer parse_timer = obs::timer(config.metrics, "study.phase.parse_us");
    const auto build_slice = [&](std::size_t begin, std::size_t end) {
      std::vector<frameworks::SharedDescription> built;
      built.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        built.push_back(frameworks::SharedDescription::from_deployed(deployed[i]));
      }
      return built;
    };
    descriptions.reserve(deployed.size());
    for (std::vector<frameworks::SharedDescription>& slice :
         parallel_slices(deployed.size(), config.threads, build_slice)) {
      for (frameworks::SharedDescription& description : slice) {
        descriptions.push_back(std::move(description));
      }
    }
    obs::add(config.metrics, "study.parse.wsdl_parses", descriptions.size());
    parse_span.annotate("descriptions", descriptions.size());
    parse_span.end();
    parse_timer.stop();
  }

  // WS-I Basic Profile check of every published description (§III.B.d).
  // With the parse cache on, the verdicts were computed alongside the
  // shared parse above and are only tallied here.
  obs::Span wsi_span(config.tracer, "phase:wsi-check", parent_span);
  obs::ScopedTimer wsi_timer = obs::timer(config.metrics, "study.phase.wsi_check_us");
  flagged.resize(deployed.size(), false);
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    const auto tally = [&](const wsi::ComplianceReport& report) {
      const bool zero_ops = deployed[i].wsdl.operation_count() == 0;
      if (!report.compliant()) ++result.wsi_failures;
      if (zero_ops) ++result.zero_operation_services;
      flagged[i] = !report.compliant() || zero_ops;
      if (flagged[i]) ++result.description_warnings;
    };
    if (config.parse_cache) {
      tally(*descriptions[i].wsi_report());
    } else {
      tally(wsi::check(deployed[i].wsdl));
    }
  }
  obs::add(config.metrics, "study.description_flags", result.description_warnings);
  wsi_span.annotate("flagged", result.description_warnings);
  wsi_span.end();
  wsi_timer.stop();

  // Ablation: the deploy-time WS-I gate withdraws flagged descriptions
  // before any client consumes them.
  if (config.wsi_deploy_gate) {
    std::vector<frameworks::DeployedService> kept;
    std::vector<frameworks::SharedDescription> kept_descriptions;
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      if (flagged[i]) {
        ++result.gate_rejections;
      } else {
        kept.push_back(std::move(deployed[i]));
        if (config.parse_cache) kept_descriptions.push_back(std::move(descriptions[i]));
      }
    }
    deployed = std::move(kept);
    descriptions = std::move(kept_descriptions);
    flagged.assign(deployed.size(), false);
    result.services_deployed = deployed.size();
  }
  return prepared;
}

ServerResult run_server_campaign(
    const frameworks::ServerFramework& server,
    const std::vector<frameworks::ServiceSpec>& services,
    const std::vector<std::unique_ptr<frameworks::ClientFramework>>& clients,
    const StudyConfig& config, StudyResult* cross_totals, obs::SpanId parent_span) {
  obs::Span server_span(config.tracer, "server:" + server.name(), parent_span);
  PreparedServer prepared =
      prepare_server_campaign(server, services, config, server_span.id());
  ServerResult result = std::move(prepared.result);
  const std::vector<frameworks::DeployedService>& deployed = prepared.deployed;
  const std::vector<frameworks::SharedDescription>& descriptions = prepared.descriptions;
  const std::vector<bool>& flagged = prepared.flagged;

  // --- Steps (b)+(c)+(d) for every client, parallel over services. ---
  std::vector<std::unique_ptr<compilers::Compiler>> client_compilers;
  for (const auto& client : clients) {
    client_compilers.push_back(compilers::make_compiler(client->language()));
  }

  obs::Span testing_span(config.tracer, "phase:testing", server_span);
  obs::ScopedTimer testing_timer = obs::timer(config.metrics, "study.phase.testing_us");

  std::mutex observer_mutex;
  const auto run_slice = [&](std::size_t begin, std::size_t end) {
    Partial partial;
    partial.cells.resize(clients.size());
    for (std::size_t service_index = begin; service_index < end; ++service_index) {
      const frameworks::DeployedService& service = deployed[service_index];
      bool service_errored = false;
      for (std::size_t client_index = 0; client_index < clients.size(); ++client_index) {
        const frameworks::ClientFramework& client = *clients[client_index];
        CellResult& cell = partial.cells[client_index];
        const ClientTestOutcome outcome = run_client_test(
            service, config.parse_cache ? &descriptions[service_index] : nullptr, client,
            client_compilers[client_index].get(), config.metrics);
        ++cell.tests;
        obs::add(config.metrics, "study.tests_total");
        if (outcome.artifacts_generated) {
          obs::add(config.metrics, "study.artifacts_generated");
        }
        if (outcome.generation_warning) ++cell.generation.warnings;
        if (outcome.generation_error) ++cell.generation.errors;
        if (outcome.compilation_warning) ++cell.compilation.warnings;
        if (outcome.compilation_error) ++cell.compilation.errors;
        if (outcome.generation_error) obs::add(config.metrics, "study.generation_errors");
        if (outcome.compilation_error) {
          obs::add(config.metrics, "study.compilation_errors");
        }
        if (cell.samples.size() < config.samples_per_cell && !outcome.errors.empty()) {
          cell.samples.push_back(outcome.errors.front());
        }
        {
          // Count each distinct error code once per test.
          std::vector<std::string_view> seen;
          for (const Diagnostic& diagnostic : outcome.errors) {
            if (std::find(seen.begin(), seen.end(), diagnostic.code) != seen.end()) continue;
            seen.push_back(diagnostic.code);
            ++cell.error_codes[diagnostic.code];
          }
        }
        if (config.observer) {
          TestRecord record;
          record.server = result.server;
          record.client = client.name();
          record.service = service.spec.service_name();
          record.type_name =
              service.spec.type != nullptr ? service.spec.type->qualified_name() : "";
          record.description_flagged = flagged[service_index];
          record.generation_warning = outcome.generation_warning;
          record.generation_error = outcome.generation_error;
          record.compilation_warning = outcome.compilation_warning;
          record.compilation_error = outcome.compilation_error;
          const std::lock_guard<std::mutex> lock(observer_mutex);
          config.observer(record);
        }
        if (outcome.any_error()) {
          service_errored = true;
          if (same_framework_pair(result.server, client.name())) {
            ++partial.same_framework_failures;
          }
          if (same_platform_pair(result.server, client.name())) {
            ++partial.same_platform_failures;
          }
        }
        if (outcome.generation_error) {
          if (flagged[service_index]) {
            ++partial.generation_errors_on_flagged;
          } else {
            ++partial.generation_errors_on_compliant;
          }
        }
      }
      if (flagged[service_index] && service_errored) ++partial.flagged_with_downstream_error;
    }
    return partial;
  };

  PoolStats pool_stats;
  const std::vector<Partial> partials =
      parallel_slices(deployed.size(), config.threads, run_slice, &pool_stats);
  if (config.metrics != nullptr) {
    config.metrics->gauge("study.pool.workers").set_max(
        static_cast<std::int64_t>(pool_stats.workers));
    config.metrics->gauge("study.pool.max_queue_depth").set_max(
        static_cast<std::int64_t>(pool_stats.max_queue_depth));
  }

  // Deterministic merge, in slice order.
  result.cells.resize(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    result.cells[i].client = clients[i]->name();
    result.cells[i].client_language = clients[i]->language();
    result.cells[i].compiled = clients[i]->requires_compilation();
  }
  for (const Partial& partial : partials) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      CellResult& cell = result.cells[i];
      const CellResult& part = partial.cells[i];
      cell.tests += part.tests;
      cell.generation += part.generation;
      cell.compilation += part.compilation;
      for (const Diagnostic& sample : part.samples) {
        if (cell.samples.size() < config.samples_per_cell) cell.samples.push_back(sample);
      }
      for (const auto& [error_code, count] : part.error_codes) {
        cell.error_codes[error_code] += count;
      }
    }
    if (cross_totals != nullptr) {
      cross_totals->same_framework_failures += partial.same_framework_failures;
      cross_totals->same_platform_failures += partial.same_platform_failures;
      cross_totals->flagged_services_with_downstream_error +=
          partial.flagged_with_downstream_error;
      cross_totals->generation_errors_on_flagged += partial.generation_errors_on_flagged;
      cross_totals->generation_errors_on_compliant += partial.generation_errors_on_compliant;
    }
  }
  if (cross_totals != nullptr) cross_totals->flagged_services += result.description_warnings;

  // One span per server×client cell, annotated with its Table III numbers.
  for (const CellResult& cell : result.cells) {
    obs::Span cell_span(config.tracer, "cell:" + cell.client, testing_span);
    cell_span.annotate("tests", cell.tests);
    cell_span.annotate("generation_errors", cell.generation.errors);
    cell_span.annotate("compilation_errors", cell.compilation.errors);
  }
  testing_span.end();
  testing_timer.stop();
  return result;
}

StudyResult run_study(const StudyConfig& config) {
  StudyResult result;

  obs::Span run_span(config.tracer, "study");
  const std::uint64_t started_us =
      config.metrics != nullptr ? config.metrics->clock().now_us() : 0;

  // Preparation phase: catalogs and services (§III.A).
  obs::Span prepare_span(config.tracer, "phase:prepare", run_span);
  obs::ScopedTimer prepare_timer = obs::timer(config.metrics, "study.phase.prepare_us");
  const catalog::TypeCatalog java_catalog = catalog::make_java_catalog(config.java_spec);
  const catalog::TypeCatalog dotnet_catalog = catalog::make_dotnet_catalog(config.dotnet_spec);
  const std::vector<frameworks::ServiceSpec> java_services =
      frameworks::make_services(java_catalog, config.shape);
  const std::vector<frameworks::ServiceSpec> dotnet_services =
      frameworks::make_services(dotnet_catalog, config.shape);

  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();
  prepare_span.end();
  prepare_timer.stop();

  for (const auto& server : servers) {
    const bool is_dotnet = server->language() == "C#";
    const std::vector<frameworks::ServiceSpec>& services =
        is_dotnet ? dotnet_services : java_services;
    result.servers.push_back(
        run_server_campaign(*server, services, clients, config, &result, run_span.id()));
  }

  if (config.metrics != nullptr) {
    // Throughput gauge (runtime-dependent, excluded from deterministic
    // exports; zero under a frozen clock).
    const std::uint64_t elapsed_us = config.metrics->clock().now_us() - started_us;
    const std::size_t tests = result.total_tests();
    config.metrics->gauge("study.tests_per_sec")
        .set(elapsed_us == 0 ? 0
                             : static_cast<std::int64_t>(tests * 1000000 / elapsed_us));
  }
  return result;
}

}  // namespace wsx::interop
