// paper_reference.hpp — the DSN'14 paper's reported numbers, as
// reconstructed in DESIGN.md §3. Benches print paper-vs-measured from this
// table; the reproduction tests assert against it.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace wsx::interop::paper {

/// Fig. 4: per-server step overview (tests with warnings / errors).
struct Fig4Row {
  std::string_view server;
  std::size_t description_warnings;
  std::size_t description_errors;
  std::size_t generation_warnings;
  std::size_t generation_errors;
  std::size_t compilation_warnings;
  std::size_t compilation_errors;
};

inline constexpr std::array<Fig4Row, 3> kFig4 = {{
    {"Metro", 2, 0, 2489, 13, 4978, 529},
    {"JBossWS CXF", 4, 0, 2255, 21, 4496, 464},
    {"WCF .NET", 80, 0, 4, 256, 5004, 308},
}};

/// Table III: one row per client per server.
struct Table3Cell {
  std::string_view server;
  std::string_view client;
  std::size_t generation_warnings;
  std::size_t generation_errors;
  std::size_t compilation_warnings;
  std::size_t compilation_errors;
};

inline constexpr std::array<Table3Cell, 33> kTable3 = {{
    // Metro server — 2489 services; a=W3CEndpointReference, b=SimpleDateFormat.
    {"Metro", "Oracle Metro 2.3", 0, 1, 0, 0},
    {"Metro", "Apache Axis1 1.4", 0, 1, 2489, 477},
    {"Metro", "Apache Axis2 1.6.2", 0, 1, 2489, 1},
    {"Metro", "Apache CXF 2.7.6", 0, 1, 0, 0},
    {"Metro", "JBossWS CXF 4.2.3", 0, 1, 0, 0},
    {"Metro", ".NET (C#)", 0, 2, 0, 0},
    {"Metro", ".NET (Visual Basic .NET)", 0, 2, 0, 1},
    {"Metro", ".NET (JScript .NET)", 2489, 2, 0, 50},
    {"Metro", "gSOAP Toolkit 2.8.16", 0, 1, 0, 0},
    {"Metro", "Zend Framework 1.9", 0, 0, 0, 0},
    {"Metro", "suds Python 0.4", 0, 1, 0, 0},
    // JBossWS server — 2248 services; c=Future/Response (no operations),
    // d=W3CEndpointReference, e=SimpleDateFormat.
    {"JBossWS CXF", "Oracle Metro 2.3", 1, 3, 0, 0},
    {"JBossWS CXF", "Apache Axis1 1.4", 0, 1, 2248, 412},
    {"JBossWS CXF", "Apache Axis2 1.6.2", 0, 2, 2248, 1},
    {"JBossWS CXF", "Apache CXF 2.7.6", 0, 1, 0, 0},
    {"JBossWS CXF", "JBossWS CXF 4.2.3", 0, 1, 0, 0},
    {"JBossWS CXF", ".NET (C#)", 0, 4, 0, 0},
    {"JBossWS CXF", ".NET (Visual Basic .NET)", 0, 4, 0, 1},
    {"JBossWS CXF", ".NET (JScript .NET)", 2248, 4, 0, 50},
    {"JBossWS CXF", "gSOAP Toolkit 2.8.16", 2, 0, 0, 0},
    {"JBossWS CXF", "Zend Framework 1.9", 2, 0, 0, 0},
    {"JBossWS CXF", "suds Python 0.4", 2, 1, 0, 0},
    // WCF .NET server — 2502 services; f=80 WS-I failures (DataSet idiom,
    // encoded use, missing soapAction), g=DataTable family, h=SocketError.
    {"WCF .NET", "Oracle Metro 2.3", 0, 79, 0, 0},
    {"WCF .NET", "Apache Axis1 1.4", 0, 3, 2502, 0},
    {"WCF .NET", "Apache Axis2 1.6.2", 0, 0, 2502, 3},
    {"WCF .NET", "Apache CXF 2.7.6", 0, 79, 0, 0},
    {"WCF .NET", "JBossWS CXF 4.2.3", 0, 79, 0, 0},
    {"WCF .NET", ".NET (C#)", 1, 0, 0, 0},
    {"WCF .NET", ".NET (Visual Basic .NET)", 1, 0, 0, 4},
    {"WCF .NET", ".NET (JScript .NET)", 1, 2, 0, 301},
    {"WCF .NET", "gSOAP Toolkit 2.8.16", 0, 13, 0, 0},
    {"WCF .NET", "Zend Framework 1.9", 0, 0, 0, 0},
    {"WCF .NET", "suds Python 0.4", 1, 1, 0, 0},
}};

/// Headline aggregates (paper §IV prose; Fig.4-consistent values where the
/// prose disagrees with the figure — see EXPERIMENTS.md).
inline constexpr std::size_t kTotalTests = 79629;
inline constexpr std::size_t kServicesCreated = 22024;
inline constexpr std::size_t kWsdlFailures = 14785;
inline constexpr std::size_t kServicesDeployed = 7239;
inline constexpr std::size_t kDescriptionWarnings = 86;
inline constexpr std::size_t kGenerationWarnings = 4748;   // prose: 4763
inline constexpr std::size_t kGenerationErrors = 290;      // prose: 287
inline constexpr std::size_t kCompilationWarnings = 14478;
inline constexpr std::size_t kCompilationErrors = 1301;
inline constexpr std::size_t kInteropErrors = 1591;        // prose: 1583
inline constexpr std::size_t kSamePlatformFailures = 307;
inline constexpr std::size_t kFlaggedServices = 86;
inline constexpr std::size_t kFlaggedWithDownstreamError = 82;  // 95.3%

/// Maps a measured client display name onto the short names used above.
std::string_view normalize_client_name(std::string_view client);
/// Maps a measured server display name onto the short names used above.
std::string_view normalize_server_name(std::string_view server);

}  // namespace wsx::interop::paper
