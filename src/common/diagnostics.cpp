#include "common/diagnostics.hpp"

#include <algorithm>

namespace wsx {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
    case Severity::kCrash:
      return "crash";
  }
  return "unknown";
}

bool severity_from_string(std::string_view text, Severity& out) {
  if (text == "note") {
    out = Severity::kNote;
  } else if (text == "warning") {
    out = Severity::kWarning;
  } else if (text == "error") {
    out = Severity::kError;
  } else if (text == "crash") {
    out = Severity::kCrash;
  } else {
    return false;
  }
  return true;
}

std::string SourceLocation::str() const {
  std::string out = uri;
  if (known()) {
    if (!out.empty()) out += ':';
    out += std::to_string(line);
    out += ':';
    out += std::to_string(column);
  }
  return out;
}

void DiagnosticSink::note(std::string code, std::string message, std::string subject) {
  add({Severity::kNote, std::move(code), std::move(message), std::move(subject)});
}

void DiagnosticSink::warn(std::string code, std::string message, std::string subject) {
  add({Severity::kWarning, std::move(code), std::move(message), std::move(subject)});
}

void DiagnosticSink::error(std::string code, std::string message, std::string subject) {
  add({Severity::kError, std::move(code), std::move(message), std::move(subject)});
}

void DiagnosticSink::crash(std::string code, std::string message, std::string subject) {
  add({Severity::kCrash, std::move(code), std::move(message), std::move(subject)});
}

std::size_t DiagnosticSink::count(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

bool DiagnosticSink::has_errors() const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError || d.severity == Severity::kCrash;
  });
}

bool DiagnosticSink::has_warnings() const {
  return std::any_of(diagnostics_.begin(), diagnostics_.end(),
                     [](const Diagnostic& d) { return d.severity == Severity::kWarning; });
}

void DiagnosticSink::merge(const DiagnosticSink& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(), other.diagnostics_.end());
}

}  // namespace wsx
