// arena.hpp — a bump allocator for parse-scoped scratch memory.
//
// The streaming XML tokenizer (xml/pull.*) hands out std::string_view
// tokens that alias the input buffer; the only bytes it ever has to own
// are entity-decoded text and attribute values, and the odd consumer that
// still needs a materialised tree. Both want many small allocations with
// one common lifetime (the parse), which is exactly the arena shape: bump
// a pointer inside geometrically growing blocks, free everything at once.
//
// Not thread-safe by design — every tokenizer owns its own arena, so the
// campaign worker pools get per-thread arenas for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <string_view>
#include <vector>

namespace wsx::common {

class Arena {
 public:
  /// First block size; later blocks double until kMaxBlockBytes.
  static constexpr std::size_t kFirstBlockBytes = 1024;
  static constexpr std::size_t kMaxBlockBytes = 256 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Uninitialised storage for `bytes` bytes at `align` alignment. The
  /// pointer stays valid until reset()/destruction — growing the arena
  /// never moves earlier allocations (new blocks are chained, not
  /// reallocated).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || offset + bytes > blocks_.back().size) {
      grow(bytes + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    void* out = blocks_.back().data.get() + offset;
    used_ = offset + bytes;
    total_used_ += bytes;
    return out;
  }

  /// Copies `text` into the arena and returns a stable view of the copy.
  std::string_view copy(std::string_view text) {
    if (text.empty()) return {};
    char* out = static_cast<char*>(allocate(text.size(), 1));
    std::memcpy(out, text.data(), text.size());
    return {out, text.size()};
  }

  /// Mutable character scratch of `bytes` capacity (entity decoding writes
  /// into this, then shrinks the view to what it produced).
  char* char_buffer(std::size_t bytes) {
    return static_cast<char*>(allocate(bytes, 1));
  }

  /// Constructs a T in the arena. No destructor runs — arena types must be
  /// trivially destructible or leak-free by construction.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T))) T(static_cast<Args&&>(args)...);
  }

  /// Bytes handed out since construction or the last reset().
  std::size_t used() const { return total_used_; }
  /// Bytes reserved from the system allocator.
  std::size_t reserved() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

  /// Frees every allocation at once. The first block is kept so a reused
  /// arena (one tokenizer parsing many envelopes) stops hitting malloc.
  void reset() {
    if (blocks_.size() > 1) {
      Block first = std::move(blocks_.front());
      blocks_.clear();
      blocks_.push_back(std::move(first));
    }
    used_ = 0;
    total_used_ = 0;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t at_least) {
    std::size_t next = blocks_.empty() ? kFirstBlockBytes
                                       : std::min(blocks_.back().size * 2, kMaxBlockBytes);
    if (next < at_least) next = at_least;
    blocks_.push_back({std::unique_ptr<char[]>(new char[next]), next});
    used_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t used_ = 0;        ///< bump offset inside the current block
  std::size_t total_used_ = 0;  ///< lifetime bytes for stats
};

}  // namespace wsx::common
