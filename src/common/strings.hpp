// strings.hpp — small string utilities used across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsx {

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Splits `text` on `separator`; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char separator);

/// Joins `parts` with `separator`.
std::string join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading/trailing XML whitespace (space, tab, CR, LF).
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if the strings are equal ignoring ASCII case (VB.NET identifier rule).
bool iequals(std::string_view a, std::string_view b);

/// Uppercases the first character (ASCII); used by artifact generators to
/// derive bean-style accessor names.
std::string capitalize(std::string_view text);

/// Replaces every occurrence of `from` in `text` with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

}  // namespace wsx
