// intern.hpp — a deduplicating string table.
//
// Grown out of catalog::NamePool's used-name set: several subsystems keep
// a set of strings that repeat heavily (QName prefixes and namespace URIs
// during parsing, synthesized type names in the catalogs, diagnostic codes
// in aggregation) and only ever need one canonical copy. StringInterner
// stores that copy and hands out stable references, with heterogeneous
// lookup so queries never allocate.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>

namespace wsx {

class StringInterner {
 public:
  /// Canonical instance of `text`; inserted on first use. The reference
  /// stays valid for the interner's lifetime (node-based storage).
  const std::string& intern(std::string_view text);

  /// Inserts `text` if absent; true when it was newly added. This is the
  /// NamePool uniqueness primitive (insert(...).second), without building
  /// a temporary std::string for strings already present.
  bool insert(std::string_view text);

  bool contains(std::string_view text) const;
  std::size_t size() const { return entries_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };
  std::unordered_set<std::string, Hash, std::equal_to<>> entries_;
};

}  // namespace wsx
