// diagnostics.hpp — structured diagnostics emitted by every pipeline stage.
//
// The study classifies each testing-phase step outcome by the diagnostics
// the tool produced: errors abort the pipeline for a service, warnings are
// recorded and the pipeline continues (paper §III.B.d).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wsx {

enum class Severity {
  kNote,     ///< informational; never affects classification
  kWarning,  ///< tool produced output but flagged an issue
  kError,    ///< tool failed to produce (usable) output
  kCrash,    ///< tool itself crashed (counts as an error in classification)
};

const char* to_string(Severity severity);

/// Inverse of to_string(Severity); false when `text` names no severity.
/// Used by consumers that round-trip diagnostics through JSON (the
/// resilience journal's task records).
bool severity_from_string(std::string_view text, Severity& out);

/// Position of a diagnostic inside a source document. Lines and columns are
/// 1-based; 0 means "unknown" (e.g. for models built programmatically
/// rather than parsed from text).
struct SourceLocation {
  std::string uri;          ///< document path/URI; "" = unknown document
  std::size_t line = 0;
  std::size_t column = 0;

  bool known() const { return line != 0; }
  /// "uri:line:col", omitting unknown parts.
  std::string str() const;

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// One message from a tool (WSDL generator, artifact generator, compiler,
/// lint rule).
struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string code;     ///< stable identifier, e.g. "axis1.unresolved-ident"
  std::string message;  ///< human-readable text
  std::string subject;  ///< what the diagnostic is about (class, file, symbol)
  SourceLocation location;  ///< where in the source document, when known
  std::string fixit;    ///< suggested remedy; "" = none

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Accumulates diagnostics produced during one tool invocation.
class DiagnosticSink {
 public:
  void add(Diagnostic diagnostic) { diagnostics_.push_back(std::move(diagnostic)); }
  void note(std::string code, std::string message, std::string subject = {});
  void warn(std::string code, std::string message, std::string subject = {});
  void error(std::string code, std::string message, std::string subject = {});
  void crash(std::string code, std::string message, std::string subject = {});

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  /// Mutable access, for consumers that aggregate by moving diagnostics out
  /// of a sink they own instead of copying them.
  std::vector<Diagnostic>& diagnostics() { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  std::size_t count(Severity severity) const;
  bool has_errors() const;    ///< true if any kError or kCrash
  bool has_warnings() const;  ///< true if any kWarning

  /// Appends all diagnostics from `other`.
  void merge(const DiagnosticSink& other);

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace wsx
