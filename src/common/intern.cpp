#include "common/intern.hpp"

namespace wsx {

const std::string& StringInterner::intern(std::string_view text) {
  const auto found = entries_.find(text);
  if (found != entries_.end()) return *found;
  return *entries_.emplace(text).first;
}

bool StringInterner::insert(std::string_view text) {
  if (entries_.find(text) != entries_.end()) return false;
  entries_.emplace(text);
  return true;
}

bool StringInterner::contains(std::string_view text) const {
  return entries_.find(text) != entries_.end();
}

}  // namespace wsx
