// json.hpp — a minimal JSON emitter plus a small value parser.
//
// Originally write-only (JSON-lines test records, report payloads); the
// analysis subsystem added the reader so SARIF output can be structurally
// verified and baseline files can be consumed without new dependencies.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace wsx::json {

/// Escapes a string for inclusion inside JSON double quotes.
std::string escape(std::string_view text);

/// Builds one JSON object incrementally: field(...) calls, then str().
class ObjectWriter {
 public:
  ObjectWriter();

  ObjectWriter& field(std::string_view key, std::string_view value);
  ObjectWriter& field(std::string_view key, const char* value);
  ObjectWriter& field(std::string_view key, bool value);
  ObjectWriter& field(std::string_view key, std::size_t value);
  ObjectWriter& field(std::string_view key, long long value);
  ObjectWriter& field(std::string_view key, double value);
  /// Inserts a pre-rendered JSON value (object/array) verbatim.
  ObjectWriter& raw_field(std::string_view key, std::string_view json_value);

  /// Finalizes and returns the object text ("{...}").
  std::string str() const;

 private:
  void begin_field(std::string_view key);
  std::string out_;
  bool first_ = true;
};

/// Builds one JSON array incrementally: item(...) calls, then str().
class ArrayWriter {
 public:
  ArrayWriter();

  ArrayWriter& item(std::string_view value);          ///< string item
  ArrayWriter& raw_item(std::string_view json_value); ///< pre-rendered value

  /// Finalizes and returns the array text ("[...]").
  std::string str() const;
  bool empty() const { return first_; }

 private:
  std::string out_;
  bool first_ = true;
};

/// A parsed JSON value. Numbers are stored as double (sufficient for the
/// line/column/count payloads this library reads back).
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Preconditions: matching kind (asserted).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// items().size() for arrays, members().size() for objects, else 0.
  std::size_t size() const;

  static Value make_null();
  static Value make_bool(bool value);
  static Value make_number(double value);
  static Value make_string(std::string value);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document. Error codes use the "json." prefix and name
/// the offset of the problem.
Result<Value> parse(std::string_view text);

/// Serializes a parsed Value back to compact JSON text. Field order is
/// preserved, and integral numbers print without a decimal point, so a
/// document built from ObjectWriter/ArrayWriter integer, bool and string
/// fields round-trips byte-identically through parse() + to_text() — the
/// property the resilience journal's config fingerprint relies on.
std::string to_text(const Value& value);

}  // namespace wsx::json
