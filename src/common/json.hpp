// json.hpp — a minimal JSON emitter for campaign logs.
//
// Write-only on purpose: the library exports results (JSON-lines test
// records, report payloads); it never consumes JSON.
#pragma once

#include <string>
#include <string_view>

namespace wsx::json {

/// Escapes a string for inclusion inside JSON double quotes.
std::string escape(std::string_view text);

/// Builds one JSON object incrementally: field(...) calls, then str().
class ObjectWriter {
 public:
  ObjectWriter();

  ObjectWriter& field(std::string_view key, std::string_view value);
  ObjectWriter& field(std::string_view key, const char* value);
  ObjectWriter& field(std::string_view key, bool value);
  ObjectWriter& field(std::string_view key, std::size_t value);
  ObjectWriter& field(std::string_view key, long long value);
  ObjectWriter& field(std::string_view key, double value);
  /// Inserts a pre-rendered JSON value (object/array) verbatim.
  ObjectWriter& raw_field(std::string_view key, std::string_view json_value);

  /// Finalizes and returns the object text ("{...}").
  std::string str() const;

 private:
  void begin_field(std::string_view key);
  std::string out_;
  bool first_ = true;
};

}  // namespace wsx::json
