#include "common/json.hpp"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wsx::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ObjectWriter::ObjectWriter() : out_("{") {}

void ObjectWriter::begin_field(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::string_view value) {
  begin_field(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

ObjectWriter& ObjectWriter::field(std::string_view key, bool value) {
  begin_field(key);
  out_ += value ? "true" : "false";
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::size_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, long long value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, double value) {
  begin_field(key);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out_ += buffer;
  return *this;
}

ObjectWriter& ObjectWriter::raw_field(std::string_view key, std::string_view json_value) {
  begin_field(key);
  out_ += json_value;
  return *this;
}

std::string ObjectWriter::str() const { return out_ + "}"; }

ArrayWriter::ArrayWriter() : out_("[") {}

ArrayWriter& ArrayWriter::item(std::string_view value) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

ArrayWriter& ArrayWriter::raw_item(std::string_view json_value) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += json_value;
  return *this;
}

std::string ArrayWriter::str() const { return out_ + "]"; }

bool Value::as_bool() const {
  assert(is_bool());
  return bool_;
}

double Value::as_number() const {
  assert(is_number());
  return number_;
}

const std::string& Value::as_string() const {
  assert(is_string());
  return string_;
}

const std::vector<Value>& Value::items() const {
  assert(is_array());
  return items_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  assert(is_object());
  return members_;
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::size_t Value::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  return 0;
}

Value Value::make_null() { return Value{}; }

Value Value::make_bool(bool value) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

Value Value::make_number(double value) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

Value Value::make_string(std::string value) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

namespace {

/// Recursive-descent JSON parser over the grammar of RFC 8259, minus the
/// parts the library never produces (surrogate-pair escapes decode to the
/// replacement character).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Value> parse() {
    skip_space();
    Result<Value> value = parse_value(0);
    if (!value.ok()) return value;
    skip_space();
    if (pos_ != text_.size()) return fail("json.trailing-content", "content after value");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 128;

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_space() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\r' || peek() == '\n')) {
      ++pos_;
    }
  }

  Error fail(std::string code, std::string_view what) const {
    return Error{std::move(code),
                 std::string(what) + " at offset " + std::to_string(pos_)};
  }

  Result<Value> parse_value(std::size_t depth) {
    if (depth > kMaxDepth) return fail("json.too-deep", "maximum nesting depth exceeded");
    if (at_end()) return fail("json.unexpected-eof", "unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        Result<std::string> text = parse_string();
        if (!text.ok()) return text.error();
        return Value::make_string(std::move(text.value()));
      }
      case 't':
        return parse_literal("true", Value::make_bool(true));
      case 'f':
        return parse_literal("false", Value::make_bool(false));
      case 'n':
        return parse_literal("null", Value::make_null());
      default:
        return parse_number();
    }
  }

  Result<Value> parse_literal(std::string_view literal, Value value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return fail("json.bad-literal", "unrecognized literal");
    }
    pos_ += literal.size();
    return value;
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                         peek() == '.' || peek() == 'e' || peek() == 'E' || peek() == '+' ||
                         peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("json.bad-value", "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return fail("json.bad-number", "malformed number '" + token + "'");
    }
    return Value::make_number(number);
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (at_end()) return fail("json.unterminated-string", "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) return fail("json.bad-escape", "unterminated escape");
      const char escape_char = text_[pos_++];
      switch (escape_char) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("json.bad-escape", "truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              value |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("json.bad-escape", "malformed \\u escape");
            }
          }
          // Encode as UTF-8 (no surrogate-pair recombination).
          if (value < 0x80) {
            out += static_cast<char>(value);
          } else if (value < 0x800) {
            out += static_cast<char>(0xC0 | (value >> 6));
            out += static_cast<char>(0x80 | (value & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (value >> 12));
            out += static_cast<char>(0x80 | ((value >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (value & 0x3F));
          }
          break;
        }
        default:
          return fail("json.bad-escape", "unknown escape");
      }
    }
  }

  Result<Value> parse_array(std::size_t depth) {
    ++pos_;  // '['
    std::vector<Value> items;
    skip_space();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      skip_space();
      Result<Value> item = parse_value(depth + 1);
      if (!item.ok()) return item;
      items.push_back(std::move(item.value()));
      skip_space();
      if (at_end()) return fail("json.unterminated-array", "unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value::make_array(std::move(items));
      }
      return fail("json.bad-array", "expected ',' or ']'");
    }
  }

  Result<Value> parse_object(std::size_t depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, Value>> members;
    skip_space();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_space();
      if (at_end() || peek() != '"') return fail("json.bad-object", "expected member name");
      Result<std::string> key = parse_string();
      if (!key.ok()) return key.error();
      skip_space();
      if (at_end() || peek() != ':') return fail("json.bad-object", "expected ':'");
      ++pos_;
      skip_space();
      Result<Value> value = parse_value(depth + 1);
      if (!value.ok()) return value;
      members.emplace_back(std::move(key.value()), std::move(value.value()));
      skip_space();
      if (at_end()) return fail("json.unterminated-object", "unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value::make_object(std::move(members));
      }
      return fail("json.bad-object", "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) { return JsonParser{text}.parse(); }

namespace {

void append_value(const Value& value, std::string& out) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber: {
      const double number = value.as_number();
      // Integers below 2^53 are exact in double, so re-emitting them through
      // integer formatting reproduces what ObjectWriter wrote originally.
      if (number == std::floor(number) && std::fabs(number) < 9007199254740992.0) {
        out += std::to_string(static_cast<long long>(number));
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "%.17g", number);
        out += buffer;
      }
      break;
    }
    case Value::Kind::kString:
      out += '"';
      out += escape(value.as_string());
      out += '"';
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : value.items()) {
        if (!first) out += ',';
        first = false;
        append_value(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        append_value(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string to_text(const Value& value) {
  std::string out;
  append_value(value, out);
  return out;
}

}  // namespace wsx::json
