#include "common/json.hpp"

#include <cstdio>

namespace wsx::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ObjectWriter::ObjectWriter() : out_("{") {}

void ObjectWriter::begin_field(std::string_view key) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::string_view value) {
  begin_field(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

ObjectWriter& ObjectWriter::field(std::string_view key, bool value) {
  begin_field(key);
  out_ += value ? "true" : "false";
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, std::size_t value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, long long value) {
  begin_field(key);
  out_ += std::to_string(value);
  return *this;
}

ObjectWriter& ObjectWriter::field(std::string_view key, double value) {
  begin_field(key);
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  out_ += buffer;
  return *this;
}

ObjectWriter& ObjectWriter::raw_field(std::string_view key, std::string_view json_value) {
  begin_field(key);
  out_ += json_value;
  return *this;
}

std::string ObjectWriter::str() const { return out_ + "}"; }

}  // namespace wsx::json
