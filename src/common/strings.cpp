#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace wsx {

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) { return c == ' ' || c == '\t' || c == '\r' || c == '\n'; };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](unsigned char x, unsigned char y) {
           return std::tolower(x) == std::tolower(y);
         });
}

std::string capitalize(std::string_view text) {
  std::string out(text);
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace wsx
