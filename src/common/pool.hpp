// pool.hpp — the shared instrumented worker pool behind every campaign.
//
// Before this header existed, study, communication, chaos and lint-corpus
// each hand-rolled a std::async slice loop with its own worker-count
// arithmetic. They now all resolve thread counts through resolve_workers()
// (so `--jobs 0` / `threads=0` means the same thing everywhere) and run
// their slices on a WorkerPool, which counts tasks, failures and queue
// depth so the observability layer can report them.
//
// The pool is deliberately work-stealing-free: slices are fixed at submit
// time and merged in slice order, which is what keeps every campaign's
// output independent of the worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace wsx {

/// Hard ceiling on explicit worker counts. Requests above this are a usage
/// error (a typo'd `--jobs 10000` would otherwise exhaust the process).
inline constexpr std::size_t kMaxWorkers = 256;

/// The one thread-count resolution rule: 0 means "ask the hardware", and
/// the result is always at least 1 (hardware_concurrency may report 0).
inline std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

/// True when `requested` is an acceptable --jobs/threads value: 0 (auto)
/// or an explicit count no larger than kMaxWorkers.
inline bool valid_worker_count(std::size_t requested) { return requested <= kMaxWorkers; }

/// What one pool run observed; feeds the obs metric registry.
struct PoolStats {
  std::size_t workers = 0;          ///< resolved thread count
  std::size_t tasks_run = 0;        ///< tasks that completed (failed included)
  std::size_t tasks_failed = 0;     ///< tasks that threw
  std::size_t max_queue_depth = 0;  ///< queued-tasks high-water mark
};

/// Thrown by WorkerPool::wait() when more than one task failed. A single
/// failure rethrows the original exception unchanged; multiple failures
/// would otherwise be silently collapsed to whichever happened first, so
/// they are aggregated here with every message preserved in task order.
class PoolError : public std::runtime_error {
 public:
  PoolError(std::string what, std::vector<std::string> messages)
      : std::runtime_error(std::move(what)), messages_(std::move(messages)) {}

  /// One message per failed task, in the order the failures were recorded.
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  std::vector<std::string> messages_;
};

/// Fixed-size thread pool. Tasks are run in FIFO order; a task that throws
/// records the exception (surfaced by wait()) instead of terminating, so a
/// failing slice can never hang or kill the campaign silently.
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t requested_workers) {
    stats_.workers = resolve_workers(requested_workers);
    threads_.reserve(stats_.workers);
    for (std::size_t i = 0; i < stats_.workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  void submit(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
      ++pending_;
      if (queue_.size() > stats_.max_queue_depth) stats_.max_queue_depth = queue_.size();
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task has finished. A single task failure
  /// rethrows that exception unchanged; when several tasks failed, throws a
  /// PoolError aggregating every failure message so no error is dropped.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
    if (errors_.empty()) return;
    const std::vector<std::exception_ptr> errors = std::move(errors_);
    errors_.clear();
    lock.unlock();
    if (errors.size() == 1) std::rethrow_exception(errors.front());
    std::vector<std::string> messages;
    messages.reserve(errors.size());
    for (const std::exception_ptr& error : errors) {
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        messages.emplace_back(e.what());
      } catch (...) {
        messages.emplace_back("unknown exception");
      }
    }
    std::string what = std::to_string(messages.size()) + " pool tasks failed: ";
    for (std::size_t i = 0; i < messages.size(); ++i) {
      if (i != 0) what += "; ";
      what += messages[i];
    }
    throw PoolError(std::move(what), std::move(messages));
  }

  /// Stats snapshot; call after wait() for final numbers.
  PoolStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      bool drained = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.tasks_run;
        if (error != nullptr) {
          ++stats_.tasks_failed;
          // Moved, not copied: the local copy must be dead before the lock
          // drops, or its refcount release races wait()'s rethrow.
          errors_.push_back(std::move(error));
        }
        drained = --pending_ == 0;
      }
      if (drained) idle_.notify_all();
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
  PoolStats stats_;
};

/// Runs `slice_fn(begin, end)` over [0, count) in contiguous slices — one
/// per worker, the partition every campaign previously computed by hand —
/// and returns the slice results *in slice order*, so merges are
/// deterministic for any worker count. The first exception a slice threw
/// is rethrown after all slices finish. `stats_out`, when non-null,
/// receives the pool's instrumentation.
template <typename F>
auto parallel_slices(std::size_t count, std::size_t requested_workers, F&& slice_fn,
                     PoolStats* stats_out = nullptr)
    -> std::vector<std::invoke_result_t<F&, std::size_t, std::size_t>> {
  using R = std::invoke_result_t<F&, std::size_t, std::size_t>;
  static_assert(!std::is_void_v<R>,
                "parallel_slices expects slice_fn to return its partial result");
  const std::size_t workers = std::min(resolve_workers(requested_workers),
                                       count == 0 ? std::size_t{1} : count);
  const std::size_t chunk = count == 0 ? 1 : (count + workers - 1) / workers;

  std::vector<std::size_t> begins;
  for (std::size_t begin = 0; begin < count; begin += chunk) begins.push_back(begin);
  std::vector<R> results(begins.size());

  if (workers <= 1 || begins.size() <= 1) {
    // Run inline — same code path, no threads; stats still reported.
    for (std::size_t i = 0; i < begins.size(); ++i) {
      results[i] = slice_fn(begins[i], std::min(count, begins[i] + chunk));
    }
    if (stats_out != nullptr) {
      stats_out->workers = 1;
      stats_out->tasks_run = begins.size();
      stats_out->tasks_failed = 0;
      stats_out->max_queue_depth = 0;
    }
    return results;
  }

  WorkerPool pool(workers);
  for (std::size_t i = 0; i < begins.size(); ++i) {
    pool.submit([&, i] {
      results[i] = slice_fn(begins[i], std::min(count, begins[i] + chunk));
    });
  }
  pool.wait();
  if (stats_out != nullptr) *stats_out = pool.stats();
  return results;
}

}  // namespace wsx
