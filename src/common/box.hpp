// box.hpp — copyable heap indirection for recursive value types.
#pragma once

#include <memory>
#include <utility>

namespace wsx {

/// A deep-copying smart holder. Unlike std::unique_ptr it is copyable, which
/// lets recursive models (an XSD element containing an anonymous complex
/// type containing elements...) keep plain value semantics.
template <typename T>
class Box {
 public:
  Box() = default;
  Box(T value) : ptr_(std::make_unique<T>(std::move(value))) {}  // NOLINT
  Box(const Box& other) : ptr_(other.ptr_ ? std::make_unique<T>(*other.ptr_) : nullptr) {}
  Box(Box&&) noexcept = default;
  Box& operator=(const Box& other) {
    if (this != &other) ptr_ = other.ptr_ ? std::make_unique<T>(*other.ptr_) : nullptr;
    return *this;
  }
  Box& operator=(Box&&) noexcept = default;
  ~Box() = default;

  bool has_value() const { return ptr_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  /// Precondition: has_value().
  const T& operator*() const { return *ptr_; }
  T& operator*() { return *ptr_; }
  const T* operator->() const { return ptr_.get(); }
  T* operator->() { return ptr_.get(); }
  const T* get() const { return ptr_.get(); }
  T* get() { return ptr_.get(); }

  void reset() { ptr_.reset(); }

  friend bool operator==(const Box& a, const Box& b) {
    if (a.has_value() != b.has_value()) return false;
    return !a.has_value() || *a == *b;
  }

 private:
  std::unique_ptr<T> ptr_;
};

}  // namespace wsx
