// result.hpp — lightweight Result<T> for recoverable, domain-level failures.
//
// The interoperability study *measures* tool failures: a parse error or a
// generation failure is data, not an exceptional condition, so the library
// reports these through Result<T> rather than exceptions. Exceptions remain
// reserved for programming errors (precondition violations).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace wsx {

/// A domain-level failure: a short machine-readable code plus a
/// human-readable message. Codes are stable identifiers used by tests.
struct Error {
  std::string code;     ///< e.g. "xml.unexpected-eof", "wsdl.missing-binding"
  std::string message;  ///< human-readable detail

  friend bool operator==(const Error&, const Error&) = default;
};

/// Minimal expected-like type (std::expected is C++23; we target C++20).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  /// Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> state_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status success() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: !ok().
  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace wsx
