#include "codemodel/render.hpp"

#include <sstream>

namespace wsx::code {
namespace {

struct Style {
  const char* class_keyword;
  const char* field_prefix;   ///< e.g. "private " / "public " / ""
  const char* method_prefix;
  const char* statement_end;  ///< ";" or ""
  bool type_before_name;      ///< C-family order vs scripting order
};

Style style_for(Language language) {
  switch (language) {
    case Language::kJava:
      return {"class", "private ", "public ", ";", true};
    case Language::kCSharp:
      return {"class", "private ", "public ", ";", true};
    case Language::kVisualBasic:
      return {"Class", "Private ", "Public ", "", false};
    case Language::kJScript:
      return {"class", "var ", "function ", ";", false};
    case Language::kCpp:
      return {"struct", "", "", ";", true};
    case Language::kPhp:
      return {"class", "public $", "public function ", ";", false};
    case Language::kPython:
      return {"class", "", "def ", "", false};
  }
  return {"class", "", "", ";", true};
}

void render_field(std::ostringstream& out, const Field& field, const Style& style) {
  out << "  " << style.field_prefix;
  if (style.type_before_name) {
    out << field.type << ' ' << field.name;
  } else {
    out << field.name;
  }
  if (field.raw_collection) out << " /* raw collection */";
  out << style.statement_end << '\n';
}

void render_method(std::ostringstream& out, const Method& method, const Style& style) {
  out << "  " << style.method_prefix;
  if (style.type_before_name) out << method.return_type << ' ';
  out << method.name << '(';
  for (std::size_t i = 0; i < method.params.size(); ++i) {
    if (i != 0) out << ", ";
    if (style.type_before_name) {
      out << method.params[i].type << ' ' << method.params[i].name;
    } else {
      out << method.params[i].name;
    }
  }
  out << ')';
  if (!method.has_body) {
    // The JScript defect, visible in the dump.
    out << style.statement_end << "  // <missing body>\n";
    return;
  }
  out << " {\n";
  for (const std::string& local : method.local_decls) {
    out << "    var " << local << style.statement_end << '\n';
  }
  for (const std::string& symbol : method.referenced_symbols) {
    out << "    use(" << symbol << ')' << style.statement_end << '\n';
  }
  out << "  }\n";
}

}  // namespace

std::string render(const CompilationUnit& unit, Language language) {
  const Style style = style_for(language);
  std::ostringstream out;
  out << "// unit: " << unit.name << " [" << to_string(language) << "]\n";
  if (unit.pathological) out << "// NOTE: this unit crashes the real compiler\n";
  for (const Class& cls : unit.classes) {
    out << style.class_keyword << ' ' << cls.name;
    if (!cls.base.empty()) out << " extends " << cls.base;
    out << " {\n";
    for (const Field& field : cls.fields) render_field(out, field, style);
    for (const Method& method : cls.methods) render_method(out, method, style);
    out << "}\n";
  }
  return out.str();
}

std::string render(const Artifacts& artifacts) {
  std::ostringstream out;
  for (const CompilationUnit& unit : artifacts.units) {
    out << render(unit, artifacts.language) << '\n';
  }
  return out.str();
}

}  // namespace wsx::code
