#include "codemodel/model.hpp"

namespace wsx::code {

const char* to_string(Language language) {
  switch (language) {
    case Language::kJava:
      return "Java";
    case Language::kCSharp:
      return "C#";
    case Language::kVisualBasic:
      return "Visual Basic .NET";
    case Language::kJScript:
      return "JScript .NET";
    case Language::kCpp:
      return "C++";
    case Language::kPhp:
      return "PHP";
    case Language::kPython:
      return "Python";
  }
  return "unknown";
}

bool requires_compilation(Language language) {
  return language != Language::kPhp && language != Language::kPython;
}

std::size_t Artifacts::class_count() const {
  std::size_t count = 0;
  for (const CompilationUnit& unit : units) count += unit.classes.size();
  return count;
}

}  // namespace wsx::code
