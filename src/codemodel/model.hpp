// model.hpp — language-neutral model of generated client artifacts.
//
// Client artifact generators (the wsdl2java / wsdl.exe / wsdl2h family)
// produce instances of this model instead of source text; the compiler
// simulators then perform the semantic checks a real compiler would run:
// duplicate members, unresolved identifiers, missing bodies. Every
// compilation failure the study reports arises from a defect *in this
// generated model*, not from a hardcoded outcome.
#pragma once

#include <string>
#include <vector>

namespace wsx::code {

enum class Language { kJava, kCSharp, kVisualBasic, kJScript, kCpp, kPhp, kPython };

const char* to_string(Language language);

/// True for languages whose artifacts are compiled before use. PHP and
/// Python clients are dynamic: the study checks object instantiation
/// instead (Table II footnote 3).
bool requires_compilation(Language language);

struct Param {
  std::string name;
  std::string type;
  friend bool operator==(const Param&, const Param&) = default;
};

struct Field {
  std::string name;
  std::string type;
  /// Field uses a raw (unparameterized) collection type; javac reports
  /// "uses unchecked or unsafe operations" once per unit — the warning the
  /// Axis1/Axis2 artifacts produce on every compile.
  bool raw_collection = false;
  friend bool operator==(const Field&, const Field&) = default;
};

struct Method {
  std::string name;
  std::string return_type{"void"};
  std::vector<Param> params;
  /// Identifiers the body references; must resolve against params, locals
  /// and the enclosing class's fields.
  std::vector<std::string> referenced_symbols;
  /// Locals declared in the body.
  std::vector<std::string> local_decls;
  /// False when the generator failed to emit the body — the JScript .NET
  /// defect ("did not produce the necessary functions").
  bool has_body = true;
  friend bool operator==(const Method&, const Method&) = default;
};

struct Class {
  std::string name;
  std::string base;  ///< base class name; empty for none
  std::vector<Field> fields;
  std::vector<Method> methods;
  friend bool operator==(const Class&, const Class&) = default;
};

struct CompilationUnit {
  std::string name;  ///< unit (file) name
  std::vector<Class> classes;
  /// Generated constructs that drive the real JScript .NET compiler into
  /// its "131 INTERNAL COMPILER CRASH" — modeled as a unit-level marker
  /// the JScript compiler simulator trips over.
  bool pathological = false;
  friend bool operator==(const CompilationUnit&, const CompilationUnit&) = default;
};

/// Everything an artifact generation step hands to the next step.
struct Artifacts {
  Language language = Language::kJava;
  std::vector<CompilationUnit> units;
  /// Names of the invocable operations on the generated client/proxy class.
  /// For dynamic languages this is what the instantiation check inspects.
  std::vector<std::string> client_operations;

  std::size_t class_count() const;
};

}  // namespace wsx::code
