// render.hpp — renders generated-artifact models as language-flavoured
// source text, for artifact dumps and debugging (wsinterop test --dump).
// The text is illustrative (the semantic checks run on the model, not on
// this rendering), but it makes the injected defects visible to a human:
// the renamed message1 field, the duplicated extraElement, the bodyless
// JScript accessor.
#pragma once

#include <string>

#include "codemodel/model.hpp"

namespace wsx::code {

/// Renders one compilation unit in the style of `language`.
std::string render(const CompilationUnit& unit, Language language);

/// Renders all units of `artifacts`, separated by file banners.
std::string render(const Artifacts& artifacts);

}  // namespace wsx::code
