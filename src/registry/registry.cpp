#include "registry/registry.hpp"

#include <algorithm>

#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "wsi/profile.hpp"

namespace wsx::registry {

const char* to_string(Audit audit) {
  switch (audit) {
    case Audit::kNotAudited:
      return "not-audited";
    case Audit::kGreen:
      return "green";
    case Audit::kYellow:
      return "yellow";
    case Audit::kRed:
      return "red";
  }
  return "unknown";
}

namespace {

/// Ordering for find_consumable: smaller is better.
int rank(Audit audit) {
  switch (audit) {
    case Audit::kGreen:
      return 0;
    case Audit::kYellow:
      return 1;
    case Audit::kRed:
      return 2;
    case Audit::kNotAudited:
      return 3;
  }
  return 3;
}

}  // namespace

struct ServiceRegistry::Impl {
  RegistryOptions options;
  std::vector<Entry> entries;
  std::vector<std::unique_ptr<frameworks::ClientFramework>> auditors;
  std::vector<std::unique_ptr<compilers::Compiler>> compilers;

  explicit Impl(RegistryOptions opts) : options(opts) {
    if (options.audition_with_clients) {
      auditors = frameworks::make_clients();
      for (const auto& client : auditors) {
        compilers.push_back(compilers::make_compiler(client->language()));
      }
    }
  }

  /// The audition: WS-I + the full client roster against the description.
  /// The description is parsed once (SharedDescription) and shared by the
  /// compliance check and every auditor.
  void audit(Entry& entry) {
    const frameworks::SharedDescription description =
        frameworks::SharedDescription::from_deployed(entry.service);
    const wsi::ComplianceReport& compliance = *description.wsi_report();
    const bool zero_ops = entry.service.wsdl.operation_count() == 0;
    bool any_warning = !compliance.warnings().empty();
    bool red = !compliance.compliant() || zero_ops;
    if (!compliance.compliant()) {
      entry.audit_notes.push_back("WS-I: " + compliance.summary());
    }
    if (zero_ops) entry.audit_notes.push_back("description exposes no operations");

    if (options.audition_with_clients) {
      for (std::size_t i = 0; i < auditors.size(); ++i) {
        const frameworks::GenerationResult generation = auditors[i]->generate(description);
        bool failed = generation.diagnostics.has_errors() || !generation.produced_artifacts();
        if (!failed && compilers[i] != nullptr) {
          failed = compilers[i]->compile(*generation.artifacts).has_errors();
        }
        if (failed) {
          ++entry.failing_clients;
          entry.audit_notes.push_back(auditors[i]->name() + " cannot consume this service");
        } else if (generation.diagnostics.has_warnings()) {
          any_warning = true;
        }
      }
      red = red || entry.failing_clients > 0;
    }
    entry.audit = red ? Audit::kRed : (any_warning ? Audit::kYellow : Audit::kGreen);
  }
};

ServiceRegistry::ServiceRegistry(RegistryOptions options)
    : impl_(std::make_unique<Impl>(options)) {}
ServiceRegistry::~ServiceRegistry() = default;
ServiceRegistry::ServiceRegistry(ServiceRegistry&&) noexcept = default;
ServiceRegistry& ServiceRegistry::operator=(ServiceRegistry&&) noexcept = default;

Result<Audit> ServiceRegistry::publish(const frameworks::ServerFramework& provider,
                                       frameworks::DeployedService service) {
  Entry entry;
  entry.key = service.spec.service_name();
  entry.provider = provider.name();
  entry.type_name =
      service.spec.type != nullptr ? service.spec.type->qualified_name() : std::string{};
  if (!service.wsdl.services.empty() && !service.wsdl.services.front().ports.empty()) {
    entry.endpoint = service.wsdl.services.front().ports.front().location;
  }
  entry.service = std::move(service);

  if (find(entry.key) != nullptr) {
    return Error{"registry.duplicate-key",
                 "a service named '" + entry.key + "' is already registered"};
  }
  impl_->audit(entry);
  if (impl_->options.reject_red && entry.audit == Audit::kRed) {
    std::string why;
    for (const std::string& note : entry.audit_notes) {
      if (!why.empty()) why += "; ";
      why += note;
    }
    return Error{"registry.audition-failed",
                 "registration refused by the admission audit: " + why};
  }
  const Audit verdict = entry.audit;
  impl_->entries.push_back(std::move(entry));
  return verdict;
}

const Entry* ServiceRegistry::find(std::string_view key) const {
  for (const Entry& entry : impl_->entries) {
    if (entry.key == key) return &entry;
  }
  return nullptr;
}

std::vector<const Entry*> ServiceRegistry::find_consumable(Audit worst_acceptable) const {
  std::vector<const Entry*> out;
  for (const Entry& entry : impl_->entries) {
    if (rank(entry.audit) <= rank(worst_acceptable)) out.push_back(&entry);
  }
  return out;
}

std::vector<const Entry*> ServiceRegistry::find_by_type(std::string_view needle) const {
  std::vector<const Entry*> out;
  for (const Entry& entry : impl_->entries) {
    if (entry.type_name.find(needle) != std::string::npos) out.push_back(&entry);
  }
  return out;
}

std::size_t ServiceRegistry::size() const { return impl_->entries.size(); }

}  // namespace wsx::registry
