// registry.hpp — a UDDI-style service registry with admission auditing.
//
// The paper's related work (§II, the "audition framework" [Bertolino &
// Polini]) proposes testing a service's interoperability *when it
// registers*, before consumers find it. This module implements that idea
// over our stacks: services publish into the registry, an auditor runs the
// WS-I check and (optionally) the client-tool roster against the
// description at admission time, and lookups can filter by audit verdict —
// so a consumer can ask for "services every client stack can actually
// consume".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frameworks/client.hpp"
#include "frameworks/server.hpp"

namespace wsx::registry {

/// Admission audit verdicts.
enum class Audit {
  kNotAudited,
  kGreen,   ///< WS-I compliant and every client tool generates + compiles
  kYellow,  ///< usable but flagged: warnings, or some tools degrade
  kRed,     ///< WS-I failure or at least one client tool cannot consume it
};

const char* to_string(Audit audit);

/// One registered service.
struct Entry {
  std::string key;          ///< registry key (service name)
  std::string provider;     ///< publishing framework ("Metro 2.3")
  std::string endpoint;     ///< soap:address location
  std::string type_name;    ///< the parameter type behind the echo service
  frameworks::DeployedService service;
  Audit audit = Audit::kNotAudited;
  std::size_t failing_clients = 0;  ///< client tools that cannot consume it
  std::vector<std::string> audit_notes;
};

struct RegistryOptions {
  /// Run the client roster at admission (the audition); without it only
  /// the WS-I check runs.
  bool audition_with_clients = true;
  /// Refuse to register kRed services ("certification gate").
  bool reject_red = false;
};

class ServiceRegistry {
 public:
  explicit ServiceRegistry(RegistryOptions options = {});
  ~ServiceRegistry();
  ServiceRegistry(ServiceRegistry&&) noexcept;
  ServiceRegistry& operator=(ServiceRegistry&&) noexcept;

  /// Publishes a deployed service under its service name. Returns the
  /// audit verdict, or an error when the gate rejects the registration.
  /// Error codes use the "registry." prefix.
  Result<Audit> publish(const frameworks::ServerFramework& provider,
                        frameworks::DeployedService service);

  /// Lookup by exact key.
  const Entry* find(std::string_view key) const;
  /// All entries whose audit is at least as good as `worst_acceptable`
  /// (kGreen ⊂ kYellow ⊂ kRed ⊂ kNotAudited).
  std::vector<const Entry*> find_consumable(Audit worst_acceptable) const;
  /// Substring search over type names (the "yellow pages" lookup).
  std::vector<const Entry*> find_by_type(std::string_view needle) const;

  std::size_t size() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wsx::registry
