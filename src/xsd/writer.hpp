// writer.hpp — serializes a Schema model to an xs:schema XML element.
#pragma once

#include <string>

#include "xml/node.hpp"
#include "xsd/model.hpp"

namespace wsx::xsd {

struct SchemaWriteOptions {
  /// Prefix bound to the XML Schema namespace. Java stacks emit "xs"/"xsd";
  /// WCF emits "s" — which is where the paper's infamous "s:schema" and
  /// "s:lang" references come from.
  std::string schema_prefix = "xs";
  /// Prefix bound to the schema's target namespace.
  std::string target_prefix = "tns";
};

/// Builds the <xs:schema> element (with namespace declarations) for `schema`.
xml::Element to_xml(const Schema& schema, const SchemaWriteOptions& options = {});

}  // namespace wsx::xsd
