#include "xsd/reader.hpp"

#include <cstdlib>
#include <string>

namespace wsx::xsd {
namespace {

class SchemaReader {
 public:
  explicit SchemaReader(xml::NamespaceScope scope) : scope_(std::move(scope)) {}

  Result<Schema> read(const xml::Element& root) {
    scope_.push(root);
    Schema schema;
    if (std::optional<std::string> tns = root.attribute("targetNamespace")) {
      schema.target_namespace = *tns;
    }
    if (std::optional<std::string> form = root.attribute("elementFormDefault")) {
      schema.element_form_qualified = (*form == "qualified");
    }
    for (const xml::Element* child : root.child_elements()) {
      const std::string local = child->local_name();
      if (local == "import") {
        SchemaImport import;
        import.namespace_uri = child->attribute("namespace").value_or("");
        import.schema_location = child->attribute("schemaLocation").value_or("");
        schema.imports.push_back(std::move(import));
      } else if (local == "element") {
        Result<ElementDecl> element = read_element(*child);
        if (!element.ok()) return element.error();
        schema.elements.push_back(std::move(element.value()));
      } else if (local == "complexType") {
        Result<ComplexType> type = read_complex_type(*child);
        if (!type.ok()) return type.error();
        schema.complex_types.push_back(std::move(type.value()));
      } else if (local == "simpleType") {
        Result<SimpleTypeDecl> type = read_simple_type(*child);
        if (!type.ok()) return type.error();
        schema.simple_types.push_back(std::move(type.value()));
      }
      // Unknown schema constructs are skipped, as the studied tools do.
    }
    scope_.pop();
    return schema;
  }

 private:
  /// Resolves a lexical QName attribute value. Undeclared prefixes are
  /// preserved as QName{"", local, prefix} so downstream resolution can
  /// report them.
  xml::QName resolve_qname(const std::string& lexical) const {
    if (std::optional<xml::QName> resolved =
            scope_.resolve(lexical, /*use_default_ns=*/true)) {
      return *resolved;
    }
    const std::size_t colon = lexical.find(':');
    if (colon == std::string::npos) return xml::QName{"", lexical};
    return xml::QName{"", lexical.substr(colon + 1), lexical.substr(0, colon)};
  }

  static Result<int> read_occurs(const xml::Element& node, std::string_view attr,
                                 int fallback) {
    std::optional<std::string> raw = node.attribute(attr);
    if (!raw) return fallback;
    if (*raw == "unbounded") return kUnbounded;
    try {
      return std::stoi(*raw);
    } catch (...) {
      return Error{"xsd.bad-occurs", "invalid " + std::string(attr) + " value '" + *raw + "'"};
    }
  }

  Result<ElementDecl> read_element(const xml::Element& node) {
    scope_.push(node);
    ElementDecl element;
    element.name = node.attribute("name").value_or("");
    if (std::optional<std::string> type = node.attribute("type")) {
      element.type = resolve_qname(*type);
    }
    if (std::optional<std::string> ref = node.attribute("ref")) {
      element.ref = resolve_qname(*ref);
    }
    Result<int> min_occurs = read_occurs(node, "minOccurs", 1);
    if (!min_occurs.ok()) {
      scope_.pop();
      return min_occurs.error();
    }
    element.min_occurs = min_occurs.value();
    Result<int> max_occurs = read_occurs(node, "maxOccurs", 1);
    if (!max_occurs.ok()) {
      scope_.pop();
      return max_occurs.error();
    }
    element.max_occurs = max_occurs.value();
    element.nillable = node.attribute("nillable").value_or("false") == "true";
    if (const xml::Element* inline_type = node.child("complexType")) {
      Result<ComplexType> type = read_complex_type(*inline_type);
      if (!type.ok()) {
        scope_.pop();
        return type.error();
      }
      element.inline_type = Box<ComplexType>{std::move(type.value())};
    }
    scope_.pop();
    return element;
  }

  Result<ComplexType> read_complex_type(const xml::Element& node) {
    scope_.push(node);
    ComplexType type;
    type.name = node.attribute("name").value_or("");

    // Derivation by extension: content sits under complexContent/extension.
    const xml::Element* content = &node;
    if (const xml::Element* complex_content = node.child("complexContent")) {
      scope_.push(*complex_content);
      if (const xml::Element* extension = complex_content->child("extension")) {
        scope_.push(*extension);
        if (std::optional<std::string> base = extension->attribute("base")) {
          type.base = resolve_qname(*base);
        }
        Status status = read_content(*extension, type);
        scope_.pop();
        scope_.pop();
        scope_.pop();
        if (!status.ok()) return status.error();
        return type;
      }
      scope_.pop();
    }
    Status status = read_content(*content, type);
    scope_.pop();
    if (!status.ok()) return status.error();
    return type;
  }

  /// Parses sequence/attribute/attributeGroup children of `node` into
  /// `type`.
  Status read_content(const xml::Element& node, ComplexType& type) {
    if (const xml::Element* sequence = node.child("sequence")) {
      scope_.push(*sequence);
      for (const xml::Element* particle : sequence->child_elements()) {
        const std::string local = particle->local_name();
        if (local == "element") {
          Result<ElementDecl> element = read_element(*particle);
          if (!element.ok()) {
            scope_.pop();
            return element.error();
          }
          type.particles.emplace_back(std::move(element.value()));
        } else if (local == "any") {
          AnyParticle any;
          any.namespace_constraint = particle->attribute("namespace").value_or("##any");
          any.process_contents = particle->attribute("processContents").value_or("lax");
          Result<int> min_occurs = read_occurs(*particle, "minOccurs", 1);
          Result<int> max_occurs = read_occurs(*particle, "maxOccurs", 1);
          if (!min_occurs.ok() || !max_occurs.ok()) {
            scope_.pop();
            return Error{"xsd.bad-occurs", "invalid occurrence bound on xs:any"};
          }
          any.min_occurs = min_occurs.value();
          any.max_occurs = max_occurs.value();
          type.particles.emplace_back(std::move(any));
        }
      }
      scope_.pop();
    }
    for (const xml::Element* child : node.child_elements()) {
      const std::string local = child->local_name();
      if (local == "attribute") {
        AttributeDecl attribute;
        attribute.name = child->attribute("name").value_or("");
        if (std::optional<std::string> attr_type = child->attribute("type")) {
          attribute.type = resolve_qname(*attr_type);
        }
        if (std::optional<std::string> ref = child->attribute("ref")) {
          attribute.ref = resolve_qname(*ref);
        }
        attribute.required = child->attribute("use").value_or("") == "required";
        type.attributes.push_back(std::move(attribute));
      } else if (local == "attributeGroup") {
        if (std::optional<std::string> ref = child->attribute("ref")) {
          type.attribute_groups.push_back(AttributeGroupRef{resolve_qname(*ref)});
        }
      }
    }
    return Status::success();
  }

  Result<SimpleTypeDecl> read_simple_type(const xml::Element& node) {
    scope_.push(node);
    SimpleTypeDecl type;
    type.name = node.attribute("name").value_or("");
    if (const xml::Element* restriction = node.child("restriction")) {
      scope_.push(*restriction);
      if (std::optional<std::string> base = restriction->attribute("base")) {
        type.base = resolve_qname(*base);
      }
      for (const xml::Element* facet : restriction->children_named("enumeration")) {
        type.enumeration.push_back(facet->attribute("value").value_or(""));
      }
      const auto int_facet = [&](const char* facet_name, int& out) {
        if (const xml::Element* facet = restriction->child(facet_name)) {
          if (std::optional<std::string> value = facet->attribute("value")) {
            out = std::atoi(value->c_str());
          }
        }
      };
      int_facet("minLength", type.min_length);
      int_facet("maxLength", type.max_length);
      int_facet("totalDigits", type.total_digits);
      if (const xml::Element* facet = restriction->child("pattern")) {
        type.pattern = facet->attribute("value").value_or("");
      }
      scope_.pop();
    }
    scope_.pop();
    return type;
  }

  xml::NamespaceScope scope_;
};

}  // namespace

Result<Schema> from_xml(const xml::Element& schema_element, xml::NamespaceScope scope) {
  if (schema_element.local_name() != "schema") {
    return Error{"xsd.not-a-schema",
                 "expected an xs:schema element, got '" + schema_element.name() + "'"};
  }
  return SchemaReader{std::move(scope)}.read(schema_element);
}

}  // namespace wsx::xsd
