#include "xsd/pattern.hpp"

namespace wsx::xsd {
namespace {

// Expands the \d \w \s escapes into classes; other escaped characters are
// literals. Returns false for escapes outside the subset (\b, \1, ...).
bool escape_atom(char c, PatternAtom& atom) {
  switch (c) {
    case 'd':
      atom.kind = PatternAtom::Kind::kClass;
      atom.ranges = {{'0', '9'}};
      return true;
    case 'w':
      atom.kind = PatternAtom::Kind::kClass;
      atom.ranges = {{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}};
      return true;
    case 's':
      atom.kind = PatternAtom::Kind::kClass;
      atom.ranges = {{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\r', '\r'}};
      return true;
    case '\\':
    case '.':
    case '[':
    case ']':
    case '{':
    case '}':
    case '(':
    case ')':
    case '*':
    case '+':
    case '?':
    case '|':
    case '-':
    case '^':
    case '$':
      atom.kind = PatternAtom::Kind::kLiteral;
      atom.literal = c;
      return true;
    default:
      return false;
  }
}

// Parses "[...]" starting after the '['; advances `pos` past the ']'.
bool parse_class(std::string_view text, std::size_t& pos, PatternAtom& atom) {
  atom.kind = PatternAtom::Kind::kClass;
  if (pos < text.size() && text[pos] == '^') {
    atom.negated = true;
    ++pos;
  }
  while (pos < text.size() && text[pos] != ']') {
    char lo = text[pos];
    if (lo == '\\') {
      if (++pos >= text.size()) return false;
      PatternAtom escaped;
      if (!escape_atom(text[pos], escaped)) return false;
      if (escaped.kind == PatternAtom::Kind::kClass) {
        for (const auto& range : escaped.ranges) atom.ranges.push_back(range);
        ++pos;
        continue;
      }
      lo = escaped.literal;
    }
    ++pos;
    char hi = lo;
    if (pos + 1 < text.size() && text[pos] == '-' && text[pos + 1] != ']') {
      hi = text[pos + 1];
      if (hi == '\\') return false;  // ranges with escaped ends: out of subset
      pos += 2;
    }
    if (hi < lo) return false;
    atom.ranges.emplace_back(lo, hi);
  }
  if (pos >= text.size() || atom.ranges.empty()) return false;
  ++pos;  // consume ']'
  return true;
}

// Parses "{n}" / "{n,}" / "{n,m}" starting after the '{'.
bool parse_braces(std::string_view text, std::size_t& pos, PatternTerm& term) {
  const auto read_int = [&](int& out) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return false;
    long value = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + (text[pos] - '0');
      if (value > 4096) return false;  // keep generation and matching bounded
      ++pos;
    }
    out = static_cast<int>(value);
    return true;
  };
  if (!read_int(term.min_count)) return false;
  term.max_count = term.min_count;
  if (pos < text.size() && text[pos] == ',') {
    ++pos;
    if (pos < text.size() && text[pos] == '}') {
      term.max_count = kPatternUnbounded;
    } else if (!read_int(term.max_count) || term.max_count < term.min_count) {
      return false;
    }
  }
  if (pos >= text.size() || text[pos] != '}') return false;
  ++pos;
  return true;
}

// Backtracking anchored match; values and patterns are both small.
bool match_from(const Pattern& pattern, std::string_view value,
                std::size_t term_index, std::size_t pos) {
  if (term_index == pattern.terms.size()) return pos == value.size();
  const PatternTerm& term = pattern.terms[term_index];
  std::size_t reps = 0;
  // Greedy expansion with backtracking: try the longest run first.
  while (reps < static_cast<std::size_t>(term.max_count) ||
         term.max_count == kPatternUnbounded) {
    if (pos + reps >= value.size() ||
        !atom_admits(term.atom, value[pos + reps])) {
      break;
    }
    ++reps;
  }
  while (true) {
    if (reps >= static_cast<std::size_t>(term.min_count) &&
        match_from(pattern, value, term_index + 1, pos + reps)) {
      return true;
    }
    if (reps == 0) return false;
    --reps;
  }
}

}  // namespace

std::optional<Pattern> parse_pattern(std::string_view text) {
  Pattern pattern;
  std::size_t pos = 0;
  while (pos < text.size()) {
    PatternTerm term;
    const char c = text[pos];
    switch (c) {
      case '(':
      case ')':
      case '|':
      case '^':
      case '$':
      case '*':
      case '+':
      case '?':
      case '{':
      case '}':
      case ']':
        return std::nullopt;  // groups / alternation / stray metachar
      case '.':
        term.atom.kind = PatternAtom::Kind::kAny;
        ++pos;
        break;
      case '[':
        ++pos;
        if (!parse_class(text, pos, term.atom)) return std::nullopt;
        break;
      case '\\':
        if (++pos >= text.size()) return std::nullopt;
        if (!escape_atom(text[pos], term.atom)) return std::nullopt;
        ++pos;
        break;
      default:
        term.atom.kind = PatternAtom::Kind::kLiteral;
        term.atom.literal = c;
        ++pos;
        break;
    }
    if (pos < text.size()) {
      switch (text[pos]) {
        case '?':
          term.min_count = 0;
          ++pos;
          break;
        case '*':
          term.min_count = 0;
          term.max_count = kPatternUnbounded;
          ++pos;
          break;
        case '+':
          term.max_count = kPatternUnbounded;
          ++pos;
          break;
        case '{':
          ++pos;
          if (!parse_braces(text, pos, term)) return std::nullopt;
          break;
        default:
          break;
      }
    }
    pattern.terms.push_back(std::move(term));
  }
  return pattern;
}

bool atom_admits(const PatternAtom& atom, char c) {
  switch (atom.kind) {
    case PatternAtom::Kind::kAny:
      return c != '\n' && c != '\r';
    case PatternAtom::Kind::kLiteral:
      return c == atom.literal;
    case PatternAtom::Kind::kClass: {
      bool in_range = false;
      for (const auto& [lo, hi] : atom.ranges) {
        if (c >= lo && c <= hi) {
          in_range = true;
          break;
        }
      }
      return atom.negated ? !in_range : in_range;
    }
  }
  return false;
}

bool pattern_matches(const Pattern& pattern, std::string_view value) {
  return match_from(pattern, value, 0, 0);
}

}  // namespace wsx::xsd
