// values.hpp — lexical validation of instance values against built-in
// schema datatypes, plus enumeration facets. Used by the execution step to
// type-check payloads the way real binders do during unmarshalling.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "xsd/builtin.hpp"
#include "xsd/model.hpp"

namespace wsx::xsd {

/// True when `value` is a lexically valid instance of `type` (XML Schema
/// Part 2 lexical spaces; whitespace must already be collapsed).
bool is_valid_value(Builtin type, std::string_view value);

/// Validates against a simple-type declaration: base type lexical check
/// plus the enumeration facet when present.
bool is_valid_value(const SimpleTypeDecl& type, std::string_view value);

/// Status variant with a diagnostic message.
Status validate_value(Builtin type, std::string_view value);

}  // namespace wsx::xsd
