#include "xsd/values.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "xsd/pattern.hpp"

namespace wsx::xsd {
namespace {

bool all_digits(std::string_view text) {
  return !text.empty() && std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

/// Optional sign followed by digits.
bool is_integer_lexical(std::string_view value) {
  if (!value.empty() && (value.front() == '+' || value.front() == '-')) {
    value.remove_prefix(1);
  }
  return all_digits(value);
}

/// Checks an integer lexical against inclusive bounds given as strings of
/// equal magnitude handling (simple and allocation-light: compare by
/// length then lexicographically).
bool integer_in_range(std::string_view value, long long min_value,
                      unsigned long long max_value) {
  if (!is_integer_lexical(value)) return false;
  errno = 0;
  const std::string text(value);
  if (value.front() == '-') {
    const long long parsed = std::strtoll(text.c_str(), nullptr, 10);
    return errno == 0 && parsed >= min_value;
  }
  const unsigned long long parsed = std::strtoull(text.c_str(), nullptr, 10);
  return errno == 0 && parsed <= max_value;
}

/// "[-+]?digits(.digits)?([eE][-+]?digits)?" plus the special values.
bool is_float_lexical(std::string_view value) {
  if (value == "NaN" || value == "INF" || value == "-INF") return true;
  std::size_t i = 0;
  const auto digits = [&](std::size_t& index) {
    const std::size_t start = index;
    while (index < value.size() && std::isdigit(static_cast<unsigned char>(value[index]))) {
      ++index;
    }
    return index > start;
  };
  if (i < value.size() && (value[i] == '+' || value[i] == '-')) ++i;
  bool any = digits(i);
  if (i < value.size() && value[i] == '.') {
    ++i;
    any = digits(i) || any;
  }
  if (!any) return false;
  if (i < value.size() && (value[i] == 'e' || value[i] == 'E')) {
    ++i;
    if (i < value.size() && (value[i] == '+' || value[i] == '-')) ++i;
    if (!digits(i)) return false;
  }
  return i == value.size();
}

/// "CCYY-MM-DD" with basic range checks.
bool is_date_lexical(std::string_view value) {
  if (value.size() != 10 || value[4] != '-' || value[7] != '-') return false;
  if (!all_digits(value.substr(0, 4)) || !all_digits(value.substr(5, 2)) ||
      !all_digits(value.substr(8, 2))) {
    return false;
  }
  const int month = (value[5] - '0') * 10 + (value[6] - '0');
  const int day = (value[8] - '0') * 10 + (value[9] - '0');
  return month >= 1 && month <= 12 && day >= 1 && day <= 31;
}

/// "hh:mm:ss(.fff)?" with basic range checks.
bool is_time_lexical(std::string_view value) {
  if (value.size() < 8 || value[2] != ':' || value[5] != ':') return false;
  if (!all_digits(value.substr(0, 2)) || !all_digits(value.substr(3, 2)) ||
      !all_digits(value.substr(6, 2))) {
    return false;
  }
  const int hours = (value[0] - '0') * 10 + (value[1] - '0');
  const int minutes = (value[3] - '0') * 10 + (value[4] - '0');
  const int seconds = (value[6] - '0') * 10 + (value[7] - '0');
  if (hours > 23 || minutes > 59 || seconds > 59) return false;
  if (value.size() == 8) return true;
  return value[8] == '.' && all_digits(value.substr(9));
}

bool is_base64_lexical(std::string_view value) {
  if (value.size() % 4 != 0) return false;
  std::size_t padding = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    if (c == '=') {
      ++padding;
      if (i + 2 < value.size()) return false;  // '=' only at the end
      continue;
    }
    if (padding > 0) return false;
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '+' && c != '/') return false;
  }
  return padding <= 2;
}

}  // namespace

bool is_valid_value(Builtin type, std::string_view value) {
  switch (type) {
    case Builtin::kString:
    case Builtin::kAnyType:
    case Builtin::kAnyUri:
      return true;
    case Builtin::kBoolean:
      return value == "true" || value == "false" || value == "1" || value == "0";
    case Builtin::kByte:
      return integer_in_range(value, -128, 127);
    case Builtin::kShort:
      return integer_in_range(value, -32768, 32767);
    case Builtin::kInt:
      return integer_in_range(value, -2147483648LL, 2147483647ULL);
    case Builtin::kLong:
      return integer_in_range(value, (-9223372036854775807LL - 1), 9223372036854775807ULL);
    case Builtin::kUnsignedByte:
      return !value.empty() && value.front() != '-' && integer_in_range(value, 0, 255);
    case Builtin::kUnsignedShort:
      return !value.empty() && value.front() != '-' && integer_in_range(value, 0, 65535);
    case Builtin::kUnsignedInt:
      return !value.empty() && value.front() != '-' &&
             integer_in_range(value, 0, 4294967295ULL);
    case Builtin::kUnsignedLong:
      return !value.empty() && value.front() != '-' &&
             integer_in_range(value, 0, 18446744073709551615ULL);
    case Builtin::kInteger:
      return is_integer_lexical(value);
    case Builtin::kFloat:
    case Builtin::kDouble:
      return is_float_lexical(value);
    case Builtin::kDecimal:
      return is_float_lexical(value) && value.find_first_of("eE") == std::string_view::npos &&
             value != "NaN" && value != "INF" && value != "-INF";
    case Builtin::kDate:
      return is_date_lexical(value);
    case Builtin::kTime:
      return is_time_lexical(value);
    case Builtin::kDateTime: {
      const std::size_t t = value.find('T');
      if (t == std::string_view::npos) return false;
      std::string_view time_part = value.substr(t + 1);
      if (!time_part.empty() && time_part.back() == 'Z') time_part.remove_suffix(1);
      return is_date_lexical(value.substr(0, t)) && is_time_lexical(time_part);
    }
    case Builtin::kDuration:
      return !value.empty() && (value.front() == 'P' || value.substr(0, 2) == "-P");
    case Builtin::kBase64Binary:
      return is_base64_lexical(value);
    case Builtin::kHexBinary:
      return value.size() % 2 == 0 &&
             std::all_of(value.begin(), value.end(), [](unsigned char c) {
               return std::isxdigit(c) != 0;
             });
    case Builtin::kQNameType:
      return !value.empty() && value.find(' ') == std::string_view::npos;
  }
  return false;
}

bool is_valid_value(const SimpleTypeDecl& type, std::string_view value) {
  if (!type.base.empty()) {
    const std::optional<Builtin> base = builtin_from_local_name(type.base.local_name());
    if (base && !is_valid_value(*base, value)) return false;
  }
  if (type.min_length >= 0 &&
      value.size() < static_cast<std::size_t>(type.min_length)) {
    return false;
  }
  if (type.max_length >= 0 &&
      value.size() > static_cast<std::size_t>(type.max_length)) {
    return false;
  }
  if (type.total_digits > 0) {
    const auto digits = std::count_if(value.begin(), value.end(),
                                      [](unsigned char c) { return std::isdigit(c) != 0; });
    if (digits > type.total_digits) return false;
  }
  if (!type.pattern.empty()) {
    // Patterns outside the pattern-lite subset are skipped, the way
    // lenient binders treat facets they cannot compile.
    if (const std::optional<Pattern> pattern = parse_pattern(type.pattern);
        pattern && !pattern_matches(*pattern, value)) {
      return false;
    }
  }
  if (type.enumeration.empty()) return true;
  return std::find(type.enumeration.begin(), type.enumeration.end(), value) !=
         type.enumeration.end();
}

Status validate_value(Builtin type, std::string_view value) {
  if (is_valid_value(type, value)) return Status::success();
  return Error{"xsd.invalid-value", "'" + std::string(value) +
                                        "' is not a valid xsd:" +
                                        std::string(local_name(type)) + " value"};
}

}  // namespace wsx::xsd
