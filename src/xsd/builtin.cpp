#include "xsd/builtin.hpp"

#include <array>
#include <utility>

namespace wsx::xsd {
namespace {

constexpr std::array<std::pair<Builtin, std::string_view>, 23> kTable{{
    {Builtin::kString, "string"},
    {Builtin::kBoolean, "boolean"},
    {Builtin::kByte, "byte"},
    {Builtin::kShort, "short"},
    {Builtin::kInt, "int"},
    {Builtin::kLong, "long"},
    {Builtin::kUnsignedByte, "unsignedByte"},
    {Builtin::kUnsignedShort, "unsignedShort"},
    {Builtin::kUnsignedInt, "unsignedInt"},
    {Builtin::kUnsignedLong, "unsignedLong"},
    {Builtin::kFloat, "float"},
    {Builtin::kDouble, "double"},
    {Builtin::kDecimal, "decimal"},
    {Builtin::kInteger, "integer"},
    {Builtin::kDateTime, "dateTime"},
    {Builtin::kDate, "date"},
    {Builtin::kTime, "time"},
    {Builtin::kDuration, "duration"},
    {Builtin::kBase64Binary, "base64Binary"},
    {Builtin::kHexBinary, "hexBinary"},
    {Builtin::kAnyType, "anyType"},
    {Builtin::kAnyUri, "anyURI"},
    {Builtin::kQNameType, "QName"},
}};

}  // namespace

std::string_view local_name(Builtin type) {
  for (const auto& [builtin, name] : kTable) {
    if (builtin == type) return name;
  }
  return "string";
}

xml::QName qname(Builtin type) { return xml::xsd(std::string(local_name(type))); }

std::optional<Builtin> builtin_from_local_name(std::string_view name) {
  for (const auto& [builtin, candidate] : kTable) {
    if (candidate == name) return builtin;
  }
  return std::nullopt;
}

bool is_builtin(const xml::QName& name) {
  return name.namespace_uri() == xml::ns::kXsd &&
         builtin_from_local_name(name.local_name()).has_value();
}

}  // namespace wsx::xsd
