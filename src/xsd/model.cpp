#include "xsd/model.hpp"

#include <algorithm>

namespace wsx::xsd {

std::vector<const ElementDecl*> ComplexType::elements() const {
  std::vector<const ElementDecl*> out;
  for (const Particle& particle : particles) {
    if (const ElementDecl* element = std::get_if<ElementDecl>(&particle)) out.push_back(element);
  }
  return out;
}

std::size_t ComplexType::any_count() const {
  return static_cast<std::size_t>(
      std::count_if(particles.begin(), particles.end(), [](const Particle& particle) {
        return std::holds_alternative<AnyParticle>(particle);
      }));
}

std::size_t ComplexType::nesting_depth() const {
  std::size_t max_child = 0;
  for (const Particle& particle : particles) {
    const ElementDecl* element = std::get_if<ElementDecl>(&particle);
    if (element != nullptr && element->inline_type.has_value()) {
      max_child = std::max(max_child, element->inline_type->nesting_depth());
    }
  }
  return 1 + max_child;
}

const ComplexType* Schema::find_complex_type(std::string_view name) const {
  for (const ComplexType& type : complex_types) {
    if (type.name == name) return &type;
  }
  return nullptr;
}

const SimpleTypeDecl* Schema::find_simple_type(std::string_view name) const {
  for (const SimpleTypeDecl& type : simple_types) {
    if (type.name == name) return &type;
  }
  return nullptr;
}

const ElementDecl* Schema::find_element(std::string_view name) const {
  for (const ElementDecl& element : elements) {
    if (element.name == name) return &element;
  }
  return nullptr;
}

}  // namespace wsx::xsd
