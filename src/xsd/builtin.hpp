// builtin.hpp — XML Schema built-in datatypes used by WS bindings.
#pragma once

#include <optional>
#include <string_view>

#include "xml/qname.hpp"

namespace wsx::xsd {

enum class Builtin {
  kString,
  kBoolean,
  kByte,
  kShort,
  kInt,
  kLong,
  kUnsignedByte,
  kUnsignedShort,
  kUnsignedInt,
  kUnsignedLong,
  kFloat,
  kDouble,
  kDecimal,
  kInteger,
  kDateTime,
  kDate,
  kTime,
  kDuration,
  kBase64Binary,
  kHexBinary,
  kAnyType,
  kAnyUri,
  kQNameType,
};

/// Lexical local name of a built-in type ("string", "dateTime", ...).
std::string_view local_name(Builtin type);

/// Fully qualified QName ({http://www.w3.org/2001/XMLSchema}local).
xml::QName qname(Builtin type);

/// Reverse lookup by local name; nullopt for unknown names.
std::optional<Builtin> builtin_from_local_name(std::string_view name);

/// True iff `name` refers to a built-in XML Schema datatype (or anyType).
bool is_builtin(const xml::QName& name);

}  // namespace wsx::xsd
