#include "xsd/writer.hpp"

namespace wsx::xsd {
namespace {

class SchemaWriter {
 public:
  SchemaWriter(const Schema& schema, const SchemaWriteOptions& options)
      : schema_(schema), options_(options) {}

  xml::Element build() {
    xml::Element root{options_.schema_prefix + ":schema"};
    root.declare_namespace(options_.schema_prefix, xml::ns::kXsd);
    if (!schema_.target_namespace.empty()) {
      root.declare_namespace(options_.target_prefix, schema_.target_namespace);
      root.set_attribute("targetNamespace", schema_.target_namespace);
    }
    root.set_attribute("elementFormDefault",
                       schema_.element_form_qualified ? "qualified" : "unqualified");
    for (const SchemaImport& import : schema_.imports) {
      xml::Element& node = root.add_element(prefixed("import"));
      node.set_attribute("namespace", import.namespace_uri);
      if (!import.schema_location.empty()) {
        node.set_attribute("schemaLocation", import.schema_location);
      }
    }
    for (const ElementDecl& element : schema_.elements) {
      root.add_child(element_to_xml(element));
    }
    for (const ComplexType& type : schema_.complex_types) {
      root.add_child(complex_type_to_xml(type));
    }
    for (const SimpleTypeDecl& type : schema_.simple_types) {
      root.add_child(simple_type_to_xml(type));
    }
    return root;
  }

 private:
  std::string prefixed(std::string_view local) const {
    return options_.schema_prefix + ":" + std::string(local);
  }

  /// Renders a QName lexically using the writer's prefix conventions.
  std::string qname_ref(const xml::QName& name) const {
    if (name.namespace_uri() == xml::ns::kXsd) {
      return options_.schema_prefix + ":" + name.local_name();
    }
    if (name.namespace_uri() == schema_.target_namespace) {
      return options_.target_prefix + ":" + name.local_name();
    }
    if (name.namespace_uri() == xml::ns::kXmlNs) {
      return "xml:" + name.local_name();
    }
    // Foreign namespace: fall back to the stored prefix. When the model has
    // none, emit the bare prefixless name — mirroring the under-declared
    // references real generators produce.
    return name.prefix().empty() ? name.local_name() : name.lexical();
  }

  xml::Element element_to_xml(const ElementDecl& element) const {
    xml::Element node{prefixed("element")};
    if (element.is_ref()) {
      node.set_attribute("ref", qname_ref(element.ref));
    } else {
      node.set_attribute("name", element.name);
      if (!element.type.empty()) node.set_attribute("type", qname_ref(element.type));
    }
    if (element.min_occurs != 1) {
      node.set_attribute("minOccurs", std::to_string(element.min_occurs));
    }
    if (element.max_occurs == kUnbounded) {
      node.set_attribute("maxOccurs", "unbounded");
    } else if (element.max_occurs != 1) {
      node.set_attribute("maxOccurs", std::to_string(element.max_occurs));
    }
    if (element.nillable) node.set_attribute("nillable", "true");
    if (element.inline_type.has_value()) {
      node.add_child(complex_type_to_xml(*element.inline_type));
    }
    return node;
  }

  xml::Element complex_type_to_xml(const ComplexType& type) const {
    xml::Element node{prefixed("complexType")};
    if (!type.name.empty()) node.set_attribute("name", type.name);
    // Derived types wrap their content in complexContent/extension.
    xml::Element* content_parent = &node;
    if (type.is_derived()) {
      xml::Element& complex_content = node.add_element(prefixed("complexContent"));
      xml::Element& extension = complex_content.add_element(prefixed("extension"));
      extension.set_attribute("base", qname_ref(type.base));
      content_parent = &extension;
    }
    xml::Element& body = *content_parent;
    if (!type.particles.empty()) {
      xml::Element& sequence = body.add_element(prefixed("sequence"));
      for (const Particle& particle : type.particles) {
        if (const ElementDecl* element = std::get_if<ElementDecl>(&particle)) {
          sequence.add_child(element_to_xml(*element));
        } else if (const AnyParticle* any = std::get_if<AnyParticle>(&particle)) {
          xml::Element& any_node = sequence.add_element(prefixed("any"));
          any_node.set_attribute("namespace", any->namespace_constraint);
          any_node.set_attribute("processContents", any->process_contents);
          if (any->min_occurs != 1) {
            any_node.set_attribute("minOccurs", std::to_string(any->min_occurs));
          }
          if (any->max_occurs == kUnbounded) {
            any_node.set_attribute("maxOccurs", "unbounded");
          } else if (any->max_occurs != 1) {
            any_node.set_attribute("maxOccurs", std::to_string(any->max_occurs));
          }
        }
      }
    }
    for (const AttributeDecl& attribute : type.attributes) {
      xml::Element& attr_node = body.add_element(prefixed("attribute"));
      if (attribute.is_ref()) {
        attr_node.set_attribute("ref", qname_ref(attribute.ref));
      } else {
        attr_node.set_attribute("name", attribute.name);
        if (!attribute.type.empty()) attr_node.set_attribute("type", qname_ref(attribute.type));
      }
      if (attribute.required) attr_node.set_attribute("use", "required");
    }
    for (const AttributeGroupRef& group : type.attribute_groups) {
      xml::Element& group_node = body.add_element(prefixed("attributeGroup"));
      group_node.set_attribute("ref", qname_ref(group.ref));
    }
    return node;
  }

  xml::Element simple_type_to_xml(const SimpleTypeDecl& type) const {
    xml::Element node{prefixed("simpleType")};
    if (!type.name.empty()) node.set_attribute("name", type.name);
    xml::Element& restriction = node.add_element(prefixed("restriction"));
    restriction.set_attribute("base", qname_ref(type.base));
    const auto int_facet = [&](const char* facet_name, int value) {
      if (value < 0) return;
      restriction.add_element(prefixed(facet_name))
          .set_attribute("value", std::to_string(value));
    };
    int_facet("minLength", type.min_length);
    int_facet("maxLength", type.max_length);
    int_facet("totalDigits", type.total_digits);
    if (!type.pattern.empty()) {
      restriction.add_element(prefixed("pattern")).set_attribute("value", type.pattern);
    }
    for (const std::string& value : type.enumeration) {
      restriction.add_element(prefixed("enumeration")).set_attribute("value", value);
    }
    return node;
  }

  const Schema& schema_;
  const SchemaWriteOptions& options_;
};

}  // namespace

xml::Element to_xml(const Schema& schema, const SchemaWriteOptions& options) {
  return SchemaWriter{schema, options}.build();
}

}  // namespace wsx::xsd
