// model.hpp — value-semantic model of the XML Schema subset emitted by
// web-service frameworks: complex types with sequences of elements,
// wildcards (xs:any), attributes (incl. ref= and attributeGroup ref=),
// simple-type enumerations, imports.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/box.hpp"
#include "xml/qname.hpp"
#include "xsd/builtin.hpp"

namespace wsx::xsd {

struct ComplexType;

/// Sentinel for maxOccurs="unbounded".
inline constexpr int kUnbounded = -1;

/// xs:element — either a local declaration (name + type / inline anonymous
/// type) or a reference (ref=QName) to a top-level element.
struct ElementDecl {
  std::string name;               ///< empty when this is a ref
  xml::QName type;                ///< empty when inline_type or ref is used
  Box<ComplexType> inline_type;   ///< anonymous nested complexType
  xml::QName ref;                 ///< element reference; empty when unused
  int min_occurs = 1;
  int max_occurs = 1;             ///< kUnbounded for "unbounded"
  bool nillable = false;

  bool is_ref() const { return !ref.empty(); }
  bool is_array() const { return max_occurs == kUnbounded || max_occurs > 1; }
  friend bool operator==(const ElementDecl&, const ElementDecl&) = default;
};

/// xs:any wildcard particle.
struct AnyParticle {
  std::string namespace_constraint = "##any";
  std::string process_contents = "lax";
  int min_occurs = 1;
  int max_occurs = 1;
  friend bool operator==(const AnyParticle&, const AnyParticle&) = default;
};

using Particle = std::variant<ElementDecl, AnyParticle>;

/// xs:attribute — local (name + type) or reference (ref=QName).
struct AttributeDecl {
  std::string name;
  xml::QName type;
  xml::QName ref;  ///< e.g. ref="xml:lang"; empty when unused
  bool required = false;

  bool is_ref() const { return !ref.empty(); }
  friend bool operator==(const AttributeDecl&, const AttributeDecl&) = default;
};

/// xs:attributeGroup ref=...
struct AttributeGroupRef {
  xml::QName ref;
  friend bool operator==(const AttributeGroupRef&, const AttributeGroupRef&) = default;
};

/// xs:complexType with xs:sequence content, optionally derived by
/// extension (xs:complexContent/xs:extension base=...).
struct ComplexType {
  std::string name;  ///< empty for anonymous types
  xml::QName base;   ///< extension base; empty for underived types
  std::vector<Particle> particles;
  std::vector<AttributeDecl> attributes;
  std::vector<AttributeGroupRef> attribute_groups;
  friend bool operator==(const ComplexType&, const ComplexType&) = default;

  bool is_derived() const { return !base.empty(); }

  /// Elements of the sequence (skipping wildcards).
  std::vector<const ElementDecl*> elements() const;
  /// Number of xs:any wildcard particles.
  std::size_t any_count() const;
  /// Maximum depth of inline anonymous types (a flat type has depth 1).
  std::size_t nesting_depth() const;
};

/// xs:simpleType restriction. Frameworks emit the enumeration facet for
/// native enums; hand-written contracts also carry the constraining facets
/// below, which the value validator and the generators both honour.
/// A facet is absent when its field is negative (lengths, digits) or
/// empty (pattern).
struct SimpleTypeDecl {
  std::string name;
  xml::QName base;
  std::vector<std::string> enumeration;
  int min_length = -1;     ///< xs:minLength
  int max_length = -1;     ///< xs:maxLength
  int total_digits = -1;   ///< xs:totalDigits (count of digit characters)
  std::string pattern;     ///< xs:pattern, pattern-lite subset (xsd/pattern.hpp)
  friend bool operator==(const SimpleTypeDecl&, const SimpleTypeDecl&) = default;
};

struct SchemaImport {
  std::string namespace_uri;
  std::string schema_location;  ///< empty = import without location
  friend bool operator==(const SchemaImport&, const SchemaImport&) = default;
};

/// One xs:schema document.
struct Schema {
  std::string target_namespace;
  bool element_form_qualified = true;
  std::vector<SchemaImport> imports;
  std::vector<ComplexType> complex_types;
  std::vector<SimpleTypeDecl> simple_types;
  std::vector<ElementDecl> elements;  ///< top-level element declarations
  friend bool operator==(const Schema&, const Schema&) = default;

  const ComplexType* find_complex_type(std::string_view name) const;
  const SimpleTypeDecl* find_simple_type(std::string_view name) const;
  const ElementDecl* find_element(std::string_view name) const;
};

}  // namespace wsx::xsd
