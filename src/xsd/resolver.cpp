#include "xsd/resolver.hpp"

#include <algorithm>

namespace wsx::xsd {

const char* to_string(RefKind kind) {
  switch (kind) {
    case RefKind::kTypeRef:
      return "type reference";
    case RefKind::kElementRef:
      return "element reference";
    case RefKind::kAttributeRef:
      return "attribute reference";
    case RefKind::kAttributeGroupRef:
      return "attributeGroup reference";
  }
  return "reference";
}

bool ResolutionReport::has_unresolved(RefKind kind) const {
  return std::any_of(unresolved.begin(), unresolved.end(),
                     [kind](const UnresolvedRef& ref) { return ref.kind == kind; });
}

namespace {

class Resolver {
 public:
  Resolver(const std::vector<Schema>& schemas,
           const std::vector<std::string>& external_namespaces)
      : schemas_(schemas), external_namespaces_(external_namespaces) {}

  ResolutionReport run() {
    for (const Schema& schema : schemas_) {
      for (const ElementDecl& element : schema.elements) {
        if (element.name.empty() && !element.is_ref()) {
          report_.issues.push_back(
              {"xsd.unnamed-top-level-element", "schema " + schema.target_namespace});
        }
        check_element(element, "top-level element '" + element.name + "'");
      }
      for (const ComplexType& type : schema.complex_types) {
        check_complex_type(type, "complexType '" + type.name + "'");
      }
      for (const SimpleTypeDecl& type : schema.simple_types) {
        if (!type.base.empty()) {
          check_type_ref(type.base, "simpleType '" + type.name + "'");
        }
      }
    }
    return std::move(report_);
  }

 private:
  bool namespace_known(const std::string& uri) const {
    if (uri == xml::ns::kXsd || uri == xml::ns::kXmlNs) return true;
    for (const Schema& schema : schemas_) {
      if (schema.target_namespace == uri) return true;
    }
    // A namespace is also known when some schema imports it *with* a
    // resolvable location, or when the caller vouches for it.
    for (const Schema& schema : schemas_) {
      for (const SchemaImport& import : schema.imports) {
        if (import.namespace_uri == uri && !import.schema_location.empty()) return true;
      }
    }
    return std::find(external_namespaces_.begin(), external_namespaces_.end(), uri) !=
           external_namespaces_.end();
  }

  bool type_exists(const xml::QName& name) const {
    if (is_builtin(name)) return true;
    for (const Schema& schema : schemas_) {
      if (schema.target_namespace != name.namespace_uri()) continue;
      if (schema.find_complex_type(name.local_name()) != nullptr) return true;
      if (schema.find_simple_type(name.local_name()) != nullptr) return true;
    }
    return false;
  }

  bool element_exists(const xml::QName& name) const {
    for (const Schema& schema : schemas_) {
      if (schema.target_namespace != name.namespace_uri()) continue;
      if (schema.find_element(name.local_name()) != nullptr) return true;
    }
    return false;
  }

  void add_unresolved(RefKind kind, const xml::QName& target, std::string context) {
    report_.unresolved.push_back(
        {kind, target, std::move(context), /*undeclared_prefix=*/target.namespace_uri().empty()});
  }

  void check_type_ref(const xml::QName& type, const std::string& context) {
    if (type.empty()) return;
    if (type.namespace_uri().empty()) {
      add_unresolved(RefKind::kTypeRef, type, context);
      return;
    }
    if (type_exists(type)) return;
    // Unknown type in a known-but-opaque external namespace: tolerated (the
    // import promises a definition elsewhere). Unknown namespace entirely,
    // or a miss inside an inline schema namespace: unresolved.
    if (type.namespace_uri() != xml::ns::kXsd && namespace_known(type.namespace_uri()) &&
        !is_local_namespace(type.namespace_uri())) {
      return;
    }
    add_unresolved(RefKind::kTypeRef, type, context);
  }

  bool is_local_namespace(const std::string& uri) const {
    return std::any_of(schemas_.begin(), schemas_.end(),
                       [&uri](const Schema& s) { return s.target_namespace == uri; });
  }

  void check_element(const ElementDecl& element, const std::string& context) {
    if (!element.type.empty() && element.inline_type.has_value()) {
      report_.issues.push_back({"xsd.dual-type-declaration", context});
    }
    if (element.is_ref()) {
      // xs:schema itself is not a declarable element; a ref to it (the WCF
      // DataSet idiom) never resolves.
      if (element.ref.namespace_uri().empty() || !element_exists(element.ref)) {
        add_unresolved(RefKind::kElementRef, element.ref, context);
      }
      return;
    }
    check_type_ref(element.type, context);
    if (element.inline_type.has_value()) {
      check_complex_type(*element.inline_type, context + " (anonymous type)");
    }
  }

  void check_complex_type(const ComplexType& type, const std::string& context) {
    if (type.is_derived()) {
      check_type_ref(type.base, context + " / extension base");
    }
    for (const Particle& particle : type.particles) {
      if (const ElementDecl* element = std::get_if<ElementDecl>(&particle)) {
        check_element(*element, context + " / element '" + element->name + "'");
      }
    }
    for (const AttributeDecl& attribute : type.attributes) {
      if (attribute.is_ref()) {
        const bool known_xml_attr = attribute.ref.namespace_uri() == xml::ns::kXmlNs &&
                                    attribute.ref.local_name() == "lang";
        // xml:lang is predeclared by the XML namespace; lang in any other
        // namespace (the paper's "s:lang") is not a declarable attribute.
        if (!known_xml_attr) {
          add_unresolved(RefKind::kAttributeRef, attribute.ref,
                         context + " / attribute ref");
        }
      } else if (!attribute.type.empty()) {
        check_type_ref(attribute.type, context + " / attribute '" + attribute.name + "'");
      }
    }
    for (const AttributeGroupRef& group : type.attribute_groups) {
      // We model no attributeGroup declarations, so a group ref resolves
      // only when its namespace is imported *with* a schema location (the
      // definition is promised elsewhere) or vouched for by the caller.
      // An import without a location — the JAXB "xml:specialAttrs" idiom —
      // leaves the reference dangling.
      bool promised = std::find(external_namespaces_.begin(), external_namespaces_.end(),
                                group.ref.namespace_uri()) != external_namespaces_.end();
      for (const Schema& schema : schemas_) {
        for (const SchemaImport& import : schema.imports) {
          if (import.namespace_uri == group.ref.namespace_uri() &&
              !import.schema_location.empty()) {
            promised = true;
          }
        }
      }
      if (!promised) {
        add_unresolved(RefKind::kAttributeGroupRef, group.ref, context + " / attributeGroup");
      }
    }
  }

  const std::vector<Schema>& schemas_;
  const std::vector<std::string>& external_namespaces_;
  ResolutionReport report_;
};

}  // namespace

ResolutionReport resolve(const std::vector<Schema>& schemas,
                         const std::vector<std::string>& external_namespaces) {
  return Resolver{schemas, external_namespaces}.run();
}

}  // namespace wsx::xsd
