// pattern.hpp — the "pattern-lite" subset of XSD regular expressions that
// the value validator enforces and the generators can synthesise values
// for. The subset covers what real WSDL contracts overwhelmingly use:
// literal characters, '.', the \d \w \s escapes (and escaped literals),
// character classes with ranges and ^ negation, and the ? * + {n} {n,}
// {n,m} quantifiers. Alternation and groups are outside the subset;
// parse_pattern returns nullopt for them and callers skip the facet the
// way lenient data binders do.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wsx::xsd {

/// One matchable unit: a literal character, the '.' wildcard, or a
/// character class (ranges plus negation; \d \w \s parse into classes).
struct PatternAtom {
  enum class Kind { kLiteral, kAny, kClass };
  Kind kind = Kind::kLiteral;
  char literal = '\0';
  bool negated = false;
  std::vector<std::pair<char, char>> ranges;
};

/// An atom plus its quantifier; max_count == kPatternUnbounded for * / + /
/// {n,}.
inline constexpr int kPatternUnbounded = -1;
struct PatternTerm {
  PatternAtom atom;
  int min_count = 1;
  int max_count = 1;
};

struct Pattern {
  std::vector<PatternTerm> terms;
};

/// Parses the pattern-lite subset; nullopt when `text` uses a construct
/// outside it (alternation, groups, anchors, back-references).
std::optional<Pattern> parse_pattern(std::string_view text);

/// True when `c` is admitted by the atom.
bool atom_admits(const PatternAtom& atom, char c);

/// Anchored match over the whole value (XSD pattern semantics).
bool pattern_matches(const Pattern& pattern, std::string_view value);

}  // namespace wsx::xsd
