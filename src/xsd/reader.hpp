// reader.hpp — builds a Schema model from a parsed <xs:schema> element.
#pragma once

#include "common/result.hpp"
#include "xml/node.hpp"
#include "xml/query.hpp"
#include "xsd/model.hpp"

namespace wsx::xsd {

/// Parses `schema_element` (resolved name must be {xsd}schema). QName-valued
/// attributes (type=, ref=, base=) are resolved against `scope`, which must
/// reflect the declarations in force at the schema element (pass a default
/// scope for standalone documents). QNames whose prefix is undeclared are
/// recorded with an empty namespace URI and the original prefix — the
/// resolver reports them as unresolved rather than failing the parse, which
/// is exactly how the studied client tools encounter them.
Result<Schema> from_xml(const xml::Element& schema_element, xml::NamespaceScope scope = {});

}  // namespace wsx::xsd
