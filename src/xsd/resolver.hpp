// resolver.hpp — reference resolution and structural validity over a set of
// schemas (typically the wsdl:types section of one service description).
//
// This is the substrate behind several of the paper's findings: the WCF
// DataSet-style WSDLs carry `ref="s:schema"` / `ref="s:lang"` references
// that do not resolve, and the Java-stack W3CEndpointReference WSDLs carry
// references into a namespace that is declared but never imported. Client
// tools differ in *which* unresolved reference kinds they tolerate — that
// difference is what the study measures.
#pragma once

#include <string>
#include <vector>

#include "xml/qname.hpp"
#include "xsd/model.hpp"

namespace wsx::xsd {

enum class RefKind {
  kTypeRef,            ///< element/@type or attribute/@type or restriction/@base
  kElementRef,         ///< element/@ref
  kAttributeRef,       ///< attribute/@ref
  kAttributeGroupRef,  ///< attributeGroup/@ref
};

const char* to_string(RefKind kind);

struct UnresolvedRef {
  RefKind kind;
  xml::QName target;
  std::string context;  ///< where it appeared, e.g. "complexType DataTable"
  bool undeclared_prefix = false;  ///< the prefix itself had no binding
  friend bool operator==(const UnresolvedRef&, const UnresolvedRef&) = default;
};

struct ValidityIssue {
  std::string code;     ///< e.g. "xsd.dual-type-declaration"
  std::string context;
  friend bool operator==(const ValidityIssue&, const ValidityIssue&) = default;
};

/// Result of checking a schema set.
struct ResolutionReport {
  std::vector<UnresolvedRef> unresolved;
  std::vector<ValidityIssue> issues;

  bool clean() const { return unresolved.empty() && issues.empty(); }
  bool has_unresolved(RefKind kind) const;
};

/// Checks every QName reference in `schemas` against built-in types, the
/// declarations in all provided schemas, and `external_namespaces`
/// (namespaces the checker should treat as opaque-but-known, e.g. because a
/// resolvable import exists). Also reports structural issues:
///   - "xsd.dual-type-declaration": element carries both type= and an
///     inline anonymous type (invalid per XML Schema structures);
///   - "xsd.unnamed-top-level-element": top-level element without a name.
ResolutionReport resolve(const std::vector<Schema>& schemas,
                         const std::vector<std::string>& external_namespaces = {});

}  // namespace wsx::xsd
