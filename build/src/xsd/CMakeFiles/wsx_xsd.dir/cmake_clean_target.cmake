file(REMOVE_RECURSE
  "libwsx_xsd.a"
)
