file(REMOVE_RECURSE
  "CMakeFiles/wsx_xsd.dir/builtin.cpp.o"
  "CMakeFiles/wsx_xsd.dir/builtin.cpp.o.d"
  "CMakeFiles/wsx_xsd.dir/model.cpp.o"
  "CMakeFiles/wsx_xsd.dir/model.cpp.o.d"
  "CMakeFiles/wsx_xsd.dir/reader.cpp.o"
  "CMakeFiles/wsx_xsd.dir/reader.cpp.o.d"
  "CMakeFiles/wsx_xsd.dir/resolver.cpp.o"
  "CMakeFiles/wsx_xsd.dir/resolver.cpp.o.d"
  "CMakeFiles/wsx_xsd.dir/values.cpp.o"
  "CMakeFiles/wsx_xsd.dir/values.cpp.o.d"
  "CMakeFiles/wsx_xsd.dir/writer.cpp.o"
  "CMakeFiles/wsx_xsd.dir/writer.cpp.o.d"
  "libwsx_xsd.a"
  "libwsx_xsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_xsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
