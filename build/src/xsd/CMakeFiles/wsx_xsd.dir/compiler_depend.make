# Empty compiler generated dependencies file for wsx_xsd.
# This may be replaced when dependencies are built.
