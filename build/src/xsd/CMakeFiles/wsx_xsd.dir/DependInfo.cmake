
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsd/builtin.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/builtin.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/builtin.cpp.o.d"
  "/root/repo/src/xsd/model.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/model.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/model.cpp.o.d"
  "/root/repo/src/xsd/reader.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/reader.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/reader.cpp.o.d"
  "/root/repo/src/xsd/resolver.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/resolver.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/resolver.cpp.o.d"
  "/root/repo/src/xsd/values.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/values.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/values.cpp.o.d"
  "/root/repo/src/xsd/writer.cpp" "src/xsd/CMakeFiles/wsx_xsd.dir/writer.cpp.o" "gcc" "src/xsd/CMakeFiles/wsx_xsd.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
