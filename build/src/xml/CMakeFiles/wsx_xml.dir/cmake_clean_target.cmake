file(REMOVE_RECURSE
  "libwsx_xml.a"
)
