# Empty dependencies file for wsx_xml.
# This may be replaced when dependencies are built.
