file(REMOVE_RECURSE
  "CMakeFiles/wsx_xml.dir/node.cpp.o"
  "CMakeFiles/wsx_xml.dir/node.cpp.o.d"
  "CMakeFiles/wsx_xml.dir/parser.cpp.o"
  "CMakeFiles/wsx_xml.dir/parser.cpp.o.d"
  "CMakeFiles/wsx_xml.dir/qname.cpp.o"
  "CMakeFiles/wsx_xml.dir/qname.cpp.o.d"
  "CMakeFiles/wsx_xml.dir/query.cpp.o"
  "CMakeFiles/wsx_xml.dir/query.cpp.o.d"
  "CMakeFiles/wsx_xml.dir/writer.cpp.o"
  "CMakeFiles/wsx_xml.dir/writer.cpp.o.d"
  "libwsx_xml.a"
  "libwsx_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
