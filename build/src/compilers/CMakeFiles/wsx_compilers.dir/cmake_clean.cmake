file(REMOVE_RECURSE
  "CMakeFiles/wsx_compilers.dir/compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/compiler.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/cpp_compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/cpp_compiler.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/csharp_compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/csharp_compiler.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/dynamic_checker.cpp.o"
  "CMakeFiles/wsx_compilers.dir/dynamic_checker.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/java_compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/java_compiler.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/jscript_compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/jscript_compiler.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/semantic_checks.cpp.o"
  "CMakeFiles/wsx_compilers.dir/semantic_checks.cpp.o.d"
  "CMakeFiles/wsx_compilers.dir/vb_compiler.cpp.o"
  "CMakeFiles/wsx_compilers.dir/vb_compiler.cpp.o.d"
  "libwsx_compilers.a"
  "libwsx_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
