file(REMOVE_RECURSE
  "libwsx_compilers.a"
)
