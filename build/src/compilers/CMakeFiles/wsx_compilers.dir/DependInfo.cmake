
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compilers/compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/compiler.cpp.o.d"
  "/root/repo/src/compilers/cpp_compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/cpp_compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/cpp_compiler.cpp.o.d"
  "/root/repo/src/compilers/csharp_compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/csharp_compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/csharp_compiler.cpp.o.d"
  "/root/repo/src/compilers/dynamic_checker.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/dynamic_checker.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/dynamic_checker.cpp.o.d"
  "/root/repo/src/compilers/java_compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/java_compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/java_compiler.cpp.o.d"
  "/root/repo/src/compilers/jscript_compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/jscript_compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/jscript_compiler.cpp.o.d"
  "/root/repo/src/compilers/semantic_checks.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/semantic_checks.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/semantic_checks.cpp.o.d"
  "/root/repo/src/compilers/vb_compiler.cpp" "src/compilers/CMakeFiles/wsx_compilers.dir/vb_compiler.cpp.o" "gcc" "src/compilers/CMakeFiles/wsx_compilers.dir/vb_compiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codemodel/CMakeFiles/wsx_codemodel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
