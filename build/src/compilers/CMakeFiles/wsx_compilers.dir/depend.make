# Empty dependencies file for wsx_compilers.
# This may be replaced when dependencies are built.
