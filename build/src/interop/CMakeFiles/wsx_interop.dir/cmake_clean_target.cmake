file(REMOVE_RECURSE
  "libwsx_interop.a"
)
