# Empty dependencies file for wsx_interop.
# This may be replaced when dependencies are built.
