file(REMOVE_RECURSE
  "CMakeFiles/wsx_interop.dir/communication.cpp.o"
  "CMakeFiles/wsx_interop.dir/communication.cpp.o.d"
  "CMakeFiles/wsx_interop.dir/persistence.cpp.o"
  "CMakeFiles/wsx_interop.dir/persistence.cpp.o.d"
  "CMakeFiles/wsx_interop.dir/report.cpp.o"
  "CMakeFiles/wsx_interop.dir/report.cpp.o.d"
  "CMakeFiles/wsx_interop.dir/report_formats.cpp.o"
  "CMakeFiles/wsx_interop.dir/report_formats.cpp.o.d"
  "CMakeFiles/wsx_interop.dir/scorecard.cpp.o"
  "CMakeFiles/wsx_interop.dir/scorecard.cpp.o.d"
  "CMakeFiles/wsx_interop.dir/study.cpp.o"
  "CMakeFiles/wsx_interop.dir/study.cpp.o.d"
  "libwsx_interop.a"
  "libwsx_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
