file(REMOVE_RECURSE
  "libwsx_codemodel.a"
)
