# Empty dependencies file for wsx_codemodel.
# This may be replaced when dependencies are built.
