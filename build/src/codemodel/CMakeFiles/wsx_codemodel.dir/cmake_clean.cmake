file(REMOVE_RECURSE
  "CMakeFiles/wsx_codemodel.dir/model.cpp.o"
  "CMakeFiles/wsx_codemodel.dir/model.cpp.o.d"
  "CMakeFiles/wsx_codemodel.dir/render.cpp.o"
  "CMakeFiles/wsx_codemodel.dir/render.cpp.o.d"
  "libwsx_codemodel.a"
  "libwsx_codemodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_codemodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
