# Empty dependencies file for wsx_common.
# This may be replaced when dependencies are built.
