file(REMOVE_RECURSE
  "CMakeFiles/wsx_common.dir/diagnostics.cpp.o"
  "CMakeFiles/wsx_common.dir/diagnostics.cpp.o.d"
  "CMakeFiles/wsx_common.dir/json.cpp.o"
  "CMakeFiles/wsx_common.dir/json.cpp.o.d"
  "CMakeFiles/wsx_common.dir/strings.cpp.o"
  "CMakeFiles/wsx_common.dir/strings.cpp.o.d"
  "libwsx_common.a"
  "libwsx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
