file(REMOVE_RECURSE
  "libwsx_common.a"
)
