file(REMOVE_RECURSE
  "libwsx_wsdl.a"
)
