file(REMOVE_RECURSE
  "CMakeFiles/wsx_wsdl.dir/import_store.cpp.o"
  "CMakeFiles/wsx_wsdl.dir/import_store.cpp.o.d"
  "CMakeFiles/wsx_wsdl.dir/model.cpp.o"
  "CMakeFiles/wsx_wsdl.dir/model.cpp.o.d"
  "CMakeFiles/wsx_wsdl.dir/parser.cpp.o"
  "CMakeFiles/wsx_wsdl.dir/parser.cpp.o.d"
  "CMakeFiles/wsx_wsdl.dir/writer.cpp.o"
  "CMakeFiles/wsx_wsdl.dir/writer.cpp.o.d"
  "libwsx_wsdl.a"
  "libwsx_wsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
