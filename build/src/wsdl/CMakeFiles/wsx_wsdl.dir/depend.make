# Empty dependencies file for wsx_wsdl.
# This may be replaced when dependencies are built.
