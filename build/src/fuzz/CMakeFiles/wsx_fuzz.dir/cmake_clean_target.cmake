file(REMOVE_RECURSE
  "libwsx_fuzz.a"
)
