file(REMOVE_RECURSE
  "CMakeFiles/wsx_fuzz.dir/campaign.cpp.o"
  "CMakeFiles/wsx_fuzz.dir/campaign.cpp.o.d"
  "CMakeFiles/wsx_fuzz.dir/mutation.cpp.o"
  "CMakeFiles/wsx_fuzz.dir/mutation.cpp.o.d"
  "libwsx_fuzz.a"
  "libwsx_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
