# Empty compiler generated dependencies file for wsx_fuzz.
# This may be replaced when dependencies are built.
