file(REMOVE_RECURSE
  "CMakeFiles/wsx_catalog.dir/dotnet_catalog.cpp.o"
  "CMakeFiles/wsx_catalog.dir/dotnet_catalog.cpp.o.d"
  "CMakeFiles/wsx_catalog.dir/java_catalog.cpp.o"
  "CMakeFiles/wsx_catalog.dir/java_catalog.cpp.o.d"
  "CMakeFiles/wsx_catalog.dir/name_pool.cpp.o"
  "CMakeFiles/wsx_catalog.dir/name_pool.cpp.o.d"
  "CMakeFiles/wsx_catalog.dir/type_info.cpp.o"
  "CMakeFiles/wsx_catalog.dir/type_info.cpp.o.d"
  "libwsx_catalog.a"
  "libwsx_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
