file(REMOVE_RECURSE
  "libwsx_catalog.a"
)
