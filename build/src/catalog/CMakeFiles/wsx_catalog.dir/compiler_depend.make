# Empty compiler generated dependencies file for wsx_catalog.
# This may be replaced when dependencies are built.
