
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/dotnet_catalog.cpp" "src/catalog/CMakeFiles/wsx_catalog.dir/dotnet_catalog.cpp.o" "gcc" "src/catalog/CMakeFiles/wsx_catalog.dir/dotnet_catalog.cpp.o.d"
  "/root/repo/src/catalog/java_catalog.cpp" "src/catalog/CMakeFiles/wsx_catalog.dir/java_catalog.cpp.o" "gcc" "src/catalog/CMakeFiles/wsx_catalog.dir/java_catalog.cpp.o.d"
  "/root/repo/src/catalog/name_pool.cpp" "src/catalog/CMakeFiles/wsx_catalog.dir/name_pool.cpp.o" "gcc" "src/catalog/CMakeFiles/wsx_catalog.dir/name_pool.cpp.o.d"
  "/root/repo/src/catalog/type_info.cpp" "src/catalog/CMakeFiles/wsx_catalog.dir/type_info.cpp.o" "gcc" "src/catalog/CMakeFiles/wsx_catalog.dir/type_info.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/wsx_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
