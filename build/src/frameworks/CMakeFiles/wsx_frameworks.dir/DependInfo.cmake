
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frameworks/artifact_builder.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/artifact_builder.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/artifact_builder.cpp.o.d"
  "/root/repo/src/frameworks/axis1_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/axis1_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/axis1_client.cpp.o.d"
  "/root/repo/src/frameworks/axis2_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/axis2_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/axis2_client.cpp.o.d"
  "/root/repo/src/frameworks/client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/client.cpp.o.d"
  "/root/repo/src/frameworks/cxf_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/cxf_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/cxf_client.cpp.o.d"
  "/root/repo/src/frameworks/dotnet_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/dotnet_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/dotnet_client.cpp.o.d"
  "/root/repo/src/frameworks/features.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/features.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/features.cpp.o.d"
  "/root/repo/src/frameworks/gsoap_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/gsoap_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/gsoap_client.cpp.o.d"
  "/root/repo/src/frameworks/jbossws_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/jbossws_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/jbossws_client.cpp.o.d"
  "/root/repo/src/frameworks/jbossws_server.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/jbossws_server.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/jbossws_server.cpp.o.d"
  "/root/repo/src/frameworks/metro_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/metro_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/metro_client.cpp.o.d"
  "/root/repo/src/frameworks/metro_server.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/metro_server.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/metro_server.cpp.o.d"
  "/root/repo/src/frameworks/registry.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/registry.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/registry.cpp.o.d"
  "/root/repo/src/frameworks/server.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/server.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/server.cpp.o.d"
  "/root/repo/src/frameworks/service.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/service.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/service.cpp.o.d"
  "/root/repo/src/frameworks/suds_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/suds_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/suds_client.cpp.o.d"
  "/root/repo/src/frameworks/wcf_server.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/wcf_server.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/wcf_server.cpp.o.d"
  "/root/repo/src/frameworks/wsdl_builder.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/wsdl_builder.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/wsdl_builder.cpp.o.d"
  "/root/repo/src/frameworks/zend_client.cpp" "src/frameworks/CMakeFiles/wsx_frameworks.dir/zend_client.cpp.o" "gcc" "src/frameworks/CMakeFiles/wsx_frameworks.dir/zend_client.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/wsx_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsx_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsx_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsi/CMakeFiles/wsx_wsi.dir/DependInfo.cmake"
  "/root/repo/build/src/codemodel/CMakeFiles/wsx_codemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/compilers/CMakeFiles/wsx_compilers.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/wsx_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
