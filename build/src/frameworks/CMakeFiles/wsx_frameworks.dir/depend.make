# Empty dependencies file for wsx_frameworks.
# This may be replaced when dependencies are built.
