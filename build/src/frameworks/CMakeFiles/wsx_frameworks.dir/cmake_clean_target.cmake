file(REMOVE_RECURSE
  "libwsx_frameworks.a"
)
