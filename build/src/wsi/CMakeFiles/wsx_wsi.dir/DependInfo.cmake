
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wsi/assertions.cpp" "src/wsi/CMakeFiles/wsx_wsi.dir/assertions.cpp.o" "gcc" "src/wsi/CMakeFiles/wsx_wsi.dir/assertions.cpp.o.d"
  "/root/repo/src/wsi/profile.cpp" "src/wsi/CMakeFiles/wsx_wsi.dir/profile.cpp.o" "gcc" "src/wsi/CMakeFiles/wsx_wsi.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/wsx_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsx_wsdl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
