file(REMOVE_RECURSE
  "libwsx_wsi.a"
)
