# Empty dependencies file for wsx_wsi.
# This may be replaced when dependencies are built.
