file(REMOVE_RECURSE
  "CMakeFiles/wsx_wsi.dir/assertions.cpp.o"
  "CMakeFiles/wsx_wsi.dir/assertions.cpp.o.d"
  "CMakeFiles/wsx_wsi.dir/profile.cpp.o"
  "CMakeFiles/wsx_wsi.dir/profile.cpp.o.d"
  "libwsx_wsi.a"
  "libwsx_wsi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_wsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
