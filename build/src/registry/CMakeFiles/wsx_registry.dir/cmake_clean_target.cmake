file(REMOVE_RECURSE
  "libwsx_registry.a"
)
