# Empty compiler generated dependencies file for wsx_registry.
# This may be replaced when dependencies are built.
