file(REMOVE_RECURSE
  "CMakeFiles/wsx_registry.dir/registry.cpp.o"
  "CMakeFiles/wsx_registry.dir/registry.cpp.o.d"
  "libwsx_registry.a"
  "libwsx_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
