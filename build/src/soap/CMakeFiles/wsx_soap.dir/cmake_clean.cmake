file(REMOVE_RECURSE
  "CMakeFiles/wsx_soap.dir/envelope.cpp.o"
  "CMakeFiles/wsx_soap.dir/envelope.cpp.o.d"
  "CMakeFiles/wsx_soap.dir/http.cpp.o"
  "CMakeFiles/wsx_soap.dir/http.cpp.o.d"
  "CMakeFiles/wsx_soap.dir/message.cpp.o"
  "CMakeFiles/wsx_soap.dir/message.cpp.o.d"
  "CMakeFiles/wsx_soap.dir/validate.cpp.o"
  "CMakeFiles/wsx_soap.dir/validate.cpp.o.d"
  "libwsx_soap.a"
  "libwsx_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsx_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
