file(REMOVE_RECURSE
  "libwsx_soap.a"
)
