# Empty compiler generated dependencies file for wsx_soap.
# This may be replaced when dependencies are built.
