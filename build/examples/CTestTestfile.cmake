# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interop_matrix "/root/repo/build/examples/interop_matrix")
set_tests_properties(example_interop_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wsi_lint "/root/repo/build/examples/wsi_lint")
set_tests_properties(example_wsi_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_framework "/root/repo/build/examples/custom_framework")
set_tests_properties(example_custom_framework PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soap_roundtrip "/root/repo/build/examples/soap_roundtrip")
set_tests_properties(example_soap_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fuzz_driver "/root/repo/build/examples/fuzz_driver")
set_tests_properties(example_fuzz_driver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regression_watch "/root/repo/build/examples/regression_watch")
set_tests_properties(example_regression_watch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_service_marketplace "/root/repo/build/examples/service_marketplace")
set_tests_properties(example_service_marketplace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
