# Empty compiler generated dependencies file for service_marketplace.
# This may be replaced when dependencies are built.
