file(REMOVE_RECURSE
  "CMakeFiles/service_marketplace.dir/service_marketplace.cpp.o"
  "CMakeFiles/service_marketplace.dir/service_marketplace.cpp.o.d"
  "service_marketplace"
  "service_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
