file(REMOVE_RECURSE
  "CMakeFiles/custom_framework.dir/custom_framework.cpp.o"
  "CMakeFiles/custom_framework.dir/custom_framework.cpp.o.d"
  "custom_framework"
  "custom_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
