# Empty dependencies file for custom_framework.
# This may be replaced when dependencies are built.
