file(REMOVE_RECURSE
  "CMakeFiles/wsi_lint.dir/wsi_lint.cpp.o"
  "CMakeFiles/wsi_lint.dir/wsi_lint.cpp.o.d"
  "wsi_lint"
  "wsi_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsi_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
