# Empty compiler generated dependencies file for wsi_lint.
# This may be replaced when dependencies are built.
