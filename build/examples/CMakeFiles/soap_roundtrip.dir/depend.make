# Empty dependencies file for soap_roundtrip.
# This may be replaced when dependencies are built.
