file(REMOVE_RECURSE
  "CMakeFiles/soap_roundtrip.dir/soap_roundtrip.cpp.o"
  "CMakeFiles/soap_roundtrip.dir/soap_roundtrip.cpp.o.d"
  "soap_roundtrip"
  "soap_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
