# Empty compiler generated dependencies file for regression_watch.
# This may be replaced when dependencies are built.
