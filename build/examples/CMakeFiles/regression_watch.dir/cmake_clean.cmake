file(REMOVE_RECURSE
  "CMakeFiles/regression_watch.dir/regression_watch.cpp.o"
  "CMakeFiles/regression_watch.dir/regression_watch.cpp.o.d"
  "regression_watch"
  "regression_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
