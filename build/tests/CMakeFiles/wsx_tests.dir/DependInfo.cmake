
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/binding_customization_test.cpp" "tests/CMakeFiles/wsx_tests.dir/binding_customization_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/binding_customization_test.cpp.o.d"
  "/root/repo/tests/catalog_test.cpp" "tests/CMakeFiles/wsx_tests.dir/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/catalog_test.cpp.o.d"
  "/root/repo/tests/client_policy_matrix_test.cpp" "tests/CMakeFiles/wsx_tests.dir/client_policy_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/client_policy_matrix_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/wsx_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/communication_test.cpp" "tests/CMakeFiles/wsx_tests.dir/communication_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/communication_test.cpp.o.d"
  "/root/repo/tests/compilers_test.cpp" "tests/CMakeFiles/wsx_tests.dir/compilers_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/compilers_test.cpp.o.d"
  "/root/repo/tests/crud_services_test.cpp" "tests/CMakeFiles/wsx_tests.dir/crud_services_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/crud_services_test.cpp.o.d"
  "/root/repo/tests/faults_and_formats_test.cpp" "tests/CMakeFiles/wsx_tests.dir/faults_and_formats_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/faults_and_formats_test.cpp.o.d"
  "/root/repo/tests/frameworks_client_test.cpp" "tests/CMakeFiles/wsx_tests.dir/frameworks_client_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/frameworks_client_test.cpp.o.d"
  "/root/repo/tests/frameworks_server_test.cpp" "tests/CMakeFiles/wsx_tests.dir/frameworks_server_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/frameworks_server_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/wsx_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/import_store_test.cpp" "tests/CMakeFiles/wsx_tests.dir/import_store_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/import_store_test.cpp.o.d"
  "/root/repo/tests/interop_study_test.cpp" "tests/CMakeFiles/wsx_tests.dir/interop_study_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/interop_study_test.cpp.o.d"
  "/root/repo/tests/persistence_test.cpp" "tests/CMakeFiles/wsx_tests.dir/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/persistence_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/wsx_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/registry_test.cpp" "tests/CMakeFiles/wsx_tests.dir/registry_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/registry_test.cpp.o.d"
  "/root/repo/tests/render_test.cpp" "tests/CMakeFiles/wsx_tests.dir/render_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/render_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/wsx_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/reproduction_test.cpp" "tests/CMakeFiles/wsx_tests.dir/reproduction_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/reproduction_test.cpp.o.d"
  "/root/repo/tests/rpc_style_test.cpp" "tests/CMakeFiles/wsx_tests.dir/rpc_style_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/rpc_style_test.cpp.o.d"
  "/root/repo/tests/scorecard_test.cpp" "tests/CMakeFiles/wsx_tests.dir/scorecard_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/scorecard_test.cpp.o.d"
  "/root/repo/tests/soap12_test.cpp" "tests/CMakeFiles/wsx_tests.dir/soap12_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/soap12_test.cpp.o.d"
  "/root/repo/tests/soap_test.cpp" "tests/CMakeFiles/wsx_tests.dir/soap_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/soap_test.cpp.o.d"
  "/root/repo/tests/strings_test.cpp" "tests/CMakeFiles/wsx_tests.dir/strings_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/strings_test.cpp.o.d"
  "/root/repo/tests/structured_payload_test.cpp" "tests/CMakeFiles/wsx_tests.dir/structured_payload_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/structured_payload_test.cpp.o.d"
  "/root/repo/tests/validate_and_log_test.cpp" "tests/CMakeFiles/wsx_tests.dir/validate_and_log_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/validate_and_log_test.cpp.o.d"
  "/root/repo/tests/wsdl_test.cpp" "tests/CMakeFiles/wsx_tests.dir/wsdl_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/wsdl_test.cpp.o.d"
  "/root/repo/tests/wsi_test.cpp" "tests/CMakeFiles/wsx_tests.dir/wsi_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/wsi_test.cpp.o.d"
  "/root/repo/tests/xml_parser_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xml_parser_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xml_parser_test.cpp.o.d"
  "/root/repo/tests/xml_query_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xml_query_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xml_query_test.cpp.o.d"
  "/root/repo/tests/xsd_derivation_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xsd_derivation_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xsd_derivation_test.cpp.o.d"
  "/root/repo/tests/xsd_resolver_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xsd_resolver_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xsd_resolver_test.cpp.o.d"
  "/root/repo/tests/xsd_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xsd_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xsd_test.cpp.o.d"
  "/root/repo/tests/xsd_values_test.cpp" "tests/CMakeFiles/wsx_tests.dir/xsd_values_test.cpp.o" "gcc" "tests/CMakeFiles/wsx_tests.dir/xsd_values_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/wsx_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsx_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsx_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsi/CMakeFiles/wsx_wsi.dir/DependInfo.cmake"
  "/root/repo/build/src/codemodel/CMakeFiles/wsx_codemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/compilers/CMakeFiles/wsx_compilers.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/wsx_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/wsx_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/interop/CMakeFiles/wsx_interop.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/wsx_fuzz.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/wsx_registry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
