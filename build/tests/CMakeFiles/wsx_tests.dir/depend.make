# Empty dependencies file for wsx_tests.
# This may be replaced when dependencies are built.
