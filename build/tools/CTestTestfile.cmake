# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/wsinterop" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_describe "/root/repo/build/tools/wsinterop" "describe" "Metro 2.3" "java.text.SimpleDateFormat")
set_tests_properties(cli_describe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_test_pair "/root/repo/build/tools/wsinterop" "test" "Metro 2.3" "javax.xml.ws.wsaddressing.W3CEndpointReference" "Oracle Metro 2.3")
set_tests_properties(cli_test_pair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fuzz "/root/repo/build/tools/wsinterop" "fuzz" "--corpus" "1")
set_tests_properties(cli_fuzz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/wsinterop")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_server "/root/repo/build/tools/wsinterop" "describe" "NoSuchServer" "x.Y")
set_tests_properties(cli_unknown_server PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
