file(REMOVE_RECURSE
  "CMakeFiles/wsinterop.dir/wsinterop_cli.cpp.o"
  "CMakeFiles/wsinterop.dir/wsinterop_cli.cpp.o.d"
  "wsinterop"
  "wsinterop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsinterop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
