# Empty dependencies file for wsinterop.
# This may be replaced when dependencies are built.
