# Empty compiler generated dependencies file for bench_failure_catalog.
# This may be replaced when dependencies are built.
