file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_catalog.dir/bench_failure_catalog.cpp.o"
  "CMakeFiles/bench_failure_catalog.dir/bench_failure_catalog.cpp.o.d"
  "bench_failure_catalog"
  "bench_failure_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
