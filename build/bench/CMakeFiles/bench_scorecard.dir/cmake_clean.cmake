file(REMOVE_RECURSE
  "CMakeFiles/bench_scorecard.dir/bench_scorecard.cpp.o"
  "CMakeFiles/bench_scorecard.dir/bench_scorecard.cpp.o.d"
  "bench_scorecard"
  "bench_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
