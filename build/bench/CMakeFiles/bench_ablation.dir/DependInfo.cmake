
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wsx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/wsx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xsd/CMakeFiles/wsx_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/wsx_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/wsx_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsi/CMakeFiles/wsx_wsi.dir/DependInfo.cmake"
  "/root/repo/build/src/codemodel/CMakeFiles/wsx_codemodel.dir/DependInfo.cmake"
  "/root/repo/build/src/compilers/CMakeFiles/wsx_compilers.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/wsx_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/wsx_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/interop/CMakeFiles/wsx_interop.dir/DependInfo.cmake"
  "/root/repo/build/src/fuzz/CMakeFiles/wsx_fuzz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
