file(REMOVE_RECURSE
  "CMakeFiles/bench_fuzz.dir/bench_fuzz.cpp.o"
  "CMakeFiles/bench_fuzz.dir/bench_fuzz.cpp.o.d"
  "bench_fuzz"
  "bench_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
