# Empty dependencies file for bench_fuzz.
# This may be replaced when dependencies are built.
