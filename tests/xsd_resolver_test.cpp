// Unit tests for schema reference resolution (src/xsd/resolver.*) — the
// substrate behind the paper's s:schema / s:lang / wsa-reference failures.
#include <gtest/gtest.h>

#include "xsd/resolver.hpp"

namespace wsx::xsd {
namespace {

Schema base_schema() {
  Schema schema;
  schema.target_namespace = "urn:svc";
  ComplexType type;
  type.name = "Payload";
  ElementDecl field;
  field.name = "value";
  field.type = qname(Builtin::kString);
  type.particles.emplace_back(std::move(field));
  schema.complex_types.push_back(std::move(type));
  return schema;
}

TEST(Resolver, CleanSchemaResolves) {
  const ResolutionReport report = resolve({base_schema()});
  EXPECT_TRUE(report.clean());
}

TEST(Resolver, BuiltinTypesResolve) {
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "stamp";
  element.type = qname(Builtin::kDateTime);
  schema.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, LocalTypeReferencesResolve) {
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "self";
  element.type = xml::QName{"urn:svc", "Payload"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, SimpleTypeReferencesResolve) {
  Schema schema = base_schema();
  SimpleTypeDecl color;
  color.name = "Color";
  color.base = qname(Builtin::kString);
  color.enumeration = {"R"};
  schema.simple_types.push_back(color);
  ElementDecl element;
  element.name = "tint";
  element.type = xml::QName{"urn:svc", "Color"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, UnknownForeignNamespaceTypeRefIsUnresolved) {
  // The Metro W3CEndpointReference shape: a type= into a namespace that is
  // declared but never imported.
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "address";
  element.type = xml::QName{std::string(xml::ns::kWsAddressing), "EndpointReferenceType"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kTypeRef);
  EXPECT_TRUE(report.has_unresolved(RefKind::kTypeRef));
}

TEST(Resolver, ImportWithLocationVouchesForNamespace) {
  Schema schema = base_schema();
  schema.imports.push_back({std::string(xml::ns::kWsAddressing), "wsa.xsd"});
  ElementDecl element;
  element.name = "address";
  element.type = xml::QName{std::string(xml::ns::kWsAddressing), "EndpointReferenceType"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, ExternalNamespacesParameterVouches) {
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "address";
  element.type = xml::QName{"urn:vouched", "Thing"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_FALSE(resolve({schema}).clean());
  EXPECT_TRUE(resolve({schema}, {"urn:vouched"}).clean());
}

TEST(Resolver, MissRemainsUnresolvedInsideLocalNamespace) {
  // A reference into the schema's *own* namespace must actually exist —
  // an import cannot vouch for the inline namespace.
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "ghost";
  element.type = xml::QName{"urn:svc", "Missing"};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
}

TEST(Resolver, SchemaElementRefIsUnresolved) {
  // The WCF DataSet idiom: <xs:element ref="s:schema"/>.
  Schema schema = base_schema();
  ElementDecl ref;
  ref.ref = xml::QName{std::string(xml::ns::kXsd), "schema", "s"};
  schema.complex_types.front().particles.emplace_back(std::move(ref));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kElementRef);
  EXPECT_EQ(report.unresolved.front().target.local_name(), "schema");
}

TEST(Resolver, LocalElementRefResolves) {
  Schema schema = base_schema();
  ElementDecl top;
  top.name = "payload";
  top.type = xml::QName{"urn:svc", "Payload"};
  schema.elements.push_back(top);
  ElementDecl ref;
  ref.ref = xml::QName{"urn:svc", "payload"};
  schema.complex_types.front().particles.emplace_back(std::move(ref));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, XsdLangAttributeRefIsUnresolved) {
  // The "s:lang" idiom: an attribute ref into the XML *Schema* namespace.
  Schema schema = base_schema();
  AttributeDecl lang;
  lang.ref = xml::QName{std::string(xml::ns::kXsd), "lang", "s"};
  schema.complex_types.front().attributes.push_back(std::move(lang));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kAttributeRef);
}

TEST(Resolver, XmlLangAttributeRefResolves) {
  // xml:lang is predeclared by the XML namespace itself.
  Schema schema = base_schema();
  AttributeDecl lang;
  lang.ref = xml::QName{std::string(xml::ns::kXmlNs), "lang", "xml"};
  schema.complex_types.front().attributes.push_back(std::move(lang));
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, ForeignAttributeRefIsUnresolved) {
  // The JBossWS W3CEndpointReference shape.
  Schema schema = base_schema();
  AttributeDecl attr;
  attr.ref = xml::QName{std::string(xml::ns::kWsAddressing), "IsReferenceParameter", "wsa"};
  schema.complex_types.front().attributes.push_back(std::move(attr));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kAttributeRef);
}

TEST(Resolver, AttributeGroupWithoutLocationIsUnresolved) {
  // The JAXB xml:specialAttrs idiom: import without a schemaLocation.
  Schema schema = base_schema();
  schema.imports.push_back({std::string(xml::ns::kXmlNs), ""});
  schema.complex_types.front().attribute_groups.push_back(
      {xml::QName{std::string(xml::ns::kXmlNs), "specialAttrs", "xml"}});
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kAttributeGroupRef);
}

TEST(Resolver, AttributeGroupWithLocationResolves) {
  Schema schema = base_schema();
  schema.imports.push_back({std::string(xml::ns::kXmlNs), "xml.xsd"});
  schema.complex_types.front().attribute_groups.push_back(
      {xml::QName{std::string(xml::ns::kXmlNs), "specialAttrs", "xml"}});
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Resolver, UndeclaredPrefixIsFlagged) {
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "x";
  element.type = xml::QName{"", "Ghost", "ghost"};  // prefix never declared
  schema.complex_types.front().particles.emplace_back(std::move(element));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_TRUE(report.unresolved.front().undeclared_prefix);
}

TEST(Resolver, DualTypeDeclarationIsAValidityIssue) {
  Schema schema = base_schema();
  ElementDecl element;
  element.name = "pattern";
  element.type = qname(Builtin::kString);
  element.inline_type = Box<ComplexType>{ComplexType{}};
  schema.complex_types.front().particles.emplace_back(std::move(element));
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues.front().code, "xsd.dual-type-declaration");
}

TEST(Resolver, UnnamedTopLevelElementIsAValidityIssue) {
  Schema schema = base_schema();
  schema.elements.push_back(ElementDecl{});  // no name, no ref
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues.front().code, "xsd.unnamed-top-level-element");
}

TEST(Resolver, ChecksNestedInlineTypes) {
  Schema schema = base_schema();
  ComplexType inner;
  ElementDecl bad;
  bad.name = "deep";
  bad.type = xml::QName{"urn:unknown", "T"};
  inner.particles.emplace_back(std::move(bad));
  ElementDecl holder;
  holder.name = "holder";
  holder.inline_type = Box<ComplexType>{std::move(inner)};
  schema.complex_types.front().particles.emplace_back(std::move(holder));
  EXPECT_FALSE(resolve({schema}).clean());
}

TEST(Resolver, CrossSchemaReferencesResolve) {
  Schema a = base_schema();
  Schema b;
  b.target_namespace = "urn:other";
  ComplexType type;
  type.name = "Remote";
  b.complex_types.push_back(type);
  ElementDecl element;
  element.name = "r";
  element.type = xml::QName{"urn:other", "Remote"};
  a.complex_types.front().particles.emplace_back(std::move(element));
  EXPECT_TRUE(resolve({a, b}).clean());
}

TEST(Resolver, RefKindNames) {
  EXPECT_STREQ(to_string(RefKind::kTypeRef), "type reference");
  EXPECT_STREQ(to_string(RefKind::kElementRef), "element reference");
  EXPECT_STREQ(to_string(RefKind::kAttributeRef), "attribute reference");
  EXPECT_STREQ(to_string(RefKind::kAttributeGroupRef), "attributeGroup reference");
}

}  // namespace
}  // namespace wsx::xsd
