// Thread-safety of the streaming envelope path (runs under TSan via the
// tier1-concurrency label): tokenizers and their arenas are
// per-parse-local, so parallel envelope parsing and validation across a
// worker pool must be race-free and must produce exactly the sequential
// results. The --no-stream toggle itself is an atomic and safe to read
// concurrently.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/pool.hpp"
#include "soap/envelope.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

std::vector<std::string> corpus_texts() {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  std::vector<std::string> texts;
  for (int i = 0; i < 64; ++i) {
    Result<soap::Envelope> request = soap::build_request(
        defs, "echo", {{"arg0", "payload-" + std::to_string(i) + " & <more>"}});
    texts.push_back(soap::write(*request));
  }
  // A few rejects in the mix so error paths run concurrently too.
  texts.push_back("<root/>");
  texts.push_back("<a><b></a>");
  texts.push_back("");
  texts.push_back(soap::write(soap::Envelope::make_fault(
      soap::Fault{"soap:Server", "concurrent boom", "d"})));
  return texts;
}

/// Digest of one text: parse verdict + serialized model + sniffer verdict.
std::string digest(const wsdl::Definitions& defs, const std::string& text) {
  Result<soap::Envelope> envelope = soap::parse(text);
  std::string out = envelope.ok() ? "ok:" + soap::write(*envelope)
                                  : "err:" + envelope.error().code;
  Result<std::vector<soap::ValidationIssue>> issues =
      soap::validate_request_text(defs, text);
  if (issues.ok()) {
    out += "|issues:";
    for (const soap::ValidationIssue& issue : issues.value()) out += issue.code + ",";
  } else {
    out += "|" + issues.error().code;
  }
  return out;
}

TEST(StreamConcurrency, ParallelParsingMatchesSequential) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const std::vector<std::string> texts = corpus_texts();

  std::vector<std::string> sequential;
  for (const std::string& text : texts) sequential.push_back(digest(defs, text));

  for (int round = 0; round < 4; ++round) {
    std::vector<std::vector<std::string>> slices = parallel_slices(
        texts.size(), 8, [&](std::size_t begin, std::size_t end) {
          std::vector<std::string> out;
          for (std::size_t i = begin; i < end; ++i) out.push_back(digest(defs, texts[i]));
          return out;
        });
    std::vector<std::string> parallel;
    for (std::vector<std::string>& slice : slices) {
      for (std::string& one : slice) parallel.push_back(std::move(one));
    }
    ASSERT_EQ(parallel, sequential) << "round " << round;
  }
}

TEST(StreamConcurrency, StreamingToggleIsSafeToReadConcurrently) {
  // Readers parse while one slice flips the toggle: every parse must still
  // produce a valid verdict (one of the two paths' identical answers), and
  // TSan must see no race on the flag.
  const std::vector<std::string> texts = corpus_texts();
  std::vector<int> oks = {0};
  std::vector<std::vector<int>> counts = parallel_slices(
      16, 8, [&](std::size_t begin, std::size_t end) {
        std::vector<int> ok_count{0};
        for (std::size_t task = begin; task < end; ++task) {
          if (task == 0) {
            soap::set_streaming(false);
            soap::set_streaming(true);
            continue;
          }
          for (const std::string& text : texts) {
            if (soap::parse(text).ok()) ++ok_count[0];
          }
        }
        return ok_count;
      });
  soap::set_streaming(true);
  int total = 0;
  for (const std::vector<int>& slice : counts) total += slice.empty() ? 0 : slice[0];
  // 65 of the 68 corpus texts parse (64 requests + the fault envelope make
  // 65; the three rejects fail) — ok-counts must reflect only those.
  EXPECT_EQ(total % 65, 0);
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace wsx
