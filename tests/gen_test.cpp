// Tests for the generator core (src/gen): the deterministic PRNG, the
// per-type value generators and their round-trip agreement with the XSD
// validators, the pattern-lite engine behind xs:pattern facets, bounded
// recursive instance generation, corpus determinism, and the shrinker's
// invariants (still fails, never larger, locally minimal, terminates).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gen/request_gen.hpp"
#include "gen/rng.hpp"
#include "gen/shrink.hpp"
#include "gen/value_gen.hpp"
#include "test_helpers.hpp"
#include "xsd/pattern.hpp"
#include "xsd/values.hpp"

namespace wsx::gen {
namespace {

const std::vector<xsd::Builtin>& all_builtins() {
  static const std::vector<xsd::Builtin> types = {
      xsd::Builtin::kString,       xsd::Builtin::kBoolean,
      xsd::Builtin::kByte,         xsd::Builtin::kShort,
      xsd::Builtin::kInt,          xsd::Builtin::kLong,
      xsd::Builtin::kUnsignedByte, xsd::Builtin::kUnsignedShort,
      xsd::Builtin::kUnsignedInt,  xsd::Builtin::kUnsignedLong,
      xsd::Builtin::kFloat,        xsd::Builtin::kDouble,
      xsd::Builtin::kDecimal,      xsd::Builtin::kInteger,
      xsd::Builtin::kDateTime,     xsd::Builtin::kDate,
      xsd::Builtin::kTime,         xsd::Builtin::kDuration,
      xsd::Builtin::kBase64Binary, xsd::Builtin::kHexBinary,
      xsd::Builtin::kAnyUri,       xsd::Builtin::kQNameType,
  };
  return types;
}

// ----------------------------------------------------------------------- rng

TEST(Rng, StreamIdentityDecidesTheSequence) {
  Rng a(7, "gen|S|op|0");
  Rng b(7, "gen|S|op|0");
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentStreamsDiverge) {
  Rng a(7, "gen|S|op|0");
  Rng b(7, "gen|S|op|1");
  bool differs = false;
  for (int i = 0; i < 8 && !differs; ++i) differs = a.next() != b.next();
  EXPECT_TRUE(differs);
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7, "gen|S|op|0");
  Rng b(8, "gen|S|op|0");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowStaysInBoundAndHandlesZero) {
  Rng rng(1, "bounds");
  for (int i = 0; i < 256; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(0), 0u);
}

// ------------------------------------------------------------------- values

TEST(ValueGen, EveryEdgeValueIsLexicallyValid) {
  for (const xsd::Builtin type : all_builtins()) {
    for (const std::string& edge : edge_values(type)) {
      EXPECT_TRUE(xsd::is_valid_value(type, edge))
          << xsd::local_name(type) << " edge '" << edge << "'";
    }
  }
}

TEST(ValueGen, GeneratorAndValidatorAgreeOnEveryBuiltin) {
  // The round-trip property: whatever the generator emits, the validator
  // accepts — across many seeds so both edge picks and random members run.
  for (const xsd::Builtin type : all_builtins()) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      Rng rng(seed, xsd::local_name(type));
      const std::string value = generate_value(type, rng);
      EXPECT_TRUE(xsd::is_valid_value(type, value))
          << xsd::local_name(type) << " seed " << seed << " value '" << value << "'";
    }
  }
}

TEST(ValueGen, SabotageEmitsInvalidValuesForConstrainedTypes) {
  for (const xsd::Builtin type : all_builtins()) {
    if (type == xsd::Builtin::kString || type == xsd::Builtin::kAnyUri) continue;
    Rng rng(7, "sabotage");
    const std::string value = sabotage_value(type, rng);
    EXPECT_FALSE(xsd::is_valid_value(type, value))
        << xsd::local_name(type) << " sabotage '" << value << "'";
  }
}

TEST(ValueGen, EnumerationFacetRestrictsTheDraw) {
  xsd::SimpleTypeDecl type;
  type.name = "Level";
  type.base = xsd::qname(xsd::Builtin::kString);
  type.enumeration = {"LOW", "MEDIUM", "HIGH"};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed, "enum");
    const std::string value = generate_value(type, rng);
    EXPECT_TRUE(xsd::is_valid_value(type, value)) << "'" << value << "'";
  }
  Rng rng(7, "enum-sabotage");
  EXPECT_FALSE(xsd::is_valid_value(type, sabotage_value(type, rng)));
}

TEST(ValueGen, LengthFacetsBoundGeneratedStrings) {
  xsd::SimpleTypeDecl type;
  type.name = "Code";
  type.base = xsd::qname(xsd::Builtin::kString);
  type.min_length = 3;
  type.max_length = 5;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed, "len");
    const std::string value = generate_value(type, rng);
    EXPECT_GE(value.size(), 3u) << "'" << value << "'";
    EXPECT_LE(value.size(), 5u) << "'" << value << "'";
    EXPECT_TRUE(xsd::is_valid_value(type, value));
  }
}

TEST(ValueGen, TotalDigitsFacetHolds) {
  xsd::SimpleTypeDecl type;
  type.name = "Pin";
  type.base = xsd::qname(xsd::Builtin::kInt);
  type.total_digits = 3;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed, "digits");
    const std::string value = generate_value(type, rng);
    EXPECT_TRUE(xsd::is_valid_value(type, value)) << "'" << value << "'";
  }
}

TEST(ValueGen, PatternFacetGuidesGeneration) {
  xsd::SimpleTypeDecl type;
  type.name = "Sku";
  type.base = xsd::qname(xsd::Builtin::kString);
  type.pattern = "[A-Z]{2}\\d{3}";
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed, "pattern");
    const std::string value = generate_value(type, rng);
    EXPECT_TRUE(xsd::is_valid_value(type, value)) << "'" << value << "'";
  }
}

// ------------------------------------------------------------- pattern-lite

TEST(PatternLite, LiteralsClassesAndQuantifiers) {
  const auto matches = [](std::string_view pattern, std::string_view value) {
    const std::optional<xsd::Pattern> parsed = xsd::parse_pattern(pattern);
    return parsed.has_value() && xsd::pattern_matches(*parsed, value);
  };
  EXPECT_TRUE(matches("abc", "abc"));
  EXPECT_FALSE(matches("abc", "abd"));
  EXPECT_FALSE(matches("abc", "abcd"));  // anchored both ends, like XSD
  EXPECT_TRUE(matches("[A-Z]{2}\\d{3}", "AB123"));
  EXPECT_FALSE(matches("[A-Z]{2}\\d{3}", "ab123"));
  EXPECT_TRUE(matches("a*b+c?", "bbb"));
  EXPECT_TRUE(matches("a*b+c?", "aabc"));
  EXPECT_FALSE(matches("a*b+c?", "aa"));
  EXPECT_TRUE(matches("[^0-9]+", "abc"));
  EXPECT_FALSE(matches("[^0-9]+", "a1c"));
  EXPECT_TRUE(matches("\\w+\\s\\w+", "one two"));
  EXPECT_TRUE(matches("a{2,}", "aaaa"));
  EXPECT_FALSE(matches("a{2,3}", "aaaa"));
  EXPECT_TRUE(matches(".{3}", "x!z"));
}

TEST(PatternLite, UnsupportedConstructsAreRejectedNotMisparsed) {
  EXPECT_FALSE(xsd::parse_pattern("(ab)+").has_value());
  EXPECT_FALSE(xsd::parse_pattern("a|b").has_value());
  EXPECT_FALSE(xsd::parse_pattern("^a$").has_value());
  EXPECT_FALSE(xsd::parse_pattern("[unterminated").has_value());
  EXPECT_FALSE(xsd::parse_pattern("a{9999999}").has_value());
}

// ------------------------------------------------------- recursive instances

TEST(InstanceGen, RecursionIsDepthBounded) {
  xsd::Schema schema;
  schema.target_namespace = "urn:t";
  xsd::ComplexType node;
  node.name = "Node";
  xsd::ElementDecl value;
  value.name = "value";
  value.type = xsd::qname(xsd::Builtin::kInt);
  node.particles.emplace_back(value);
  xsd::ElementDecl next;
  next.name = "next";
  next.type = xml::QName{"urn:t", "Node"};
  next.min_occurs = 0;
  node.particles.emplace_back(next);
  schema.complex_types.push_back(node);

  Rng rng(7, "instance");
  const xml::Element tree = generate_instance(schema, schema.complex_types.front(),
                                              "root", /*depth=*/3, rng);
  // Count the longest chain of nested "next" elements: never deeper than
  // the requested bound.
  int depth = 0;
  const xml::Element* cursor = &tree;
  while (true) {
    const std::vector<const xml::Element*> nested = cursor->children_named("next");
    if (nested.empty()) break;
    cursor = nested.front();
    ++depth;
  }
  EXPECT_LE(depth, 3);
}

// ----------------------------------------------------------------- corpora

TEST(Corpus, DeterministicAndSeedSensitive) {
  const frameworks::DeployedService service = wsx::testing::deploy_one(
      "Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
  CorpusOptions options;
  options.seed = 7;
  options.cases_per_operation = 4;
  const std::vector<GeneratedCase> first = generate_corpus(service, options);
  const std::vector<GeneratedCase> second = generate_corpus(service, options);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].case_id, second[i].case_id);
    EXPECT_EQ(render_payload(first[i].payload), render_payload(second[i].payload));
  }

  options.seed = 8;
  const std::vector<GeneratedCase> reseeded = generate_corpus(service, options);
  bool differs = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    differs = differs ||
              render_payload(first[i].payload) != render_payload(reseeded[i].payload);
  }
  EXPECT_TRUE(differs);
}

TEST(Corpus, NeverEmitsTheReservedFaultToken) {
  // "!throw" asks the runtime to simulate a server fault; a schema-valid
  // corpus must never trip it by accident. The catalog outlives the loop:
  // deployed specs point into it.
  const catalog::TypeCatalog catalog =
      catalog::make_java_catalog(wsx::testing::small_java_spec());
  const auto server = frameworks::make_server("Metro 2.3");
  for (const wsx::testing::SeededService& seeded :
       wsx::testing::seeded_corpus(*server, catalog, CorpusOptions{})) {
    for (const GeneratedCase& generated : seeded.corpus) {
      EXPECT_NE(generated.payload.value, "!throw") << generated.case_id;
      for (const soap::Argument& field : generated.payload.fields) {
        EXPECT_NE(field.value, "!throw") << generated.case_id;
      }
    }
  }
}

TEST(Corpus, EveryGeneratedCaseValidates) {
  // The acceptance property at unit scope: validity holds for the whole
  // small-population corpus, structured and scalar cases alike.
  std::size_t checked = 0;
  const catalog::TypeCatalog catalog =
      catalog::make_java_catalog(wsx::testing::small_java_spec());
  const auto server = frameworks::make_server("Metro 2.3");
  for (const wsx::testing::SeededService& seeded :
       wsx::testing::seeded_corpus(*server, catalog, CorpusOptions{})) {
    for (const GeneratedCase& generated : seeded.corpus) {
      const std::optional<std::string> violation =
          validate_case(seeded.service, generated);
      EXPECT_FALSE(violation.has_value()) << generated.case_id << ": " << *violation;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50u);
}

// ----------------------------------------------------------------- shrinker

GeneratedCase scalar_case(std::string value) {
  GeneratedCase generated;
  generated.service = "S";
  generated.operation = "echo";
  generated.case_id = "S|echo|0";
  generated.payload.value = std::move(value);
  return generated;
}

TEST(Shrink, FindsTheExactMinimalCounterexample) {
  const CaseFails contains_x = [](const GeneratedCase& candidate) {
    return candidate.payload.value.find('x') != std::string::npos;
  };
  ShrinkStats stats;
  const GeneratedCase minimal =
      shrink_case(scalar_case("large xylophone payload"), contains_x, &stats);
  EXPECT_EQ(minimal.payload.value, "x");
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Shrink, ResultStillFailsAndNeverGrows) {
  const CaseFails long_enough = [](const GeneratedCase& candidate) {
    return candidate.payload.value.size() >= 5;
  };
  const GeneratedCase failing = scalar_case("abcdefghij");
  const GeneratedCase minimal = shrink_case(failing, long_enough);
  EXPECT_TRUE(long_enough(minimal));
  EXPECT_LE(case_size(minimal), case_size(failing));
  EXPECT_EQ(minimal.payload.value.size(), 5u);  // local minimum of the lattice
}

TEST(Shrink, DropsIrrelevantStructuredFields) {
  GeneratedCase generated;
  generated.service = "S";
  generated.operation = "echo";
  generated.case_id = "S|echo|0";
  generated.payload.fields = {{"keep", "bad-value"},
                              {"noise1", "aaaa"},
                              {"noise2", "bbbb"},
                              {"noise3", "cccc"}};
  const CaseFails keep_is_bad = [](const GeneratedCase& candidate) {
    for (const soap::Argument& field : candidate.payload.fields) {
      if (field.name == "keep" && !field.value.empty()) return true;
    }
    return false;
  };
  const GeneratedCase minimal = shrink_case(generated, keep_is_bad);
  ASSERT_EQ(minimal.payload.fields.size(), 1u);
  EXPECT_EQ(minimal.payload.fields.front().name, "keep");
  EXPECT_TRUE(keep_is_bad(minimal));
}

TEST(Shrink, TerminatesOnAlreadyMinimalInput) {
  const CaseFails always = [](const GeneratedCase&) { return true; };
  ShrinkStats stats;
  const GeneratedCase minimal = shrink_case(scalar_case(""), always, &stats);
  EXPECT_TRUE(minimal.payload.value.empty());
  EXPECT_EQ(stats.accepted, 0u);
}

}  // namespace
}  // namespace wsx::gen
