// cache_equivalence_test — the parse-once cache must be invisible in every
// campaign output. Each campaign (study, communication, chaos) runs with
// the cache on and off, at jobs 1 and jobs 8, and must produce:
//   * byte-identical CSV / JSONL artefacts, and
//   * identical deterministic metric exports and span-tree shapes once the
//     cache's own bookkeeping (every "*.parse.*" metric and the
//     "phase:parse" span) is stripped.
// The bookkeeping itself is then checked directly: cache off means zero
// cache hits and one parse per generation gate; cache on means one parse
// per deployed service and a cache hit per test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "chaos/campaign.hpp"
#include "interop/communication.hpp"
#include "interop/persistence.hpp"
#include "interop/report_formats.hpp"
#include "interop/study.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx {
namespace {

/// Small-but-not-tiny populations so 8 workers all get non-empty slices
/// (same sizing rationale as the obs determinism pack).
catalog::JavaCatalogSpec small_java() {
  catalog::JavaCatalogSpec spec;
  spec.plain_beans = 40;
  spec.throwable_clean = 8;
  spec.throwable_raw = 2;
  spec.raw_generic_beans = 4;
  spec.anytype_array_beans = 2;
  spec.no_default_ctor = 12;
  spec.abstract_classes = 6;
  spec.interfaces = 8;
  spec.generic_types = 4;
  return spec;
}

catalog::DotNetCatalogSpec small_dotnet() {
  catalog::DotNetCatalogSpec spec;
  spec.plain_types = 42;
  spec.dataset_plain = 2;
  spec.deep_nesting_clean = 6;
  spec.deep_nesting_pathological = 1;
  spec.non_serializable = 16;
  spec.no_default_ctor = 14;
  spec.generic_types = 8;
  spec.abstract_classes = 5;
  spec.interfaces = 4;
  return spec;
}

/// Drops every line containing `needle` — used to remove the "phase:parse"
/// span from the tree shape before comparing across cache modes.
std::string strip_lines_containing(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(needle) == std::string::npos) out += line + "\n";
  }
  return out;
}

/// Removes the cache's own bookkeeping from a deterministic metric export:
/// every field whose name contains ".parse" ("study.parse.cache_hits",
/// "study.phase.parse_us", ...). Values are either integers or the flat
/// {"count":N,"sum_us":N} histogram entries, so a single-level skip is
/// enough.
std::string strip_parse_fields(const std::string& json) {
  std::string out;
  std::size_t i = 0;
  while (i < json.size()) {
    if (json[i] != '"') {
      out += json[i++];
      continue;
    }
    const std::size_t name_end = json.find('"', i + 1);
    const std::string_view name(json.data() + i + 1, name_end - i - 1);
    if (name.find(".parse") == std::string_view::npos || json[name_end + 1] != ':') {
      out.append(json, i, name_end + 1 - i);
      i = name_end + 1;
      continue;
    }
    std::size_t value_end = name_end + 2;
    if (json[value_end] == '{') {
      value_end = json.find('}', value_end) + 1;
    } else {
      while (value_end < json.size() && json[value_end] != ',' && json[value_end] != '}') {
        ++value_end;
      }
    }
    if (value_end < json.size() && json[value_end] == ',') {
      ++value_end;  // interior field: swallow its trailing comma
    } else if (!out.empty() && out.back() == ',') {
      out.pop_back();  // last field: swallow the comma before it
    }
    i = value_end;
  }
  return out;
}

/// Everything a study run emits that the cache must not change.
struct StudyArtifacts {
  std::string fig4_csv;
  std::string table3_csv;
  std::string snapshot_csv;
  std::vector<std::string> jsonl;  ///< one to_json_line() per test
  std::string metrics;             ///< deterministic export, parse metrics stripped
  std::string shape;               ///< span tree, phase:parse stripped
  std::size_t cache_hits = 0;
  std::size_t wsdl_parses = 0;
  std::size_t tests = 0;
};

StudyArtifacts run_study(bool cache, std::size_t threads) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  interop::StudyConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.threads = threads;
  config.parse_cache = cache;
  config.tracer = &tracer;
  config.metrics = &registry;
  StudyArtifacts out;
  config.observer = [&out](const interop::TestRecord& record) {
    out.jsonl.push_back(interop::to_json_line(record));
  };
  const interop::StudyResult result = interop::run_study(config);
  out.fig4_csv = interop::fig4_csv(result);
  out.table3_csv = interop::table3_csv(result);
  out.snapshot_csv = interop::to_snapshot_csv(result);
  // Observer calls interleave across workers, so the log is order-free:
  // sort before comparing (at jobs 1 the raw order is already stable).
  std::sort(out.jsonl.begin(), out.jsonl.end());
  out.metrics = strip_parse_fields(registry.to_json(obs::Export::kDeterministic));
  out.shape = strip_lines_containing(tracer.shape(), "phase:parse");
  out.cache_hits = static_cast<std::size_t>(registry.counter("study.parse.cache_hits").value());
  out.wsdl_parses =
      static_cast<std::size_t>(registry.counter("study.parse.wsdl_parses").value());
  out.tests = result.total_tests();
  return out;
}

void expect_same_study_outputs(const StudyArtifacts& a, const StudyArtifacts& b) {
  EXPECT_EQ(a.fig4_csv, b.fig4_csv);
  EXPECT_EQ(a.table3_csv, b.table3_csv);
  EXPECT_EQ(a.snapshot_csv, b.snapshot_csv);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.shape, b.shape);
}

TEST(CacheEquivalence, StudyOutputsAreIdenticalWithAndWithoutCache) {
  const StudyArtifacts on1 = run_study(/*cache=*/true, /*threads=*/1);
  const StudyArtifacts off1 = run_study(/*cache=*/false, /*threads=*/1);
  const StudyArtifacts on8 = run_study(/*cache=*/true, /*threads=*/8);
  const StudyArtifacts off8 = run_study(/*cache=*/false, /*threads=*/8);
  expect_same_study_outputs(on1, off1);
  expect_same_study_outputs(on1, on8);
  expect_same_study_outputs(on1, off8);
  // The artefacts are non-trivial.
  EXPECT_GT(on1.tests, 0u);
  EXPECT_FALSE(on1.jsonl.empty());
  EXPECT_NE(on1.metrics.find("study.tests_total"), std::string::npos);
}

TEST(CacheEquivalence, StudyCacheBookkeepingMatchesMode) {
  const StudyArtifacts on = run_study(/*cache=*/true, /*threads=*/8);
  const StudyArtifacts off = run_study(/*cache=*/false, /*threads=*/8);
  // Cache on: one parse per deployed service, one hit per generation gate.
  EXPECT_GT(on.cache_hits, 0u);
  EXPECT_GT(on.wsdl_parses, 0u);
  EXPECT_LT(on.wsdl_parses, on.tests);
  // Cache off: no hits, and at least one parse per test that reaches the
  // generation gate.
  EXPECT_EQ(off.cache_hits, 0u);
  EXPECT_GT(off.wsdl_parses, on.wsdl_parses);
}

/// Communication study: the cache feeds prepare_echo_call instead of the
/// generation gate, but the contract is the same.
struct CommArtifacts {
  std::string csv;
  std::string text;
  std::string metrics;
  std::string shape;

  bool operator==(const CommArtifacts&) const = default;
};

CommArtifacts run_comm(bool cache, std::size_t threads) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  interop::StudyConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.threads = threads;
  config.parse_cache = cache;
  config.tracer = &tracer;
  config.metrics = &registry;
  const interop::CommunicationResult result = interop::run_communication_study(config);
  CommArtifacts out;
  out.csv = interop::communication_csv(result);
  out.text = interop::format_communication(result);
  out.metrics = strip_parse_fields(registry.to_json(obs::Export::kDeterministic));
  out.shape = strip_lines_containing(tracer.shape(), "phase:parse");
  return out;
}

TEST(CacheEquivalence, CommunicationOutputsAreIdenticalWithAndWithoutCache) {
  const CommArtifacts on1 = run_comm(/*cache=*/true, /*threads=*/1);
  const CommArtifacts off1 = run_comm(/*cache=*/false, /*threads=*/1);
  const CommArtifacts on8 = run_comm(/*cache=*/true, /*threads=*/8);
  const CommArtifacts off8 = run_comm(/*cache=*/false, /*threads=*/8);
  EXPECT_EQ(on1, off1);
  EXPECT_EQ(on1, on8);
  EXPECT_EQ(on1, off8);
  EXPECT_NE(on1.csv.find(','), std::string::npos);
}

/// Chaos campaign: the cache feeds the per-pair call chain.
struct ChaosArtifacts {
  std::string csv;
  std::string recovery_json;
  std::string metrics;
  std::string shape;

  bool operator==(const ChaosArtifacts&) const = default;
};

ChaosArtifacts run_chaos(bool cache, std::size_t jobs) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  chaos::ChaosConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.plan.seed = 7;
  config.calls_per_pair = 2;
  config.jobs = jobs;
  config.parse_cache = cache;
  config.tracer = &tracer;
  config.metrics = &registry;
  const chaos::ChaosResult result = chaos::run_chaos_study(config);
  ChaosArtifacts out;
  out.csv = chaos::chaos_csv(result);
  out.recovery_json = chaos::chaos_recovery_json(result);
  out.metrics = strip_parse_fields(registry.to_json(obs::Export::kDeterministic));
  out.shape = strip_lines_containing(tracer.shape(), "phase:parse");
  return out;
}

TEST(CacheEquivalence, ChaosOutputsAreIdenticalWithAndWithoutCache) {
  const ChaosArtifacts on1 = run_chaos(/*cache=*/true, /*jobs=*/1);
  const ChaosArtifacts off1 = run_chaos(/*cache=*/false, /*jobs=*/1);
  const ChaosArtifacts on8 = run_chaos(/*cache=*/true, /*jobs=*/8);
  const ChaosArtifacts off8 = run_chaos(/*cache=*/false, /*jobs=*/8);
  EXPECT_EQ(on1, off1);
  EXPECT_EQ(on1, on8);
  EXPECT_EQ(on1, off8);
  EXPECT_NE(on1.csv.find(','), std::string::npos);
}

}  // namespace
}  // namespace wsx
