// Tests for the static compatibility predictor (src/analysis/predict.*):
// the rule registry covers the client roster, single-service predictions
// reproduce known framework verdicts without running generation, the
// joined corpus pass scores perfectly against the dynamic study it was
// distilled from, and prediction records round-trip through JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/predict.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"

namespace wsx::analysis::predict {
namespace {

/// A small but defect-rich population: every special catalog type (which
/// the specs always include) plus a couple of each bucket.
PredictOptions tiny_options() {
  PredictOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 2;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  java.no_default_ctor = 1;
  java.abstract_classes = 1;
  java.interfaces = 1;
  java.generic_types = 1;
  options.java_spec = java;
  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 2;
  dotnet.dataset_plain = 1;
  dotnet.dataset_duplicated = 1;
  dotnet.encoded_binding = 1;
  dotnet.deep_nesting_clean = 1;
  dotnet.deep_nesting_pathological = 1;
  dotnet.non_serializable = 1;
  dotnet.no_default_ctor = 1;
  dotnet.generic_types = 1;
  dotnet.abstract_classes = 1;
  dotnet.interfaces = 1;
  options.dotnet_spec = dotnet;
  options.jobs = 2;
  options.study_threads = 2;
  return options;
}

TEST(PredictRules, RegistryMatchesClientRoster) {
  const std::vector<ClientModel>& models = client_models();
  const auto clients = frameworks::make_clients();
  ASSERT_EQ(models.size(), clients.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i].client, clients[i]->name());
    EXPECT_EQ(models[i].compiled, clients[i]->requires_compilation()) << models[i].client;
  }
}

TEST(PredictService, UnparsableTextPredictsUniversalGenerationError) {
  const ServicePrediction prediction =
      predict_service(frameworks::SharedDescription::from_text("<not-wsdl"));
  ASSERT_EQ(prediction.clients.size(), client_models().size());
  EXPECT_FALSE(prediction.fingerprint.empty());
  for (const ClientPrediction& client : prediction.clients) {
    EXPECT_TRUE(client.generation.error) << client.client;
    ASSERT_EQ(client.generation.mechanisms.size(), 1u) << client.client;
    EXPECT_EQ(client.generation.mechanisms.front(), "parse-failure");
    EXPECT_FALSE(client.artifacts);
  }
}

TEST(PredictService, ForeignTypeSplitsTheRoster) {
  // W3CEndpointReference references a foreign schema type (§IV.B): every
  // static binding-time tool must fail generation, while gSOAP and Zend
  // consume the description cleanly.
  const auto server = frameworks::make_server("Metro 2.3");
  ASSERT_NE(server, nullptr);
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const catalog::TypeInfo* type =
      catalog.find("javax.xml.ws.wsaddressing.W3CEndpointReference");
  ASSERT_NE(type, nullptr);
  Result<frameworks::DeployedService> deployed =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(deployed.ok()) << deployed.error().message;

  const ServicePrediction prediction =
      predict_service(frameworks::SharedDescription::from_deployed(deployed.value()));
  bool saw_gsoap = false;
  bool saw_metro = false;
  for (const ClientPrediction& client : prediction.clients) {
    if (client.client == "gSOAP Toolkit 2.8.16") {
      saw_gsoap = true;
      EXPECT_FALSE(client.generation.error);
      EXPECT_FALSE(client.compilation.error);
    }
    if (client.client == "Oracle Metro 2.3") {
      saw_metro = true;
      EXPECT_TRUE(client.generation.error);
      EXPECT_NE(std::find(client.generation.mechanisms.begin(),
                          client.generation.mechanisms.end(), "unresolved-type-ref"),
                client.generation.mechanisms.end());
      EXPECT_FALSE(client.artifacts);  // Metro refuses artifacts on error
    }
  }
  EXPECT_TRUE(saw_gsoap);
  EXPECT_TRUE(saw_metro);

  const std::string formatted = format_service_prediction(prediction);
  EXPECT_NE(formatted.find("fingerprint"), std::string::npos);
  EXPECT_NE(formatted.find("unresolved-type-ref"), std::string::npos);
}

TEST(PredictCorpus, JoinedScoresAreExactAgainstTheDynamicStudy) {
  PredictOptions options = tiny_options();
  options.join_study = true;
  const PredictReport report = predict_corpus(options);
  ASSERT_TRUE(report.joined);
  ASSERT_FALSE(report.services.empty());
  ASSERT_EQ(report.clients.size(), client_models().size());

  // The rules are distilled from the very framework models the study runs,
  // so the predictor must agree with the ground truth on every flag. Any
  // mismatch here means a framework model changed without its rule.
  EXPECT_EQ(report.overall.exact_matches, report.overall.tests);
  EXPECT_EQ(report.overall.false_positives, 0u);
  EXPECT_EQ(report.overall.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(report.overall.precision(), 1.0);
  EXPECT_DOUBLE_EQ(report.overall.recall(), 1.0);
  EXPECT_GT(report.overall.true_positives, 0u);  // the corpus does fail somewhere
  for (const ClientScore& client : report.clients) {
    EXPECT_EQ(client.exact_matches, client.tests) << client.client;
  }

  const std::string formatted = format_predict_report(report);
  EXPECT_NE(formatted.find("precision"), std::string::npos);
  EXPECT_NE(formatted.find("overall"), std::string::npos);
}

TEST(PredictCorpus, UnjoinedReportCountsPredictionsOnly) {
  PredictOptions options = tiny_options();
  options.join_study = false;
  const PredictReport report = predict_corpus(options);
  EXPECT_FALSE(report.joined);
  // Score rows exist for shape stability but carry no joined tests.
  for (const ClientScore& client : report.clients) {
    EXPECT_EQ(client.tests, 0u) << client.client;
  }
  EXPECT_EQ(report.servers, 3u);
  EXPECT_GT(report.deploy_refusals, 0u);
  EXPECT_NE(report.summary().find("predicted to fail"), std::string::npos);
}

TEST(PredictRecord, JsonRoundTripsByteIdentically) {
  PredictOptions options = tiny_options();
  options.join_study = false;
  PredictReport report;
  const std::vector<LintJob> jobs = build_predict_corpus(options, report);
  ASSERT_FALSE(jobs.empty());
  for (std::size_t i = 0; i < jobs.size(); i += 7) {  // sample the corpus
    const ServicePredictionRecord record = predict_service_job(jobs[i]);
    const std::string json = record_json(record);
    Result<ServicePredictionRecord> parsed = record_from_json(json);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value(), record) << jobs[i].uri;
    EXPECT_EQ(record_json(parsed.value()), json) << jobs[i].uri;
  }
  EXPECT_FALSE(record_from_json("{}").ok());
  EXPECT_FALSE(record_from_json("nope").ok());
}

}  // namespace
}  // namespace wsx::analysis::predict
