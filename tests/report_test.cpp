// Tests for the textual report builders and the paper-reference helpers
// (src/interop/report.*, paper_reference.hpp).
#include <gtest/gtest.h>

#include "interop/paper_reference.hpp"
#include "interop/report.hpp"

namespace wsx::interop {
namespace {

TEST(PaperReference, ClientNameNormalization) {
  EXPECT_EQ(paper::normalize_client_name(".NET Framework 4.0.30319.17929 (C#)"),
            ".NET (C#)");
  EXPECT_EQ(
      paper::normalize_client_name(".NET Framework 4.0.30319.17929 (Visual Basic .NET)"),
      ".NET (Visual Basic .NET)");
  EXPECT_EQ(paper::normalize_client_name(".NET Framework 4.0.30319.17929 (JScript .NET)"),
            ".NET (JScript .NET)");
  EXPECT_EQ(paper::normalize_client_name("Apache Axis1 1.4"), "Apache Axis1 1.4");
}

TEST(PaperReference, ServerNameNormalization) {
  EXPECT_EQ(paper::normalize_server_name("Metro 2.3"), "Metro");
  EXPECT_EQ(paper::normalize_server_name("JBossWS CXF 4.2.3"), "JBossWS CXF");
  EXPECT_EQ(paper::normalize_server_name("WCF .NET 4.0.30319.17929"), "WCF .NET");
  EXPECT_EQ(paper::normalize_server_name("Other"), "Other");
}

TEST(PaperReference, Fig4RowsSumToHeadlineAggregates) {
  std::size_t generation_warnings = 0;
  std::size_t generation_errors = 0;
  std::size_t compilation_warnings = 0;
  std::size_t compilation_errors = 0;
  std::size_t description_warnings = 0;
  for (const paper::Fig4Row& row : paper::kFig4) {
    description_warnings += row.description_warnings;
    generation_warnings += row.generation_warnings;
    generation_errors += row.generation_errors;
    compilation_warnings += row.compilation_warnings;
    compilation_errors += row.compilation_errors;
  }
  EXPECT_EQ(description_warnings, paper::kDescriptionWarnings);
  EXPECT_EQ(generation_warnings, paper::kGenerationWarnings);
  EXPECT_EQ(generation_errors, paper::kGenerationErrors);
  EXPECT_EQ(compilation_warnings, paper::kCompilationWarnings);
  EXPECT_EQ(compilation_errors, paper::kCompilationErrors);
}

TEST(PaperReference, Table3CellsSumToFig4Rows) {
  for (const paper::Fig4Row& row : paper::kFig4) {
    std::size_t generation_warnings = 0;
    std::size_t generation_errors = 0;
    std::size_t compilation_warnings = 0;
    std::size_t compilation_errors = 0;
    for (const paper::Table3Cell& cell : paper::kTable3) {
      if (cell.server != row.server) continue;
      generation_warnings += cell.generation_warnings;
      generation_errors += cell.generation_errors;
      compilation_warnings += cell.compilation_warnings;
      compilation_errors += cell.compilation_errors;
    }
    EXPECT_EQ(generation_warnings, row.generation_warnings) << row.server;
    EXPECT_EQ(generation_errors, row.generation_errors) << row.server;
    EXPECT_EQ(compilation_warnings, row.compilation_warnings) << row.server;
    EXPECT_EQ(compilation_errors, row.compilation_errors) << row.server;
  }
}

TEST(PaperReference, SamePlatformFailuresDecompose) {
  // 307 = VB(4) + JScript generation(2) + JScript compilation(301) on WCF.
  std::size_t dotnet_on_dotnet = 0;
  for (const paper::Table3Cell& cell : paper::kTable3) {
    if (cell.server != "WCF .NET") continue;
    if (cell.client.rfind(".NET", 0) != 0) continue;
    dotnet_on_dotnet += cell.generation_errors + cell.compilation_errors;
  }
  EXPECT_EQ(dotnet_on_dotnet, paper::kSamePlatformFailures);
}

TEST(StaticTables, TableIListsAllServers) {
  const std::string table = format_table1();
  EXPECT_NE(table.find("GlassFish 4.0"), std::string::npos);
  EXPECT_NE(table.find("JBoss AS 7.2"), std::string::npos);
  EXPECT_NE(table.find("IIS 8.0.8418.0 (Express)"), std::string::npos);
  EXPECT_NE(table.find("Metro 2.3"), std::string::npos);
}

TEST(StaticTables, TableIIListsAllElevenClients) {
  const std::string table = format_table2();
  for (const char* tool : {"wsimport", "wsdl2java", "wsconsume", "wsdl.exe",
                           "wsdl2h.exe and soapcpp2.exe", "Zend_Soap_Client",
                           "suds Python client"}) {
    EXPECT_NE(table.find(tool), std::string::npos) << tool;
  }
  EXPECT_NE(table.find("N/A (instantiation check)"), std::string::npos);
}

}  // namespace
}  // namespace wsx::interop
