// Unit tests for the wsx::analysis lint engine (src/analysis/): the rule
// pack, registry configuration, SARIF 2.1.0 serialization, baseline
// suppression files, and the JSON reader they rely on.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/registry.hpp"
#include "analysis/sarif.hpp"
#include "common/json.hpp"
#include "test_helpers.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"

namespace wsx::analysis {
namespace {

using testing::compliant_echo_definitions;

/// Runs a subset of the built-in pack against a programmatic model.
std::vector<Finding> run_rules(const wsdl::Definitions& defs,
                               std::initializer_list<const char*> only,
                               const wsdl::DocumentStore* store = nullptr,
                               const std::string& root_location = {}) {
  AnalysisInput input;
  input.definitions = &defs;
  input.uri = "echo.wsdl";
  input.store = store;
  input.root_location = root_location;
  RuleConfig config;
  for (const char* id : only) config.only.insert(id);
  return analyze(input, config).findings;
}

// ---------------------------------------------------------------- engine --

TEST(AnalysisEngine, CompliantFixtureIsClean) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  AnalysisInput input;
  input.definitions = &defs;
  input.uri = "echo.wsdl";
  const AnalysisResult result = analyze(input);
  EXPECT_TRUE(result.findings.empty()) << format_findings(result.findings);
  EXPECT_FALSE(result.has_errors());
  EXPECT_EQ(summarize(result.findings), "clean");
}

TEST(AnalysisEngine, BuiltinRegistryHasUniqueIdsInStableOrder) {
  const RuleRegistry& registry = RuleRegistry::builtin();
  ASSERT_GE(registry.rules().size(), 24u);  // 15 BP assertions + WSX pack
  std::set<std::string> ids;
  for (const auto& rule : registry.rules()) {
    EXPECT_TRUE(ids.insert(rule->info().id).second)
        << "duplicate rule id " << rule->info().id;
  }
  // BP assertions come first, lint rules after.
  EXPECT_EQ(registry.rules().front()->info().category, Category::kConformance);
  ASSERT_NE(registry.find("R2102"), nullptr);
  ASSERT_NE(registry.find("WSX1001"), nullptr);
  EXPECT_EQ(registry.find("WSX1001")->info().paper_ref, "§IV.A");
  EXPECT_EQ(registry.find("WSX9999"), nullptr);
}

TEST(AnalysisEngine, RuleConfigControlsSelectionAndSeverity) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.clear();

  AnalysisInput input;
  input.definitions = &defs;
  input.uri = "echo.wsdl";

  // Default: WSX1001 fires as a warning.
  RuleConfig config;
  config.only.insert("WSX1001");
  std::vector<Finding> findings = analyze(input, config).findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().severity, Severity::kWarning);

  // A severity override promotes it to an error.
  config.severity_overrides["WSX1001"] = Severity::kError;
  findings = analyze(input, config).findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().severity, Severity::kError);

  // Disabling wins over `only`.
  config.disabled.insert("WSX1001");
  EXPECT_TRUE(analyze(input, config).findings.empty());
}

TEST(AnalysisEngine, ReporterStampsDocumentUriOntoFindings) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.clear();
  const std::vector<Finding> findings = run_rules(defs, {"WSX1001"});
  ASSERT_EQ(findings.size(), 1u);
  // Programmatic models carry no positions; the document URI still lands.
  EXPECT_EQ(findings.front().location.uri, "echo.wsdl");
  EXPECT_FALSE(findings.front().location.known());
}

TEST(AnalysisEngine, FindingConvertsToDiagnostic) {
  Finding finding;
  finding.rule_id = "WSX1001";
  finding.severity = Severity::kWarning;
  finding.message = "portType 'Idle' declares no operations";
  finding.subject = "Idle";
  finding.location = SourceLocation{"lint.wsdl", 3, 3};
  finding.fixit = "declare at least one wsdl:operation";
  const Diagnostic diagnostic = finding.to_diagnostic();
  EXPECT_EQ(diagnostic.code, "lint.WSX1001");
  EXPECT_EQ(diagnostic.severity, Severity::kWarning);
  EXPECT_EQ(diagnostic.message, finding.message);
  EXPECT_EQ(diagnostic.subject, finding.subject);
  EXPECT_EQ(diagnostic.location, finding.location);
  EXPECT_EQ(diagnostic.fixit, finding.fixit);
}

TEST(AnalysisEngine, FormatFindingsAndSummarize) {
  Finding error;
  error.rule_id = "WSX1007";
  error.severity = Severity::kError;
  error.message = "type '{urn:x}Dup' is declared 2 times";
  error.location = SourceLocation{"doc.wsdl", 3, 1};
  error.fixit = "keep a single declaration per qualified name";
  Finding warning;
  warning.rule_id = "WSX1002";
  warning.severity = Severity::kWarning;
  warning.message = "element 'blob' is typed xs:anyType";
  warning.location.uri = "doc.wsdl";

  const std::string text = format_findings({error, warning});
  EXPECT_NE(text.find("doc.wsdl:3:1: error: [WSX1007] type '{urn:x}Dup' is declared 2 times\n"),
            std::string::npos);
  EXPECT_NE(text.find("    fix: keep a single declaration per qualified name\n"),
            std::string::npos);
  EXPECT_NE(text.find("doc.wsdl: warning: [WSX1002] element 'blob' is typed xs:anyType\n"),
            std::string::npos);

  EXPECT_EQ(summarize({error, warning}), "1 error, 1 warning");
  EXPECT_EQ(summarize({}), "clean");
}

// ------------------------------------------------------------- rule pack --

TEST(LintRules, Wsx1001FlagsEmptyPortType) {
  wsdl::Definitions defs = compliant_echo_definitions();
  EXPECT_TRUE(run_rules(defs, {"WSX1001"}).empty());
  defs.port_types.front().operations.clear();
  const std::vector<Finding> findings = run_rules(defs, {"WSX1001"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().message, "portType 'EchoPort' declares no operations");
  EXPECT_EQ(findings.front().subject, "EchoPort");
  EXPECT_FALSE(findings.front().fixit.empty());
}

TEST(LintRules, Wsx1001FlagsDescriptionWithoutPortTypes) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.clear();
  const std::vector<Finding> findings = run_rules(defs, {"WSX1001"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().message, "no portType declares any operation");
}

TEST(LintRules, Wsx1002FlagsAnyTypedContent) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ComplexType& payload = defs.schemas.front().complex_types.front();
  xsd::ElementDecl blob;
  blob.name = "blob";
  blob.type = xml::QName{std::string(xml::ns::kXsd), "anyType"};
  payload.particles.emplace_back(std::move(blob));
  xsd::AttributeDecl meta;
  meta.name = "meta";
  meta.type = xml::QName{std::string(xml::ns::kXsd), "anySimpleType"};
  payload.attributes.push_back(std::move(meta));

  const std::vector<Finding> findings = run_rules(defs, {"WSX1002"});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("xs:anyType"), std::string::npos);
  EXPECT_EQ(findings[0].subject, "complexType Payload/blob");
  EXPECT_NE(findings[1].message.find("xs:anySimpleType"), std::string::npos);
  EXPECT_EQ(findings[1].subject, "complexType Payload/@meta");
}

TEST(LintRules, Wsx1003FlagsWildcardParticles) {
  wsdl::Definitions defs = compliant_echo_definitions();
  EXPECT_TRUE(run_rules(defs, {"WSX1003"}).empty());
  defs.schemas.front().complex_types.front().particles.emplace_back(xsd::AnyParticle{});
  const std::vector<Finding> findings = run_rules(defs, {"WSX1003"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings.front().message.find("xs:any wildcard"), std::string::npos);
  EXPECT_EQ(findings.front().subject, "complexType Payload");
}

TEST(LintRules, Wsx1004FlagsPlatformCollectionTypes) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::Schema& schema = defs.schemas.front();
  xsd::ComplexType data_set;
  data_set.name = "DataSet";
  schema.complex_types.push_back(std::move(data_set));
  xsd::ElementDecl items;
  items.name = "items";
  items.type = xml::QName{"urn:echo", "Vector"};
  schema.complex_types.front().particles.emplace_back(std::move(items));

  const std::vector<Finding> findings = run_rules(defs, {"WSX1004"});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].subject, "DataSet");
  EXPECT_EQ(findings[1].subject, "Vector");
}

TEST(LintRules, Wsx1005FlagsRequiredRecursionOnly) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ComplexType node;
  node.name = "Node";
  xsd::ElementDecl next;
  next.name = "next";
  next.type = xml::QName{"urn:echo", "Node"};
  node.particles.emplace_back(std::move(next));
  defs.schemas.front().complex_types.push_back(std::move(node));

  std::vector<Finding> findings = run_rules(defs, {"WSX1005"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().subject, "Node");
  EXPECT_NE(findings.front().message.find("recursive"), std::string::npos);

  // An optional edge breaks the cycle…
  auto& particle = defs.schemas.front().complex_types.back().particles.front();
  std::get<xsd::ElementDecl>(particle).min_occurs = 0;
  EXPECT_TRUE(run_rules(defs, {"WSX1005"}).empty());
  // …and so does a nillable one.
  std::get<xsd::ElementDecl>(particle).min_occurs = 1;
  std::get<xsd::ElementDecl>(particle).nillable = true;
  EXPECT_TRUE(run_rules(defs, {"WSX1005"}).empty());
}

TEST(LintRules, Wsx1006FlagsUnusedNamedTypes) {
  wsdl::Definitions defs = compliant_echo_definitions();
  EXPECT_TRUE(run_rules(defs, {"WSX1006"}).empty());  // Payload is referenced
  xsd::ComplexType orphan;
  orphan.name = "Orphan";
  defs.schemas.front().complex_types.push_back(std::move(orphan));
  const std::vector<Finding> findings = run_rules(defs, {"WSX1006"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().severity, Severity::kNote);
  EXPECT_EQ(findings.front().message, "complexType 'Orphan' is never referenced");
}

TEST(LintRules, Wsx1007FlagsDuplicateQualifiedNames) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ComplexType dup;
  dup.name = "Payload";
  defs.schemas.front().complex_types.push_back(std::move(dup));
  const std::vector<Finding> findings = run_rules(defs, {"WSX1007"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().severity, Severity::kError);
  EXPECT_EQ(findings.front().message, "type '{urn:echo}Payload' is declared 2 times");
}

TEST(LintRules, Wsx1010FlagsCrossPortTypeOverloading) {
  wsdl::Definitions defs = compliant_echo_definitions();
  wsdl::PortType second;
  second.name = "EchoPortV2";
  second.operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.port_types.push_back(std::move(second));
  const std::vector<Finding> findings = run_rules(defs, {"WSX1010"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings.front().message.find("2 portTypes"), std::string::npos);
  EXPECT_EQ(findings.front().subject, "echo");
}

TEST(LintRules, Wsx1010LeavesInPortTypeDuplicatesToR2304) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.push_back({"echo", "echo", "echoResponse", {}});
  EXPECT_TRUE(run_rules(defs, {"WSX1010"}).empty());
  const std::vector<Finding> findings = run_rules(defs, {"R2304"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().message, "duplicate operation 'echo' in portType 'EchoPort'");
}

TEST(LintRules, Wsx1008FlagsLocationlessSchemaImports) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::Schema& schema = defs.schemas.front();
  schema.imports.push_back({"urn:elsewhere", ""});
  std::vector<Finding> findings = run_rules(defs, {"WSX1008"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings.front().message.find("urn:elsewhere"), std::string::npos);

  // A schemaLocation, a locally supplied namespace, or the XSD namespace
  // itself are all resolvable.
  schema.imports.back().schema_location = "http://host/elsewhere.xsd";
  schema.imports.push_back({"urn:echo", ""});
  schema.imports.push_back({std::string(xml::ns::kXsd), ""});
  EXPECT_TRUE(run_rules(defs, {"WSX1008"}).empty());
}

TEST(LintRules, Wsx1008FlagsUnfetchableWsdlImports) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.imports.push_back({"urn:elsewhere", "http://host/missing.wsdl"});

  // Without a store the cross-document half degrades to silence.
  EXPECT_TRUE(run_rules(defs, {"WSX1008"}).empty());

  wsdl::DocumentStore store;
  std::vector<Finding> findings = run_rules(defs, {"WSX1008"}, &store);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings.front().message.find("cannot be fetched"), std::string::npos);

  store.add("http://host/missing.wsdl", "<wsdl:definitions "
            "xmlns:wsdl=\"http://schemas.xmlsoap.org/wsdl/\"/>");
  EXPECT_TRUE(run_rules(defs, {"WSX1008"}, &store).empty());
}

TEST(LintRules, Wsx1009FlagsImportCycles) {
  wsdl::Definitions doc_a;
  doc_a.name = "A";
  doc_a.target_namespace = "urn:a";
  doc_a.imports.push_back({"urn:b", "b.wsdl"});
  wsdl::Definitions doc_b;
  doc_b.name = "B";
  doc_b.target_namespace = "urn:b";
  doc_b.imports.push_back({"urn:a", "a.wsdl"});

  wsdl::DocumentStore store;
  store.add("a.wsdl", wsdl::to_string(doc_a));
  store.add("b.wsdl", wsdl::to_string(doc_b));

  std::vector<Finding> findings = run_rules(doc_a, {"WSX1009"}, &store, "a.wsdl");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().severity, Severity::kError);
  EXPECT_EQ(findings.front().message, "wsdl:import cycle: a.wsdl -> b.wsdl -> a.wsdl");

  // Breaking the back edge clears the rule.
  doc_b.imports.clear();
  store.add("b.wsdl", wsdl::to_string(doc_b));
  EXPECT_TRUE(run_rules(doc_a, {"WSX1009"}, &store, "a.wsdl").empty());
}

TEST(LintRules, ConformanceAssertionsRunAsRegistryRules) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.target_namespace.clear();
  const std::vector<Finding> findings = run_rules(defs, {"R2001"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().rule_id, "R2001");
  EXPECT_EQ(RuleRegistry::builtin().find("R2001")->info().category,
            Category::kConformance);
}

// ------------------------------------------------------- source locations --

constexpr const char* kEmptyPortTypeWsdl =
    "<wsdl:definitions xmlns:wsdl=\"http://schemas.xmlsoap.org/wsdl/\"\n"
    "    targetNamespace=\"urn:lint\">\n"
    "  <wsdl:portType name=\"Idle\"/>\n"
    "</wsdl:definitions>\n";

TEST(SourceLocations, ParserRecordsConstructPositions) {
  const Result<wsdl::Definitions> defs = wsdl::parse(kEmptyPortTypeWsdl);
  ASSERT_TRUE(defs.ok());
  EXPECT_EQ(defs->locate("definitions:").line, 1u);
  const SourceLocation port_type = defs->locate("portType:Idle");
  EXPECT_EQ(port_type.line, 3u);
  EXPECT_EQ(port_type.column, 3u);
  // Unknown constructs fall back to the wsdl:definitions position, so every
  // finding points at least at the document root.
  EXPECT_EQ(defs->locate("portType:NoSuch").line, 1u);
  EXPECT_FALSE(wsdl::Definitions{}.locate("portType:NoSuch").known());
}

TEST(SourceLocations, FindingsCarryParsedPositions) {
  const Result<wsdl::Definitions> defs = wsdl::parse(kEmptyPortTypeWsdl);
  ASSERT_TRUE(defs.ok());
  AnalysisInput input;
  input.definitions = &defs.value();
  input.uri = "lint.wsdl";
  RuleConfig config;
  config.only.insert("WSX1001");
  const std::vector<Finding> findings = analyze(input, config).findings;
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().location.uri, "lint.wsdl");
  EXPECT_EQ(findings.front().location.line, 3u);
  EXPECT_EQ(findings.front().location.str(), "lint.wsdl:3:3");
}

// ------------------------------------------------------------------ SARIF --

/// A fixed findings pair exercised by both the structural and the golden
/// test: one fully populated, one with no position and no subject.
std::vector<Finding> sample_findings() {
  Finding flagged;
  flagged.rule_id = "WSX1001";
  flagged.severity = Severity::kWarning;
  flagged.message = "portType 'Idle' declares no operations";
  flagged.subject = "Idle";
  flagged.location = SourceLocation{"lint.wsdl", 3, 3};
  flagged.fixit = "declare at least one wsdl:operation";
  Finding note;
  note.rule_id = "WSX1006";
  note.severity = Severity::kNote;
  note.message = "complexType 'Orphan' is never referenced";
  note.location.uri = "lint.wsdl";
  return {flagged, note};
}

TEST(Sarif, LevelMapping) {
  EXPECT_STREQ(sarif_level(Severity::kNote), "note");
  EXPECT_STREQ(sarif_level(Severity::kWarning), "warning");
  EXPECT_STREQ(sarif_level(Severity::kError), "error");
  EXPECT_STREQ(sarif_level(Severity::kCrash), "error");
}

TEST(Sarif, LogIsStructurallyValid) {
  const Result<json::Value> parsed = json::parse(to_sarif(sample_findings()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const json::Value& log = parsed.value();

  ASSERT_NE(log.find("$schema"), nullptr);
  EXPECT_NE(log.find("$schema")->as_string().find("sarif-schema-2.1.0.json"),
            std::string::npos);
  EXPECT_EQ(log.find("version")->as_string(), "2.1.0");

  const json::Value* runs = log.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->size(), 1u);
  const json::Value& run = runs->items().front();

  // tool.driver.rules lists the whole registry in registration order.
  const json::Value* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->as_string(), "wsinterop-lint");
  const json::Value* rules = driver->find("rules");
  const RuleRegistry& registry = RuleRegistry::builtin();
  ASSERT_EQ(rules->size(), registry.rules().size());
  for (std::size_t i = 0; i < registry.rules().size(); ++i) {
    const json::Value& rule = rules->items()[i];
    EXPECT_EQ(rule.find("id")->as_string(), registry.rules()[i]->info().id);
    EXPECT_FALSE(rule.find("shortDescription")->find("text")->as_string().empty());
    const std::string level =
        rule.find("defaultConfiguration")->find("level")->as_string();
    EXPECT_TRUE(level == "note" || level == "warning" || level == "error") << level;
    EXPECT_FALSE(rule.find("properties")->find("category")->as_string().empty());
  }

  const json::Value* results = run.find("results");
  ASSERT_EQ(results->size(), 2u);

  // Result 0: full position, subject, fix-it folded into the message.
  const json::Value& first = results->items()[0];
  EXPECT_EQ(first.find("ruleId")->as_string(), "WSX1001");
  std::size_t wsx1001_index = 0;
  while (registry.rules()[wsx1001_index]->info().id != "WSX1001") ++wsx1001_index;
  EXPECT_EQ(first.find("ruleIndex")->as_number(),
            static_cast<double>(wsx1001_index));
  EXPECT_EQ(first.find("level")->as_string(), "warning");
  EXPECT_NE(first.find("message")->find("text")->as_string().find(
                "(fix: declare at least one wsdl:operation)"),
            std::string::npos);
  const json::Value& physical =
      *first.find("locations")->items().front().find("physicalLocation");
  EXPECT_EQ(physical.find("artifactLocation")->find("uri")->as_string(), "lint.wsdl");
  EXPECT_EQ(physical.find("region")->find("startLine")->as_number(), 3.0);
  EXPECT_EQ(physical.find("region")->find("startColumn")->as_number(), 3.0);
  EXPECT_EQ(first.find("locations")
                ->items()
                .front()
                .find("logicalLocations")
                ->items()
                .front()
                .find("name")
                ->as_string(),
            "Idle");

  // Result 1: unknown position → no region; no subject → no logicalLocations.
  const json::Value& second = results->items()[1];
  EXPECT_EQ(second.find("level")->as_string(), "note");
  const json::Value& location = second.find("locations")->items().front();
  EXPECT_EQ(location.find("physicalLocation")->find("region"), nullptr);
  EXPECT_EQ(location.find("logicalLocations"), nullptr);
}

TEST(Sarif, MatchesGoldenLog) {
  std::ifstream in(std::string(WSX_TEST_DATA_DIR) + "/lint_golden.sarif",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing tests/data/lint_golden.sarif";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), to_sarif(sample_findings()) + "\n");
}

// --------------------------------------------------------------- baseline --

TEST(BaselineSuppression, RoundTripsThroughText) {
  const std::vector<Finding> findings = sample_findings();
  const Baseline baseline = Baseline::from_findings(findings);
  EXPECT_EQ(baseline.size(), 2u);
  EXPECT_TRUE(baseline.suppresses(findings[0]));
  EXPECT_TRUE(baseline.suppresses(findings[1]));
  EXPECT_TRUE(apply_baseline(findings, baseline).empty());

  const Result<Baseline> reparsed = Baseline::parse(baseline.str());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->str(), baseline.str());
  EXPECT_TRUE(reparsed->suppresses(findings[0]));
}

TEST(BaselineSuppression, OnlyNewFindingsSurvive) {
  const std::vector<Finding> findings = sample_findings();
  const Baseline baseline = Baseline::from_findings({findings[0]});
  const std::vector<Finding> remaining = apply_baseline(findings, baseline);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining.front(), findings[1]);
}

TEST(BaselineSuppression, FingerprintIgnoresPositionButNotMessage) {
  std::vector<Finding> findings = sample_findings();
  Finding moved = findings[0];
  moved.location.line = 99;  // unrelated edits shift lines, not identity
  EXPECT_EQ(Baseline::fingerprint(moved), Baseline::fingerprint(findings[0]));
  moved.message += " (changed)";
  EXPECT_NE(Baseline::fingerprint(moved), Baseline::fingerprint(findings[0]));
}

TEST(BaselineSuppression, ParseSkipsCommentsAndReportsMalformedLines) {
  const Result<Baseline> ok = Baseline::parse(
      "# header comment\n"
      "\n"
      "WSX1001\tlint.wsdl\t0011223344556677\r\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);

  const Result<Baseline> bad = Baseline::parse("# header\nWSX1001\tonly-one-tab\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "baseline.malformed-line");
  EXPECT_NE(bad.error().message.find("line 2"), std::string::npos);
}

// ------------------------------------------------------------ JSON reader --

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(json::parse("null")->is_null());
  EXPECT_TRUE(json::parse("true")->as_bool());
  EXPECT_FALSE(json::parse("false")->as_bool());
  EXPECT_EQ(json::parse("42")->as_number(), 42.0);
  EXPECT_EQ(json::parse("-3.5")->as_number(), -3.5);
  EXPECT_EQ(json::parse("6.25e2")->as_number(), 625.0);
  EXPECT_EQ(json::parse("\"a\\n\\\"b\\\" \\u0041\"")->as_string(), "a\n\"b\" A");
}

TEST(JsonReader, ParsesNestedStructures) {
  const Result<json::Value> parsed =
      json::parse(R"({"name": "lint", "hits": [1, 2, 3], "meta": {"ok": true}})");
  ASSERT_TRUE(parsed.ok());
  const json::Value& value = parsed.value();
  ASSERT_TRUE(value.is_object());
  EXPECT_EQ(value.size(), 3u);
  EXPECT_EQ(value.find("name")->as_string(), "lint");
  ASSERT_EQ(value.find("hits")->size(), 3u);
  EXPECT_EQ(value.find("hits")->items()[2].as_number(), 3.0);
  EXPECT_TRUE(value.find("meta")->find("ok")->as_bool());
  EXPECT_EQ(value.find("absent"), nullptr);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("{").ok());
  EXPECT_FALSE(json::parse("[1,").ok());
  EXPECT_EQ(json::parse("tru").error().code, "json.bad-literal");
  EXPECT_EQ(json::parse("1 2").error().code, "json.trailing-content");
  EXPECT_EQ(json::parse("\"abc").error().code, "json.unterminated-string");
}

TEST(JsonReader, RoundTripsEscapedStrings) {
  const std::string weird = "tab\t quote\" backslash\\ newline\n";
  const Result<json::Value> parsed = json::parse("\"" + json::escape(weird) + "\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), weird);
}

}  // namespace
}  // namespace wsx::analysis
