// Tests for the artifact source renderer (src/codemodel/render.*).
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "codemodel/render.hpp"
#include "frameworks/registry.hpp"

namespace wsx::code {
namespace {

CompilationUnit sample_unit() {
  CompilationUnit unit;
  unit.name = "types";
  Class cls;
  cls.name = "Payload";
  cls.base = "Base";
  cls.fields.push_back({"value", "string", false});
  cls.fields.push_back({"cache", "java.util.ArrayList", true});
  Method method;
  method.name = "describe";
  method.return_type = "string";
  method.params.push_back({"verbose", "boolean"});
  method.referenced_symbols = {"value"};
  method.local_decls = {"tmp"};
  cls.methods.push_back(std::move(method));
  Method broken;
  broken.name = "dangling";
  broken.has_body = false;
  cls.methods.push_back(std::move(broken));
  unit.classes.push_back(std::move(cls));
  return unit;
}

TEST(Render, JavaStyleShowsTypesAndDefects) {
  const std::string text = render(sample_unit(), Language::kJava);
  EXPECT_NE(text.find("class Payload extends Base {"), std::string::npos);
  EXPECT_NE(text.find("private string value;"), std::string::npos);
  EXPECT_NE(text.find("/* raw collection */"), std::string::npos);
  EXPECT_NE(text.find("public string describe(boolean verbose)"), std::string::npos);
  EXPECT_NE(text.find("<missing body>"), std::string::npos);
  EXPECT_NE(text.find("use(value);"), std::string::npos);
}

TEST(Render, VbStyleOmitsTypesBeforeNames) {
  const std::string text = render(sample_unit(), Language::kVisualBasic);
  EXPECT_NE(text.find("Class Payload"), std::string::npos);
  EXPECT_NE(text.find("Private value"), std::string::npos);
  EXPECT_NE(text.find("Public describe(verbose)"), std::string::npos);
}

TEST(Render, PathologicalUnitsAreMarked) {
  CompilationUnit unit = sample_unit();
  unit.pathological = true;
  EXPECT_NE(render(unit, Language::kJScript).find("crashes the real compiler"),
            std::string::npos);
}

TEST(Render, RealArtifactsShowTheAxis1Defect) {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  const auto axis1 = frameworks::make_client("Apache Axis1 1.4");
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (!type.has(catalog::Trait::kThrowableDerived) ||
        type.has(catalog::Trait::kRawGenericApi)) {
      continue;
    }
    Result<frameworks::DeployedService> service =
        server->deploy(frameworks::ServiceSpec{&type});
    ASSERT_TRUE(service.ok());
    frameworks::GenerationResult generation = axis1->generate(service->wsdl_text);
    ASSERT_TRUE(generation.produced_artifacts());
    const std::string text = render(*generation.artifacts);
    // The defect is visible: the field is message1 but the use site says
    // message.
    EXPECT_NE(text.find("message1"), std::string::npos);
    EXPECT_NE(text.find("use(message)"), std::string::npos);
    break;
  }
}

}  // namespace
}  // namespace wsx::code
