// Tests for the manual data-type binding customization (paper §IV.B.2:
// "all the errors in this group can be solved by using manual
// customization of the data type bindings").
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/cxf_client.hpp"
#include "frameworks/jbossws_client.hpp"
#include "frameworks/metro_client.hpp"
#include "frameworks/registry.hpp"
#include "interop/study.hpp"

namespace wsx::frameworks {
namespace {

std::string dataset_wsdl() {
  static const std::string text = [] {
    const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
    const auto server = make_server("WCF .NET 4.0.30319.17929");
    for (const catalog::TypeInfo& type : catalog.types()) {
      if (type.has(catalog::Trait::kDataSetSchema) &&
          !type.has(catalog::Trait::kDataSetNested) &&
          !type.has(catalog::Trait::kDataSetDuplicated) &&
          !type.has(catalog::Trait::kDataSetArray)) {
        return server->deploy(ServiceSpec{&type})->wsdl_text;
      }
    }
    return std::string{};
  }();
  return text;
}

std::string wildcard_wsdl() {
  static const std::string text = [] {
    const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
    const auto server = make_server("WCF .NET 4.0.30319.17929");
    const catalog::TypeInfo* type = catalog.find(catalog::dotnet_names::kDataTable);
    return server->deploy(ServiceSpec{type})->wsdl_text;
  }();
  return text;
}

TEST(BindingCustomization, CuresMetroOnTheDataSetIdiom) {
  const MetroClient plain;
  const MetroClient customized{true};
  EXPECT_TRUE(plain.generate(dataset_wsdl()).diagnostics.has_errors());
  GenerationResult result = customized.generate(dataset_wsdl());
  EXPECT_FALSE(result.diagnostics.has_errors());
  EXPECT_TRUE(result.diagnostics.has_warnings());  // developer was told
  ASSERT_TRUE(result.produced_artifacts());
  // And the cured artifacts compile.
  EXPECT_FALSE(compilers::make_compiler(code::Language::kJava)
                   ->compile(*result.artifacts)
                   .has_errors());
}

TEST(BindingCustomization, CuresCxfAndJBossOnWildcardContent) {
  const CxfClient plain_cxf;
  const CxfClient customized_cxf{true};
  EXPECT_TRUE(plain_cxf.generate(wildcard_wsdl()).diagnostics.has_errors());
  EXPECT_FALSE(customized_cxf.generate(wildcard_wsdl()).diagnostics.has_errors());

  const JBossWsClient plain_jboss;
  const JBossWsClient customized_jboss{true};
  EXPECT_TRUE(plain_jboss.generate(wildcard_wsdl()).diagnostics.has_errors());
  EXPECT_FALSE(customized_jboss.generate(wildcard_wsdl()).diagnostics.has_errors());
}

TEST(BindingCustomization, CuresW3CEndpointReference) {
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = make_server("Metro 2.3");
  const catalog::TypeInfo* type = catalog.find(catalog::java_names::kW3CEndpointReference);
  Result<DeployedService> service = server->deploy(ServiceSpec{type});
  ASSERT_TRUE(service.ok());
  const MetroClient customized{true};
  EXPECT_FALSE(customized.generate(service->wsdl_text).diagnostics.has_errors());
}

TEST(BindingCustomization, DoesNotCureNonBindingFailures) {
  // Zero-operation WSDLs are unusable regardless of bindings (§IV.B.2's
  // cure applies to data-type issues only).
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = make_server("JBossWS CXF 4.2.3");
  const catalog::TypeInfo* future = catalog.find(catalog::java_names::kFuture);
  Result<DeployedService> service = server->deploy(ServiceSpec{future});
  ASSERT_TRUE(service.ok());
  const MetroClient customized{true};
  EXPECT_TRUE(customized.generate(service->wsdl_text).diagnostics.has_errors());
}

TEST(BindingCustomization, CuredCampaignDropsJavaStackErrorsOnWcf) {
  // Rerun the WCF column with customized Java-stack clients: the 79+79+79
  // binding errors disappear, exactly as §IV.B.2 predicts — at the price
  // of "the client developer has to know precisely which binding to
  // define".
  const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
  const std::vector<ServiceSpec> services = make_services(catalog);
  const auto server = make_server("WCF .NET 4.0.30319.17929");
  const interop::StudyConfig config;

  std::vector<std::unique_ptr<ClientFramework>> customized;
  customized.push_back(std::make_unique<MetroClient>(true));
  customized.push_back(std::make_unique<CxfClient>(true));
  customized.push_back(std::make_unique<JBossWsClient>(true));
  const interop::ServerResult cured =
      interop::run_server_campaign(*server, services, customized, config);
  for (const interop::CellResult& cell : cured.cells) {
    EXPECT_EQ(cell.generation.errors, 0u) << cell.client;
    EXPECT_EQ(cell.generation.warnings, 79u) << cell.client;  // flagged, not fatal
    EXPECT_EQ(cell.compilation.errors, 0u) << cell.client;
  }
}

}  // namespace
}  // namespace wsx::frameworks
