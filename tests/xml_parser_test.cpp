// Unit tests for the XML parser (src/xml/parser.*).
#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace wsx::xml {
namespace {

TEST(XmlParser, ParsesMinimalDocument) {
  Result<Document> doc = parse("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.name(), "root");
  EXPECT_TRUE(doc->root.children().empty());
}

TEST(XmlParser, ParsesPrologVersionAndEncoding) {
  Result<Document> doc = parse("<?xml version=\"1.1\" encoding=\"ISO-8859-1\"?><a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->version, "1.1");
  EXPECT_EQ(doc->encoding, "ISO-8859-1");
}

TEST(XmlParser, ParsesAttributes) {
  Result<Element> root = parse_element(R"(<a x="1" y="two"/>)");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->attribute("x"), "1");
  EXPECT_EQ(root->attribute("y"), "two");
  EXPECT_FALSE(root->attribute("z").has_value());
}

TEST(XmlParser, RejectsDuplicateAttributes) {
  Result<Element> root = parse_element(R"(<a x="1" x="2"/>)");
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code, "xml.duplicate-attr");
}

TEST(XmlParser, ParsesNestedElementsAndText) {
  Result<Element> root = parse_element("<a><b>hello</b><c/></a>");
  ASSERT_TRUE(root.ok());
  ASSERT_NE(root->child("b"), nullptr);
  EXPECT_EQ(root->child("b")->text(), "hello");
  ASSERT_NE(root->child("c"), nullptr);
}

TEST(XmlParser, DecodesBuiltinEntities) {
  Result<Element> root = parse_element("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->text(), "<>&'\"");
}

TEST(XmlParser, DecodesNumericCharacterReferences) {
  Result<Element> root = parse_element("<a>&#65;&#x42;</a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->text(), "AB");
}

TEST(XmlParser, RejectsUnknownEntity) {
  Result<Element> root = parse_element("<a>&nope;</a>");
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code, "xml.unknown-entity");
}

TEST(XmlParser, ParsesCdata) {
  Result<Element> root = parse_element("<a><![CDATA[<raw&stuff>]]></a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->text(), "<raw&stuff>");
}

TEST(XmlParser, KeepsCommentsWhenRequested) {
  Result<Element> root = parse_element("<a><!--note--><b/></a>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->children().size(), 2u);
}

TEST(XmlParser, DropsCommentsWhenConfigured) {
  ParseOptions options;
  options.keep_comments = false;
  Result<Element> root = parse_element("<a><!--note--><b/></a>", options);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->children().size(), 1u);
}

TEST(XmlParser, RejectsMismatchedTags) {
  Result<Element> root = parse_element("<a><b></a></b>");
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code, "xml.mismatched-tag");
}

TEST(XmlParser, RejectsUnterminatedElement) {
  Result<Element> root = parse_element("<a><b>");
  ASSERT_FALSE(root.ok());
}

TEST(XmlParser, RejectsTrailingContent) {
  Result<Document> doc = parse("<a/><b/>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().code, "xml.trailing-content");
}

TEST(XmlParser, SkipsDoctypeAndProcessingInstructions) {
  Result<Document> doc =
      parse("<?xml version=\"1.0\"?><!DOCTYPE a><?pi data?><a><?inner?></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root.name(), "a");
}

TEST(XmlParser, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 300; ++i) deep += "</a>";
  Result<Element> root = parse_element(deep);
  ASSERT_FALSE(root.ok());
  EXPECT_EQ(root.error().code, "xml.too-deep");
}

TEST(XmlParser, ReportsLineAndColumn) {
  Result<Element> root = parse_element("<a>\n  <b x=></b>\n</a>");
  ASSERT_FALSE(root.ok());
  EXPECT_NE(root.error().message.find("line 2"), std::string::npos);
}

TEST(XmlParser, SkipsUtf8ByteOrderMark) {
  Result<Element> root = parse_element("\xEF\xBB\xBF<a/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->name(), "a");
}

TEST(XmlRoundTrip, WriteThenParsePreservesTree) {
  Element root{"wsdl:definitions"};
  root.declare_namespace("wsdl", "http://schemas.xmlsoap.org/wsdl/");
  root.set_attribute("name", "Echo<Svc>");
  Element& child = root.add_element("wsdl:types");
  child.add_text("a & b");
  const std::string text = write(root);
  Result<Element> reparsed = parse_element(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->name(), "wsdl:definitions");
  EXPECT_EQ(reparsed->attribute("name"), "Echo<Svc>");
  EXPECT_EQ(reparsed->child("types")->text(), "a & b");
}

TEST(XmlWriter, EscapesAttributeQuotes) {
  Element root{"a"};
  root.set_attribute("t", "say \"hi\"");
  const std::string text = write(root);
  EXPECT_NE(text.find("&quot;hi&quot;"), std::string::npos);
  Result<Element> reparsed = parse_element(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->attribute("t"), "say \"hi\"");
}

}  // namespace
}  // namespace wsx::xml
