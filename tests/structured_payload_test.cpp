// Tests for structured (typed) payload marshalling and the binder's
// field-level schema validation during execution.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "soap/message.hpp"

namespace wsx::frameworks {
namespace {

/// A deployed service over a plain bean whose first field is typed.
struct Fixture {
  DeployedService service;
  const catalog::TypeInfo* type = nullptr;
  std::unique_ptr<ServerFramework> server;
};

Fixture make_fixture() {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  Fixture fixture;
  fixture.server = make_server("Metro 2.3");
  for (const catalog::TypeInfo& candidate : catalog.types()) {
    const bool plain =
        candidate.traits == (static_cast<std::uint64_t>(catalog::Trait::kDefaultCtor) |
                             static_cast<std::uint64_t>(catalog::Trait::kSerializable));
    if (!plain) continue;
    // Need at least one non-string field so type validation can fail.
    bool has_typed_field = false;
    for (const catalog::FieldSpec& field : candidate.fields) {
      if (field.type == xsd::Builtin::kInt || field.type == xsd::Builtin::kBoolean) {
        has_typed_field = true;
      }
    }
    if (!has_typed_field) continue;
    fixture.type = &candidate;
    fixture.service = std::move(fixture.server->deploy(ServiceSpec{&candidate}).value());
    return fixture;
  }
  ADD_FAILURE() << "no suitable bean found";
  return fixture;
}

std::vector<soap::Argument> valid_fields(const catalog::TypeInfo& type) {
  std::vector<soap::Argument> fields;
  for (const catalog::FieldSpec& field : type.fields) {
    switch (field.type) {
      case xsd::Builtin::kInt:
      case xsd::Builtin::kLong:
      case xsd::Builtin::kShort:
      case xsd::Builtin::kByte:
      case xsd::Builtin::kDecimal:
        fields.push_back({field.name, "42"});
        break;
      case xsd::Builtin::kBoolean:
        fields.push_back({field.name, "true"});
        break;
      case xsd::Builtin::kDouble:
      case xsd::Builtin::kFloat:
        fields.push_back({field.name, "2.5"});
        break;
      case xsd::Builtin::kDateTime:
        fields.push_back({field.name, "2014-06-23T09:30:00Z"});
        break;
      default:
        fields.push_back({field.name, "text"});
    }
  }
  return fields;
}

TEST(StructuredPayload, BuilderNestsFieldsUnderArg0) {
  const Fixture fixture = make_fixture();
  Result<soap::Envelope> request = soap::build_structured_request(
      fixture.service.wsdl, "echo", valid_fields(*fixture.type));
  ASSERT_TRUE(request.ok());
  const std::vector<soap::Argument> fields = soap::structured_fields(*request);
  EXPECT_EQ(fields.size(), fixture.type->fields.size());
}

TEST(StructuredPayload, ValidBeanRoundTrips) {
  const Fixture fixture = make_fixture();
  Result<soap::Envelope> request = soap::build_structured_request(
      fixture.service.wsdl, "echo", valid_fields(*fixture.type));
  ASSERT_TRUE(request.ok());
  const soap::Envelope response =
      fixture.server->handle_request(fixture.service, *request);
  EXPECT_FALSE(response.is_fault())
      << (response.is_fault() ? response.fault().fault_string : "");
}

TEST(StructuredPayload, UnknownFieldFaults) {
  const Fixture fixture = make_fixture();
  std::vector<soap::Argument> fields = valid_fields(*fixture.type);
  fields.push_back({"notAField", "x"});
  Result<soap::Envelope> request =
      soap::build_structured_request(fixture.service.wsdl, "echo", fields);
  const soap::Envelope response =
      fixture.server->handle_request(fixture.service, *request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_NE(response.fault().fault_string.find("unexpected element"), std::string::npos);
}

TEST(StructuredPayload, TypeMismatchFaults) {
  const Fixture fixture = make_fixture();
  std::vector<soap::Argument> fields;
  for (const catalog::FieldSpec& field : fixture.type->fields) {
    if (field.type == xsd::Builtin::kInt || field.type == xsd::Builtin::kBoolean) {
      fields.push_back({field.name, "certainly-not-a-number"});
      break;
    }
  }
  ASSERT_FALSE(fields.empty());
  Result<soap::Envelope> request =
      soap::build_structured_request(fixture.service.wsdl, "echo", fields);
  const soap::Envelope response =
      fixture.server->handle_request(fixture.service, *request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_NE(response.fault().fault_string.find("unmarshalling error"), std::string::npos);
}

TEST(StructuredPayload, FlatStringPayloadStillWorks) {
  // The untyped path (plain text under arg0) remains valid.
  const Fixture fixture = make_fixture();
  Result<soap::Envelope> request =
      soap::build_request(fixture.service.wsdl, "echo", {{"arg0", "plain"}});
  const soap::Envelope response =
      fixture.server->handle_request(fixture.service, *request);
  ASSERT_FALSE(response.is_fault());
  EXPECT_EQ(soap::response_value(response).value(), "plain");
}

}  // namespace
}  // namespace wsx::frameworks
