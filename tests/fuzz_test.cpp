// Unit tests for the WSDL mutation operators and robustness campaign
// (src/fuzz/).
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/axis1_client.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/campaign.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"
#include "xml/parser.hpp"

namespace wsx::fuzz {
namespace {

/// A served base description used by all mutation tests.
const std::string& base_wsdl() {
  static const std::string text = [] {
    const catalog::TypeCatalog catalog = catalog::make_java_catalog();
    const auto server = frameworks::make_server("Metro 2.3");
    const catalog::TypeInfo* type = catalog.find(catalog::java_names::kXmlGregorianCalendar);
    return server->deploy(frameworks::ServiceSpec{type})->wsdl_text;
  }();
  return text;
}

TEST(Mutation, AllKindsApplicableToServedWsdl) {
  const std::vector<Mutant> mutants = mutate_all(base_wsdl());
  EXPECT_EQ(mutants.size(), all_mutation_kinds().size());
  for (const Mutant& mutant : mutants) {
    EXPECT_NE(mutant.wsdl_text, base_wsdl()) << to_string(mutant.kind);
    EXPECT_FALSE(mutant.description.empty()) << to_string(mutant.kind);
  }
}

TEST(Mutation, IsDeterministic) {
  for (MutationKind kind : all_mutation_kinds()) {
    std::optional<Mutant> first = mutate(base_wsdl(), kind);
    std::optional<Mutant> second = mutate(base_wsdl(), kind);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->wsdl_text, second->wsdl_text) << to_string(kind);
  }
}

TEST(Mutation, WellFormedKindsStillParseAsXml) {
  for (MutationKind kind : all_mutation_kinds()) {
    if (!is_well_formed_kind(kind)) continue;
    std::optional<Mutant> mutant = mutate(base_wsdl(), kind);
    ASSERT_TRUE(mutant.has_value()) << to_string(kind);
    EXPECT_TRUE(xml::parse_element(mutant->wsdl_text).ok()) << to_string(kind);
  }
}

TEST(Mutation, TextLevelKindsBreakTheParser) {
  for (MutationKind kind : all_mutation_kinds()) {
    if (is_well_formed_kind(kind)) continue;
    std::optional<Mutant> mutant = mutate(base_wsdl(), kind);
    ASSERT_TRUE(mutant.has_value()) << to_string(kind);
    EXPECT_FALSE(xml::parse_element(mutant->wsdl_text).ok()) << to_string(kind);
  }
}

TEST(Mutation, RemoveOperationsYieldsZeroOperationWsdl) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kRemoveOperations);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_EQ(defs->operation_count(), 0u);
}

TEST(Mutation, DropTargetNamespaceFailsR2001) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kDropTargetNamespace);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2001"));
}

TEST(Mutation, RenameWrapperFailsR2105) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kRenameWrapperElement);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2105"));
}

TEST(Mutation, DropMessageFailsR2097) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kDropMessage);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2097"));
}

TEST(Mutation, DuplicateOperationFailsR2304) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kDuplicateOperation);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2304"));
}

TEST(Mutation, SwitchToEncodedFailsR2706) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kSwitchToEncoded);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2706"));
}

TEST(Mutation, ForeignElementStaysCompliant) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kInjectForeignElement);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).compliant());
  EXPECT_FALSE(defs->extension_elements.empty());
}

TEST(Mutation, InapplicableMutationReturnsNullopt) {
  // A description with no soapAction cannot lose one.
  std::optional<Mutant> stripped = mutate(base_wsdl(), MutationKind::kDropSoapAction);
  ASSERT_TRUE(stripped.has_value());
  EXPECT_FALSE(mutate(stripped->wsdl_text, MutationKind::kDropSoapAction).has_value());
  // Not-even-XML input yields no structural mutants.
  EXPECT_FALSE(mutate("not xml", MutationKind::kRemoveOperations).has_value());
}

TEST(Campaign, RunsAndCountsConsistently) {
  FuzzConfig config;
  config.corpus_per_server = 1;
  const FuzzReport report = run_fuzz_campaign(config);
  EXPECT_EQ(report.corpus_size, 3u);  // one per server
  EXPECT_EQ(report.tools.size(), 11u);
  EXPECT_GT(report.mutant_count, 0u);
  // Every (tool, mutant) pair is classified exactly once.
  for (const ToolRobustness& tool : report.tools) {
    std::size_t classified = 0;
    for (Reaction reaction : {Reaction::kRejected, Reaction::kWarned, Reaction::kSilentSuccess}) {
      classified += tool.total(reaction);
    }
    EXPECT_EQ(classified, report.mutant_count) << tool.client;
  }
}

TEST(Campaign, EveryToolRejectsMalformedXml) {
  FuzzConfig config;
  config.corpus_per_server = 1;
  const FuzzReport report = run_fuzz_campaign(config);
  for (const ToolRobustness& tool : report.tools) {
    for (MutationKind kind : all_mutation_kinds()) {
      if (is_well_formed_kind(kind)) continue;
      const std::size_t mutants = report.mutants_per_kind[static_cast<std::size_t>(kind)];
      EXPECT_EQ(tool.count(kind, Reaction::kRejected), mutants)
          << tool.client << " / " << to_string(kind);
    }
  }
}

TEST(Campaign, SilentAcceptanceOfBrokenInputExists) {
  // The robustness finding that motivates the harness: semantically broken
  // descriptions do slip through silently for some tools.
  FuzzConfig config;
  config.corpus_per_server = 1;
  const FuzzReport report = run_fuzz_campaign(config);
  std::size_t silent = 0;
  for (const ToolRobustness& tool : report.tools) silent += tool.silent_on_broken();
  EXPECT_GT(silent, 0u);
}

TEST(Campaign, WsiDetectsMostStructuralMutations) {
  FuzzConfig config;
  config.corpus_per_server = 1;
  const FuzzReport report = run_fuzz_campaign(config);
  std::size_t detected_kinds = 0;
  std::size_t well_formed_kinds = 0;
  for (MutationKind kind : all_mutation_kinds()) {
    if (!is_well_formed_kind(kind)) continue;
    ++well_formed_kinds;
    if (report.wsi_detected[static_cast<std::size_t>(kind)] > 0) ++detected_kinds;
  }
  EXPECT_GE(detected_kinds + 1, well_formed_kinds);  // only the foreign element escapes
}

TEST(Campaign, FormatRendersEveryKind) {
  FuzzConfig config;
  config.corpus_per_server = 1;
  const std::string text = format_fuzz(run_fuzz_campaign(config));
  for (MutationKind kind : all_mutation_kinds()) {
    EXPECT_NE(text.find(to_string(kind)), std::string::npos) << to_string(kind);
  }
}

TEST(Mutation, LocationlessImportFailsR2007AndBreaksStrictTools) {
  std::optional<Mutant> mutant = mutate(base_wsdl(), MutationKind::kLocationlessImport);
  ASSERT_TRUE(mutant.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(mutant->wsdl_text);
  ASSERT_TRUE(defs.ok());
  EXPECT_TRUE(wsi::check(*defs).failed("R2007"));
  const auto metro = frameworks::make_client("Oracle Metro 2.3");
  EXPECT_TRUE(metro->generate(mutant->wsdl_text).diagnostics.has_errors());
  const auto axis1 = frameworks::make_client("Apache Axis1 1.4");
  EXPECT_FALSE(axis1->generate(mutant->wsdl_text).diagnostics.has_errors());
}

TEST(Mutation, ChainsComposeInOrder) {
  std::optional<Mutant> chained = mutate_chain(
      base_wsdl(), {MutationKind::kDropSoapAction, MutationKind::kSwitchToEncoded});
  ASSERT_TRUE(chained.has_value());
  Result<wsdl::Definitions> defs = wsdl::parse(chained->wsdl_text);
  ASSERT_TRUE(defs.ok());
  const wsi::ComplianceReport report = wsi::check(*defs);
  EXPECT_TRUE(report.failed("R2744"));
  EXPECT_TRUE(report.failed("R2706"));
  EXPECT_NE(chained->description.find("; then "), std::string::npos);
}

TEST(Mutation, ChainStopsWhenALinkIsInapplicable) {
  // Dropping the soapAction twice cannot work.
  EXPECT_FALSE(mutate_chain(base_wsdl(), {MutationKind::kDropSoapAction,
                                          MutationKind::kDropSoapAction})
                   .has_value());
  EXPECT_FALSE(mutate_chain(base_wsdl(), {}).has_value());
}

TEST(Mutation, PatchedAxis1CuresThrowableCompilation) {
  // The §IV.B.3 fix: "Renaming the attribute fixes the compilation issue".
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (!type.has(catalog::Trait::kThrowableDerived) ||
        type.has(catalog::Trait::kRawGenericApi)) {
      continue;
    }
    Result<frameworks::DeployedService> service =
        server->deploy(frameworks::ServiceSpec{&type});
    ASSERT_TRUE(service.ok());
    const frameworks::Axis1Client stock;
    const frameworks::Axis1Client patched{true};
    const auto compiler = compilers::make_compiler(code::Language::kJava);
    EXPECT_TRUE(
        compiler->compile(*stock.generate(service->wsdl_text).artifacts).has_errors());
    EXPECT_FALSE(
        compiler->compile(*patched.generate(service->wsdl_text).artifacts).has_errors());
    break;
  }
}

TEST(MutationMeta, KindNamesAndCount) {
  EXPECT_EQ(all_mutation_kinds().size(), kMutationKindCount);
  EXPECT_STREQ(to_string(MutationKind::kTruncate), "truncate");
  EXPECT_STREQ(to_string(Reaction::kSilentSuccess), "silent");
  EXPECT_TRUE(is_well_formed_kind(MutationKind::kRemoveOperations));
  EXPECT_FALSE(is_well_formed_kind(MutationKind::kCorruptEntity));
}

}  // namespace
}  // namespace wsx::fuzz
