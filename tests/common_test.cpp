// Unit tests for Result/Status, Box and DiagnosticSink (src/common/).
#include <gtest/gtest.h>

#include "common/box.hpp"
#include "common/diagnostics.hpp"
#include "common/result.hpp"

namespace wsx {
namespace {

Result<int> parse_positive(int value) {
  if (value <= 0) return Error{"neg", "value must be positive"};
  return value;
}

TEST(Result, HoldsValue) {
  Result<int> result = parse_positive(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 7);
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(static_cast<bool>(result));
}

TEST(Result, HoldsError) {
  Result<int> result = parse_positive(-1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "neg");
}

TEST(Result, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(-1).value_or(42), 42);
  EXPECT_EQ(parse_positive(3).value_or(42), 3);
}

TEST(Result, MoveExtractsValue) {
  Result<std::string> result = std::string{"payload"};
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> result = std::string{"abc"};
  EXPECT_EQ(result->size(), 3u);
}

TEST(Status, DefaultIsSuccess) {
  Status status;
  EXPECT_TRUE(status.ok());
}

TEST(Status, CarriesError) {
  Status status = Error{"io", "disk full"};
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().message, "disk full");
}

TEST(Box, DefaultIsEmpty) {
  Box<int> box;
  EXPECT_FALSE(box.has_value());
}

TEST(Box, HoldsAndDereferences) {
  Box<int> box{5};
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(*box, 5);
}

TEST(Box, CopyIsDeep) {
  Box<int> a{1};
  Box<int> b = a;
  *b = 2;
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(Box, CopyAssignIsDeep) {
  Box<std::string> a{std::string{"x"}};
  Box<std::string> b;
  b = a;
  *b += "y";
  EXPECT_EQ(*a, "x");
  EXPECT_EQ(*b, "xy");
}

TEST(Box, EqualityComparesContents) {
  EXPECT_EQ(Box<int>{3}, Box<int>{3});
  EXPECT_FALSE(Box<int>{3} == Box<int>{4});
  EXPECT_EQ(Box<int>{}, Box<int>{});
  EXPECT_FALSE(Box<int>{} == Box<int>{1});
}

TEST(Box, SelfRecursiveStructure) {
  struct Node {
    int value = 0;
    Box<Node> next;
  };
  Node root{1, Box<Node>{Node{2, {}}}};
  Node copy = root;  // deep copy through the Box
  copy.next->value = 99;
  EXPECT_EQ(root.next->value, 2);
}

TEST(Diagnostics, SeverityNames) {
  EXPECT_STREQ(to_string(Severity::kNote), "note");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kCrash), "crash");
}

TEST(DiagnosticSink, StartsEmpty) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  EXPECT_FALSE(sink.has_errors());
  EXPECT_FALSE(sink.has_warnings());
}

TEST(DiagnosticSink, CountsBySeverity) {
  DiagnosticSink sink;
  sink.note("a", "n");
  sink.warn("b", "w");
  sink.warn("c", "w2");
  sink.error("d", "e");
  EXPECT_EQ(sink.count(Severity::kNote), 1u);
  EXPECT_EQ(sink.count(Severity::kWarning), 2u);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_TRUE(sink.has_warnings());
}

TEST(DiagnosticSink, CrashCountsAsError) {
  DiagnosticSink sink;
  sink.crash("jsc", "131 INTERNAL COMPILER CRASH");
  EXPECT_TRUE(sink.has_errors());
  EXPECT_FALSE(sink.has_warnings());
}

TEST(DiagnosticSink, NotesAreNeitherWarningsNorErrors) {
  DiagnosticSink sink;
  sink.note("zend", "uncommon data structure");
  EXPECT_FALSE(sink.has_errors());
  EXPECT_FALSE(sink.has_warnings());
}

TEST(DiagnosticSink, MergeAppendsAll) {
  DiagnosticSink a;
  a.warn("w", "1");
  DiagnosticSink b;
  b.error("e", "2");
  a.merge(b);
  EXPECT_EQ(a.diagnostics().size(), 2u);
  EXPECT_TRUE(a.has_errors());
}

TEST(DiagnosticSink, PreservesSubject) {
  DiagnosticSink sink;
  sink.error("code", "message", "types.java");
  EXPECT_EQ(sink.diagnostics().front().subject, "types.java");
}

}  // namespace
}  // namespace wsx
