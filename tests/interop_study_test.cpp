// Integration tests for the study runner and classification (src/interop/),
// on scaled populations.
#include <gtest/gtest.h>

#include "frameworks/registry.hpp"
#include "interop/report.hpp"
#include "interop/study.hpp"

namespace wsx::interop {
namespace {

/// A small but structurally complete configuration (every trait present).
StudyConfig small_config() {
  StudyConfig config;
  config.java_spec.plain_beans = 30;
  config.java_spec.throwable_clean = 5;
  config.java_spec.throwable_raw = 2;
  config.java_spec.raw_generic_beans = 3;
  config.java_spec.anytype_array_beans = 2;
  config.java_spec.no_default_ctor = 5;
  config.java_spec.abstract_classes = 3;
  config.java_spec.interfaces = 4;
  config.java_spec.generic_types = 2;
  config.dotnet_spec.plain_types = 40;
  config.dotnet_spec.dataset_plain = 2;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 3;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 10;
  config.dotnet_spec.no_default_ctor = 8;
  config.dotnet_spec.generic_types = 5;
  config.dotnet_spec.abstract_classes = 4;
  config.dotnet_spec.interfaces = 3;
  return config;
}

class SmallStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { result_ = new StudyResult(run_study(small_config())); }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const StudyResult& result() { return *result_; }
  static StudyResult* result_;
};

StudyResult* SmallStudy::result_ = nullptr;

TEST_F(SmallStudy, RunsAllThreeServers) {
  ASSERT_EQ(result().servers.size(), 3u);
  EXPECT_EQ(result().servers[0].application_server, "GlassFish 4.0");
  EXPECT_EQ(result().servers[1].application_server, "JBoss AS 7.2");
  EXPECT_EQ(result().servers[2].application_server, "IIS 8.0.8418.0 (Express)");
}

TEST_F(SmallStudy, EveryCellRunsOneTestPerDeployedService) {
  for (const ServerResult& server : result().servers) {
    ASSERT_EQ(server.cells.size(), 11u);
    for (const CellResult& cell : server.cells) {
      EXPECT_EQ(cell.tests, server.services_deployed);
    }
  }
}

TEST_F(SmallStudy, CreatedEqualsDeployedPlusRefused) {
  for (const ServerResult& server : result().servers) {
    EXPECT_EQ(server.services_created,
              server.services_deployed + server.deployment_refusals);
  }
}

TEST_F(SmallStudy, DescriptionStepNeverErrors) {
  for (const ServerResult& server : result().servers) {
    EXPECT_EQ(server.description_errors, 0u);
  }
}

TEST_F(SmallStudy, DescriptionWarningsAreWsiFailuresPlusUnusable) {
  for (const ServerResult& server : result().servers) {
    EXPECT_EQ(server.description_warnings,
              server.wsi_failures + server.zero_operation_services);
  }
}

TEST_F(SmallStudy, JBossPublishesTwoZeroOperationServices) {
  EXPECT_EQ(result().servers[1].zero_operation_services, 2u);  // Future, Response
  EXPECT_EQ(result().servers[0].zero_operation_services, 0u);  // Metro refuses
  EXPECT_EQ(result().servers[2].zero_operation_services, 0u);
}

TEST_F(SmallStudy, CompilationWarningsComeOnlyFromAxis) {
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) {
      const bool is_axis = cell.client.find("Axis") != std::string::npos;
      if (is_axis) {
        EXPECT_EQ(cell.compilation.warnings, server.services_deployed) << cell.client;
      } else {
        EXPECT_EQ(cell.compilation.warnings, 0u) << cell.client;
      }
    }
  }
}

TEST_F(SmallStudy, DynamicClientsHaveNoCompilationOutcomes) {
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) {
      if (!cell.compiled) {
        EXPECT_EQ(cell.compilation.warnings, 0u) << cell.client;
        EXPECT_EQ(cell.compilation.errors, 0u) << cell.client;
      }
    }
  }
}

TEST_F(SmallStudy, TotalsAggregateCells) {
  std::size_t generation_errors = 0;
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) generation_errors += cell.generation.errors;
  }
  EXPECT_EQ(result().total_generation().errors, generation_errors);
  EXPECT_EQ(result().total_interop_errors(),
            result().total_generation().errors + result().total_compilation().errors);
}

TEST_F(SmallStudy, SamePlatformFailuresAreSubsetOfSameFramework) {
  EXPECT_LE(result().same_platform_failures, result().same_framework_failures);
  EXPECT_GT(result().same_platform_failures, 0u);
}

TEST_F(SmallStudy, FlaggedDownstreamErrorsBoundedByFlagged) {
  EXPECT_LE(result().flagged_services_with_downstream_error, result().flagged_services);
  EXPECT_GT(result().flagged_services, 0u);
}

TEST_F(SmallStudy, SampleDiagnosticsAreCollected) {
  bool any_sample = false;
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) {
      if (!cell.samples.empty()) any_sample = true;
    }
  }
  EXPECT_TRUE(any_sample);
}

TEST_F(SmallStudy, SingleThreadedRunIsIdentical) {
  StudyConfig config = small_config();
  config.threads = 1;
  const StudyResult serial = run_study(config);
  ASSERT_EQ(serial.servers.size(), result().servers.size());
  for (std::size_t s = 0; s < serial.servers.size(); ++s) {
    const ServerResult& a = serial.servers[s];
    const ServerResult& b = result().servers[s];
    EXPECT_EQ(a.description_warnings, b.description_warnings);
    for (std::size_t c = 0; c < a.cells.size(); ++c) {
      EXPECT_EQ(a.cells[c].generation, b.cells[c].generation) << a.cells[c].client;
      EXPECT_EQ(a.cells[c].compilation, b.cells[c].compilation) << a.cells[c].client;
    }
  }
  EXPECT_EQ(serial.same_platform_failures, result().same_platform_failures);
  EXPECT_EQ(serial.total_tests(), result().total_tests());
}

TEST_F(SmallStudy, ErrorCodesAreCatalogued) {
  // The cell-level error-code histogram must account for at least every
  // errored test (a test can contribute several codes).
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) {
      std::size_t catalogued = 0;
      for (const auto& [code, count] : cell.error_codes) {
        EXPECT_FALSE(code.empty());
        catalogued += count;
      }
      EXPECT_GE(catalogued, cell.generation.errors + cell.compilation.errors) << cell.client;
    }
  }
}

TEST_F(SmallStudy, FailureCatalogRendersKnownCodes) {
  const std::string catalog = format_failure_catalog(result());
  EXPECT_NE(catalog.find("javac.unresolved-identifier"), std::string::npos);
  EXPECT_NE(catalog.find("distinct error codes"), std::string::npos);
  EXPECT_NE(catalog.find("Apache Axis1 1.4"), std::string::npos);
}

TEST_F(SmallStudy, ReportsRenderWithoutCrashing) {
  EXPECT_FALSE(format_fig4(result()).empty());
  EXPECT_FALSE(format_table3(result()).empty());
  EXPECT_FALSE(format_findings(result()).empty());
  EXPECT_NE(format_table1().find("GlassFish"), std::string::npos);
  EXPECT_NE(format_table2().find("wsimport"), std::string::npos);
}

TEST(ServerCampaign, CustomClientRosterIsHonoured) {
  const catalog::TypeCatalog java = catalog::make_java_catalog(small_config().java_spec);
  const std::vector<frameworks::ServiceSpec> services = frameworks::make_services(java);
  std::vector<std::unique_ptr<frameworks::ClientFramework>> clients;
  clients.push_back(frameworks::make_client("Oracle Metro 2.3"));
  const auto server = frameworks::make_server("Metro 2.3");
  const ServerResult result =
      run_server_campaign(*server, services, clients, StudyConfig{});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells.front().client, "Oracle Metro 2.3");
  EXPECT_EQ(result.cells.front().tests, result.services_deployed);
}

TEST(StepCountsApi, AccumulatesWithPlusEquals) {
  StepCounts a{1, 2};
  StepCounts b{10, 20};
  a += b;
  EXPECT_EQ(a.warnings, 11u);
  EXPECT_EQ(a.errors, 22u);
}

}  // namespace
}  // namespace wsx::interop
