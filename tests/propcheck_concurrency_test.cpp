// Concurrency coverage for the propcheck campaign: corpus generation and
// the corpus replay both fan out across worker threads, and the report
// must be byte-identical at any worker count — the determinism guarantee
// TSan exercises for data races in the shared description/corpus reads.
#include <gtest/gtest.h>

#include <string>

#include "gen/campaign.hpp"

namespace wsx::gen {
namespace {

GenConfig tiny_gen(std::size_t jobs) {
  GenConfig config;
  config.java_spec.plain_beans = 4;
  config.java_spec.throwable_clean = 1;
  config.java_spec.abstract_classes = 1;
  config.dotnet_spec.plain_types = 4;
  config.dotnet_spec.dataset_plain = 1;
  config.corpus.cases_per_operation = 2;
  config.jobs = jobs;
  return config;
}

TEST(PropcheckConcurrency, WorkerCountDoesNotChangeTheReport) {
  const std::string single = propcheck_json(run_propcheck(tiny_gen(1)));
  const std::string parallel = propcheck_json(run_propcheck(tiny_gen(8)));
  EXPECT_EQ(single, parallel);
}

TEST(PropcheckConcurrency, SharedDescriptionsSurviveParallelReplay) {
  // parse_cache shares one SharedDescription per service across all worker
  // threads; the uncached path re-parses per pair. Same bytes either way.
  GenConfig cached = tiny_gen(8);
  GenConfig uncached = tiny_gen(8);
  uncached.parse_cache = false;
  EXPECT_EQ(propcheck_json(run_propcheck(cached)),
            propcheck_json(run_propcheck(uncached)));
}

}  // namespace
}  // namespace wsx::gen
