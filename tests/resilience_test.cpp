// Tests for the resilience supervisor (src/resilience/*): journal
// round-trips, checkpoint/resume equivalence, per-task deadlines, poison
// quarantine, budget degradation, and the determinism contract — the
// outcome sequence is identical for any worker count and for any
// interrupt/resume split.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "resilience/journal.hpp"
#include "resilience/supervisor.hpp"

namespace wsx::resilience {
namespace {

/// A synthetic campaign of `n` tasks: task i charges `cost` virtual ms and
/// returns the record {"task":i}. Tasks listed in `poison` throw instead.
CampaignTasks make_campaign(std::size_t n, std::uint64_t cost = 1,
                            std::vector<std::size_t> poison = {}) {
  CampaignTasks tasks;
  tasks.campaign = "synthetic";
  tasks.config_json = "{\"n\":" + std::to_string(n) + "}";
  for (std::size_t i = 0; i < n; ++i) {
    tasks.ids.push_back("task-" + std::to_string(i));
  }
  tasks.run = [cost, poison = std::move(poison)](std::size_t index, TaskContext& context) {
    context.charge(cost);
    for (const std::size_t bad : poison) {
      if (bad == index) throw std::runtime_error("poison task " + std::to_string(index));
    }
    return "{\"task\":" + std::to_string(index) + "}";
  };
  return tasks;
}

/// Serializes the parts of a report the campaigns fold from, so two runs
/// can be compared for byte-identical equivalence. The `resumed` provenance
/// flag is deliberately excluded — it differs between a straight and a
/// resumed run without affecting any folded output.
std::string fold_fingerprint(const SupervisorReport& report) {
  std::string out;
  for (const TaskOutcome& task : report.tasks) {
    out += std::to_string(task.task) + "|" + task.id + "|" + to_string(task.state) + "|" +
           (task.timed_out ? "T" : "-") + "|" + std::to_string(task.virtual_ms) + "|" +
           task.record + "\n";
  }
  out += "degraded=" + std::to_string(report.degraded) +
         " completed=" + std::to_string(report.completed) +
         " quarantined=" + std::to_string(report.quarantined) +
         " not_admitted=" + std::to_string(report.not_admitted) +
         " virtual_ms=" + std::to_string(report.virtual_ms_total);
  return out;
}

/// A scratch journal path that is removed when the test ends.
struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(testing::TempDir() + "wsx_resilience_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

// ------------------------------------------------------------------ journal

TEST(Journal, HeaderAndEntriesRoundTrip) {
  Journal journal;
  journal.campaign = "study";
  journal.config_json = "{\"samples\":3}";
  journal.tasks = 7;
  journal.options.checkpoint_every = 4;
  journal.options.task_deadline_ms = 250;
  journal.options.quarantine_after = 2;
  journal.options.budget_ms = 1000;
  journal.options.budget_tasks = 6;
  JournalEntry done;
  done.task = 0;
  done.id = "Metro 2.3|EchoFoo";
  done.state = JournalState::kCompleted;
  done.attempts = 1;
  done.virtual_ms = 12;
  done.record = "{\"ok\":true}";
  JournalEntry parked;
  parked.task = 3;
  parked.id = "Axis2 1.6|EchoBar";
  parked.state = JournalState::kQuarantined;
  parked.attempts = 2;
  parked.timed_out = true;
  parked.virtual_ms = 500;
  parked.reason = "task deadline of 250 virtual ms exceeded";
  journal.entries = {done, parked};

  const std::string text = journal.header_line() + "\n" + Journal::entry_line(done) + "\n" +
                           Journal::entry_line(parked) + "\n";
  Result<Journal> parsed = Journal::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->campaign, journal.campaign);
  EXPECT_EQ(parsed->config_json, journal.config_json);
  EXPECT_EQ(parsed->tasks, journal.tasks);
  EXPECT_TRUE(parsed->options == journal.options);
  ASSERT_EQ(parsed->entries.size(), 2u);
  EXPECT_EQ(parsed->entries[0].id, done.id);
  EXPECT_EQ(parsed->entries[0].record, done.record);
  EXPECT_EQ(parsed->entries[1].id, parked.id);
  EXPECT_EQ(parsed->entries[1].state, JournalState::kQuarantined);
  EXPECT_TRUE(parsed->entries[1].timed_out);
  EXPECT_EQ(parsed->entries[1].reason, parked.reason);
}

TEST(Journal, ParseRejectsGarbage) {
  EXPECT_FALSE(Journal::parse("").ok());
  EXPECT_FALSE(Journal::parse("not json\n").ok());
  EXPECT_FALSE(Journal::parse("{\"no\":\"header fields\"}\n").ok());
}

TEST(Journal, TruncatedTailIsDiscardedOnlyInTolerantMode) {
  Journal journal;
  journal.campaign = "synthetic";
  journal.config_json = "{\"n\":2}";
  journal.tasks = 2;
  JournalEntry done;
  done.task = 0;
  done.id = "task-0";
  done.state = JournalState::kCompleted;
  done.record = "{\"task\":0}";
  const std::string full = journal.header_line() + "\n" + Journal::entry_line(done) + "\n";
  const std::string cut = full.substr(0, full.size() - 5);  // crash mid-append

  // Strict parse refuses; tolerant parse drops the tail and says so.
  EXPECT_FALSE(Journal::parse(cut).ok());
  JournalParseOptions tolerant;
  std::string note;
  tolerant.tolerate_truncated_tail = true;
  tolerant.diagnostic = &note;
  Result<Journal> parsed = Journal::parse(cut, tolerant);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_TRUE(parsed->entries.empty());
  EXPECT_NE(note.find("truncated trailing record"), std::string::npos);

  // A malformed line with more journal *after* it is corruption, not a
  // crash signature: tolerant mode must still hard-fail.
  const std::string corrupt =
      journal.header_line() + "\n{\"task\":0,\"id\"\n" + Journal::entry_line(done) + "\n";
  EXPECT_FALSE(Journal::parse(corrupt, tolerant).ok());
}

TEST(Journal, CutAtEveryByteOffsetStillConvergesOnResume) {
  ScratchJournal scratch("cut");
  const CampaignTasks tasks = make_campaign(9, 2, {4});
  SupervisorOptions base;
  base.journal.checkpoint_every = 2;
  base.journal.quarantine_after = 2;

  Result<SupervisorReport> straight = supervise(tasks, base);
  ASSERT_TRUE(straight.ok());
  const std::string expected = fold_fingerprint(*straight);

  SupervisorOptions journaled = base;
  journaled.checkpoint_path = scratch.path;
  ASSERT_TRUE(supervise(tasks, journaled).ok());
  const std::string full = scratch.read();
  ASSERT_FALSE(full.empty());
  const std::size_t header_end = full.find('\n');
  ASSERT_NE(header_end, std::string::npos);

  // Simulate a crash at every possible byte: any cut at or past the end of
  // the header text must still parse in tolerant mode and resume to the
  // exact same outcome sequence as an uninterrupted run; cuts inside the
  // header lose the campaign identity and must stay hard errors.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    JournalParseOptions tolerant;
    std::string note;
    tolerant.tolerate_truncated_tail = true;
    tolerant.diagnostic = &note;
    Result<Journal> parsed = Journal::parse(full.substr(0, cut), tolerant);
    if (cut < header_end) {
      EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(parsed.ok()) << "cut=" << cut << ": " << parsed.error().message;
    // The diagnostic fires exactly when the cut lands mid-line.
    const bool clean_cut =
        full[cut - 1] == '\n' || (cut < full.size() && full[cut] == '\n');
    EXPECT_EQ(note.empty(), clean_cut) << "cut=" << cut;

    SupervisorOptions resumed = base;
    resumed.resume = &parsed.value();
    Result<SupervisorReport> report = supervise(tasks, resumed);
    ASSERT_TRUE(report.ok()) << "cut=" << cut << ": " << report.error().message;
    EXPECT_EQ(fold_fingerprint(*report), expected) << "cut=" << cut;
  }
}

// --------------------------------------------------------------- supervisor

TEST(Supervisor, CompletesEveryTaskInOrder) {
  const CampaignTasks tasks = make_campaign(10);
  SupervisorOptions options;
  options.jobs = 1;
  Result<SupervisorReport> report = supervise(tasks, options);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report->completed, 10u);
  EXPECT_EQ(report->executed, 10u);
  EXPECT_EQ(report->quarantined, 0u);
  EXPECT_EQ(report->virtual_ms_total, 10u);
  EXPECT_FALSE(report->degraded);
  for (std::size_t i = 0; i < report->tasks.size(); ++i) {
    EXPECT_EQ(report->tasks[i].task, i);
    EXPECT_EQ(report->tasks[i].id, "task-" + std::to_string(i));
    EXPECT_EQ(report->tasks[i].record, "{\"task\":" + std::to_string(i) + "}");
  }
}

TEST(Supervisor, OutcomeSequenceIsIdenticalAcrossWorkerCounts) {
  const CampaignTasks tasks = make_campaign(23, 3, {5, 11});
  SupervisorOptions one;
  one.jobs = 1;
  one.journal.checkpoint_every = 4;
  SupervisorOptions eight = one;
  eight.jobs = 8;
  Result<SupervisorReport> a = supervise(tasks, one);
  Result<SupervisorReport> b = supervise(tasks, eight);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(fold_fingerprint(*a), fold_fingerprint(*b));
  EXPECT_EQ(supervisor_json(*a), supervisor_json(*b));
}

TEST(Supervisor, DeadlineQuarantinesTheSlowTask) {
  CampaignTasks tasks = make_campaign(4);
  tasks.run = [](std::size_t index, TaskContext& context) {
    context.charge(index == 2 ? 50 : 1);  // task 2 blows its deadline
    return std::string("{}");
  };
  SupervisorOptions options;
  options.journal.task_deadline_ms = 10;
  options.journal.quarantine_after = 3;
  Result<SupervisorReport> report = supervise(tasks, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->completed, 3u);
  EXPECT_EQ(report->quarantined, 1u);
  const TaskOutcome& slow = report->tasks[2];
  EXPECT_EQ(slow.state, TaskState::kQuarantined);
  EXPECT_TRUE(slow.timed_out);
  EXPECT_EQ(slow.attempts, 3u);  // retried up to the quarantine threshold
  EXPECT_EQ(slow.virtual_ms, 150u);  // all three attempts charged
  EXPECT_NE(slow.reason.find("deadline"), std::string::npos);
}

TEST(Supervisor, PoisonTaskIsParkedWithDiagnostics) {
  const CampaignTasks tasks = make_campaign(6, 1, {4});
  SupervisorOptions options;
  options.journal.quarantine_after = 2;
  Result<SupervisorReport> report = supervise(tasks, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->quarantined, 1u);
  const TaskOutcome& parked = report->tasks[4];
  EXPECT_EQ(parked.state, TaskState::kQuarantined);
  EXPECT_FALSE(parked.timed_out);
  EXPECT_EQ(parked.attempts, 2u);
  EXPECT_EQ(parked.reason, "poison task 4");
  EXPECT_TRUE(parked.record.empty());
  // The quarantine section names the parked task.
  EXPECT_NE(supervisor_markdown(*report).find("poison task 4"), std::string::npos);
  EXPECT_NE(supervisor_json(*report).find("\"id\":\"task-4\""), std::string::npos);
}

TEST(Supervisor, TaskBudgetStopsAdmissionAtBlockBoundary) {
  const CampaignTasks tasks = make_campaign(10);
  SupervisorOptions options;
  options.journal.checkpoint_every = 2;
  options.journal.budget_tasks = 3;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    options.jobs = jobs;
    Result<SupervisorReport> report = supervise(tasks, options);
    ASSERT_TRUE(report.ok());
    // Blocks of 2: after two blocks processed=4 >= 3, so admission stops.
    EXPECT_TRUE(report->degraded);
    EXPECT_EQ(report->completed, 4u);
    EXPECT_EQ(report->not_admitted, 6u);
    EXPECT_EQ(report->tasks[4].state, TaskState::kNotAdmitted);
  }
}

TEST(Supervisor, VirtualMsBudgetStopsAdmissionAtBlockBoundary) {
  const CampaignTasks tasks = make_campaign(10, 10);
  SupervisorOptions options;
  options.journal.checkpoint_every = 1;
  options.journal.budget_ms = 25;
  Result<SupervisorReport> report = supervise(tasks, options);
  ASSERT_TRUE(report.ok());
  // 10 ms per task, checked per block: 10, 20, 30 >= 25 → three completed.
  EXPECT_TRUE(report->degraded);
  EXPECT_EQ(report->completed, 3u);
  EXPECT_EQ(report->not_admitted, 7u);
  EXPECT_EQ(report->virtual_ms_total, 30u);
}

TEST(Supervisor, TripAfterCheckpointMarksRestNotAdmitted) {
  ScratchJournal scratch("trip");
  const CampaignTasks tasks = make_campaign(9);
  SupervisorOptions options;
  options.journal.checkpoint_every = 2;
  options.checkpoint_path = scratch.path;
  options.trip_after_tasks = 3;
  Result<SupervisorReport> report = supervise(tasks, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->tripped);
  EXPECT_EQ(report->executed, 4u);  // two full blocks before the trip fired
  EXPECT_EQ(report->not_admitted, 5u);
  // The journal holds exactly the executed entries.
  Result<Journal> journal = Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  EXPECT_EQ(journal->entries.size(), 4u);
  EXPECT_EQ(journal->campaign, "synthetic");
}

TEST(Supervisor, ResumeSkipsJournaledWorkAndMatchesStraightRun) {
  ScratchJournal scratch("resume");
  const CampaignTasks tasks = make_campaign(11, 2, {7});
  SupervisorOptions base;
  base.journal.checkpoint_every = 3;
  base.journal.quarantine_after = 2;

  SupervisorOptions straight = base;
  Result<SupervisorReport> uninterrupted = supervise(tasks, straight);
  ASSERT_TRUE(uninterrupted.ok());

  SupervisorOptions interrupted = base;
  interrupted.checkpoint_path = scratch.path;
  interrupted.trip_after_tasks = 4;
  Result<SupervisorReport> tripped = supervise(tasks, interrupted);
  ASSERT_TRUE(tripped.ok());
  ASSERT_TRUE(tripped->tripped);

  Result<Journal> journal = Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  SupervisorOptions resumed = base;
  resumed.checkpoint_path = scratch.path;
  resumed.resume = &journal.value();
  resumed.jobs = 8;  // a different worker count must not change anything
  Result<SupervisorReport> finished = supervise(tasks, resumed);
  ASSERT_TRUE(finished.ok()) << finished.error().message;

  EXPECT_FALSE(finished->tripped);
  EXPECT_GT(finished->resumed, 0u);
  EXPECT_EQ(fold_fingerprint(*finished), fold_fingerprint(*uninterrupted));

  // The appended journal now covers the whole campaign: a second resume
  // replays everything and still matches.
  Result<Journal> full = Journal::parse(scratch.read());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->entries.size(), tasks.ids.size());
  SupervisorOptions replay = base;
  replay.resume = &full.value();
  Result<SupervisorReport> replayed = supervise(tasks, replay);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->resumed, tasks.ids.size());
  EXPECT_EQ(fold_fingerprint(*replayed), fold_fingerprint(*uninterrupted));
}

TEST(Supervisor, ResumeMismatchIsRejected) {
  ScratchJournal scratch("mismatch");
  const CampaignTasks tasks = make_campaign(5);
  SupervisorOptions options;
  options.checkpoint_path = scratch.path;
  ASSERT_TRUE(supervise(tasks, options).ok());
  Result<Journal> journal = Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok());

  SupervisorOptions resumed;
  resumed.resume = &journal.value();

  CampaignTasks other_campaign = make_campaign(5);
  other_campaign.campaign = "different";
  EXPECT_EQ(supervise(other_campaign, resumed).error().code, "resilience.resume-mismatch");

  CampaignTasks other_config = make_campaign(5);
  other_config.config_json = "{\"n\":99}";
  EXPECT_EQ(supervise(other_config, resumed).error().code, "resilience.resume-mismatch");

  EXPECT_EQ(supervise(make_campaign(6), resumed).error().code, "resilience.resume-mismatch");

  SupervisorOptions other_knobs;
  other_knobs.resume = &journal.value();
  other_knobs.journal.task_deadline_ms = 123;
  EXPECT_EQ(supervise(tasks, other_knobs).error().code, "resilience.resume-mismatch");
}

TEST(Supervisor, ExportsCountersThroughObs) {
  obs::Registry registry;
  const CampaignTasks tasks = make_campaign(8, 1, {3});
  SupervisorOptions options;
  options.journal.quarantine_after = 2;
  options.metrics = &registry;
  ASSERT_TRUE(supervise(tasks, options).ok());
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("resilience.tasks_total"), std::string::npos);
  EXPECT_NE(json.find("resilience.tasks_completed"), std::string::npos);
  EXPECT_NE(json.find("resilience.tasks_quarantined"), std::string::npos);
  EXPECT_NE(json.find("resilience.attempts"), std::string::npos);
}

TEST(Supervisor, ChargeAccumulatesAcrossAttemptsButDeadlineIsPerAttempt) {
  TaskContext context(10);
  context.charge(8);
  context.begin_attempt();
  context.charge(8);  // would exceed 10 if attempts accumulated
  EXPECT_EQ(context.attempt_ms(), 8u);
  EXPECT_EQ(context.total_ms(), 16u);
  EXPECT_THROW(context.charge(5), DeadlineExceeded);
}

}  // namespace
}  // namespace wsx::resilience
