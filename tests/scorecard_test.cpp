// Tests for the cross-campaign tool scorecard (src/interop/scorecard.*).
#include <gtest/gtest.h>

#include "interop/scorecard.hpp"

namespace wsx::interop {
namespace {

StudyConfig scaled_config() {
  StudyConfig config;
  config.java_spec.plain_beans = 15;
  config.java_spec.throwable_clean = 2;
  config.java_spec.throwable_raw = 1;
  config.java_spec.raw_generic_beans = 1;
  config.java_spec.anytype_array_beans = 1;
  config.java_spec.no_default_ctor = 2;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.java_spec.generic_types = 1;
  config.dotnet_spec.plain_types = 15;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 2;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 3;
  config.dotnet_spec.no_default_ctor = 3;
  config.dotnet_spec.generic_types = 2;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;
  return config;
}

class ScorecardFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const StudyConfig config = scaled_config();
    fuzz::FuzzConfig fuzz_config;
    fuzz_config.corpus_per_server = 1;
    scorecard_ = new Scorecard(build_scorecard(run_study(config),
                                               run_communication_study(config),
                                               fuzz::run_fuzz_campaign(fuzz_config)));
  }
  static void TearDownTestSuite() {
    delete scorecard_;
    scorecard_ = nullptr;
  }
  static const Scorecard& scorecard() { return *scorecard_; }
  static Scorecard* scorecard_;
};

Scorecard* ScorecardFixture::scorecard_ = nullptr;

TEST_F(ScorecardFixture, OneCardPerTool) {
  EXPECT_EQ(scorecard().tools.size(), 11u);
  EXPECT_NE(scorecard().find("Zend Framework 1.9"), nullptr);
  EXPECT_EQ(scorecard().find("Nope"), nullptr);
}

TEST_F(ScorecardFixture, SortedByStaticFailureRate) {
  for (std::size_t i = 1; i < scorecard().tools.size(); ++i) {
    EXPECT_LE(scorecard().tools[i - 1].static_failure_rate(),
              scorecard().tools[i].static_failure_rate());
  }
}

TEST_F(ScorecardFixture, ZendIsStaticallyCleanButFailsOnTheWire) {
  const ToolScorecard* zend = scorecard().find("Zend Framework 1.9");
  ASSERT_NE(zend, nullptr);
  EXPECT_EQ(zend->generation_errors + zend->compilation_errors, 0u);
  EXPECT_GT(zend->wire_failures, 0u);
}

TEST_F(ScorecardFixture, ZendRanksFirstStatically) {
  // Zend is the only tool with zero static errors at every scale — it
  // tolerates everything (and pays for it on the wire).
  EXPECT_EQ(scorecard().tools.front().client, "Zend Framework 1.9");
  EXPECT_EQ(scorecard().tools.front().static_failure_rate(), 0.0);
}

TEST_F(ScorecardFixture, RatesAreBoundedPercentages) {
  for (const ToolScorecard& tool : scorecard().tools) {
    EXPECT_GE(tool.static_failure_rate(), 0.0);
    EXPECT_LE(tool.static_failure_rate(), 100.0);
    EXPECT_GE(tool.wire_failure_rate(), 0.0);
    EXPECT_LE(tool.wire_failure_rate(), 100.0);
    EXPECT_LE(tool.silent_on_broken, tool.fuzz_mutants);
  }
}

TEST_F(ScorecardFixture, FormatRendersEveryTool) {
  const std::string text = format_scorecard(scorecard());
  EXPECT_NE(text.find("Zend Framework 1.9"), std::string::npos);
  EXPECT_NE(text.find("Apache Axis1 1.4"), std::string::npos);
  EXPECT_NE(text.find("silent-on-broken"), std::string::npos);
}

TEST(ScorecardMath, EmptyCardHasZeroRates) {
  ToolScorecard empty;
  EXPECT_EQ(empty.static_failure_rate(), 0.0);
  EXPECT_EQ(empty.wire_failure_rate(), 0.0);
  EXPECT_EQ(empty.wire_resilience_rate(), 0.0);
}

TEST_F(ScorecardFixture, WithoutChaosTheResilienceColumnIsEmpty) {
  for (const ToolScorecard& tool : scorecard().tools) {
    EXPECT_EQ(tool.chaos_challenged, 0u);
    EXPECT_EQ(tool.chaos_resilient, 0u);
  }
}

TEST(ScorecardChaos, ChaosOverloadFillsTheResilienceColumn) {
  const StudyConfig config = scaled_config();
  fuzz::FuzzConfig fuzz_config;
  fuzz_config.corpus_per_server = 1;
  chaos::ChaosConfig chaos_config;
  chaos_config.java_spec = config.java_spec;
  chaos_config.dotnet_spec = config.dotnet_spec;
  chaos_config.plan.rate_percent = 60;
  chaos_config.jobs = 2;
  const Scorecard scorecard = build_scorecard(
      run_study(config), run_communication_study(config),
      fuzz::run_fuzz_campaign(fuzz_config), chaos::run_chaos_study(chaos_config));
  std::size_t challenged = 0;
  for (const ToolScorecard& tool : scorecard.tools) {
    challenged += tool.chaos_challenged;
    EXPECT_LE(tool.chaos_resilient, tool.chaos_challenged);
    EXPECT_GE(tool.wire_resilience_rate(), 0.0);
    EXPECT_LE(tool.wire_resilience_rate(), 100.0);
  }
  EXPECT_GT(challenged, 0u);
  // The retriers must out-recover the aborters under the same fault plan.
  const ToolScorecard* metro = scorecard.find("Oracle Metro 2.3");
  const ToolScorecard* gsoap = scorecard.find("gSOAP Toolkit 2.8.16");
  ASSERT_NE(metro, nullptr);
  ASSERT_NE(gsoap, nullptr);
  EXPECT_GT(metro->wire_resilience_rate(), gsoap->wire_resilience_rate());
  EXPECT_NE(format_scorecard(scorecard).find("resil%"), std::string::npos);
}

}  // namespace
}  // namespace wsx::interop
