// The client tolerance matrix, exhaustively: one synthetic description per
// feature, every client tool, and the expected reaction (Error / Warning /
// Silent) for each. This pins the complete behavioural model that DESIGN.md
// §3 derives from the paper — any policy regression fails exactly one cell.
#include <gtest/gtest.h>

#include "frameworks/registry.hpp"
#include "test_helpers.hpp"
#include "wsdl/writer.hpp"

namespace wsx::frameworks {
namespace {

using testing::compliant_echo_definitions;

/// Expected reactions in Table II client order:
/// Metro, Axis1, Axis2, CXF, JBossWS, C#, VB, JScript, gSOAP, Zend, suds.
/// 'E' = generation error, 'W' = warning (no error), 'S' = silent success.
struct FeatureCase {
  const char* name;
  void (*inject)(wsdl::Definitions&);
  const char* expected;  // 11 chars
};

void foreign_type_ref(wsdl::Definitions& defs) {
  xsd::ElementDecl bad;
  bad.name = "address";
  bad.type = xml::QName{std::string(xml::ns::kWsAddressing), "EndpointReferenceType", "wsa"};
  defs.schemas.front().complex_types.front().particles.emplace_back(std::move(bad));
  defs.extra_namespaces.emplace_back("wsa", std::string(xml::ns::kWsAddressing));
}

void foreign_attr_ref(wsdl::Definitions& defs) {
  xsd::AttributeDecl attr;
  attr.ref = xml::QName{std::string(xml::ns::kWsAddressing), "IsReferenceParameter", "wsa"};
  defs.schemas.front().complex_types.front().attributes.push_back(std::move(attr));
  defs.extra_namespaces.emplace_back("wsa", std::string(xml::ns::kWsAddressing));
}

void dangling_attr_group(wsdl::Definitions& defs) {
  defs.schemas.front().complex_types.front().attribute_groups.push_back(
      {xml::QName{std::string(xml::ns::kXmlNs), "specialAttrs", "xml"}});
  defs.schemas.front().imports.push_back({std::string(xml::ns::kXmlNs), ""});
}

void schema_element_ref(wsdl::Definitions& defs) {
  xsd::ElementDecl ref;
  ref.ref = xml::QName{std::string(xml::ns::kXsd), "schema", "s"};
  defs.schemas.front().complex_types.front().particles.emplace_back(std::move(ref));
}

void xsd_attr_ref(wsdl::Definitions& defs) {
  xsd::AttributeDecl lang;
  lang.ref = xml::QName{std::string(xml::ns::kXsd), "lang", "s"};
  defs.schemas.front().complex_types.front().attributes.push_back(std::move(lang));
}

void wildcard_only(wsdl::Definitions& defs) {
  xsd::ComplexType table;
  table.name = "DataTable";
  table.particles.emplace_back(xsd::AnyParticle{});
  defs.schemas.front().complex_types.push_back(std::move(table));
}

void zero_operations(wsdl::Definitions& defs) {
  defs.port_types.front().operations.clear();
  defs.bindings.front().operations.clear();
  defs.messages.clear();
  defs.schemas.front().elements.clear();
}

void dual_type(wsdl::Definitions& defs) {
  defs.schemas.front().elements.front().type = xsd::qname(xsd::Builtin::kString);
}

void encoded_use(wsdl::Definitions& defs) {
  defs.bindings.front().operations.front().input_use = wsdl::SoapUse::kEncoded;
}

void missing_soap_action(wsdl::Definitions& defs) {
  defs.bindings.front().operations.front().has_soap_action = false;
}

void extension_element(wsdl::Definitions& defs) {
  xml::Element stanza{"jaxws:bindings"};
  stanza.declare_namespace("jaxws", "http://java.sun.com/xml/ns/jaxws");
  defs.extension_elements.push_back(std::move(stanza));
}

void missing_tns(wsdl::Definitions& defs) { defs.target_namespace.clear(); }

void dangling_message(wsdl::Definitions& defs) { defs.messages.erase(defs.messages.begin()); }

void dangling_part(wsdl::Definitions& defs) {
  defs.schemas.front().elements.front().name = "echoRenamed";
}

void duplicate_operations(wsdl::Definitions& defs) {
  defs.port_types.front().operations.push_back(defs.port_types.front().operations.front());
  defs.bindings.front().operations.push_back(defs.bindings.front().operations.front());
}

void locationless_import(wsdl::Definitions& defs) {
  defs.imports.push_back({"urn:elsewhere", ""});
}

//                                   M  A1 A2 C  J  C# VB JS gS Z  su
constexpr FeatureCase kCases[] = {
    {"foreign-type-ref", foreign_type_ref, "EEEEEEEESSE"},
    {"foreign-attr-ref", foreign_attr_ref, "EESEEEEESSE"},
    {"dangling-attr-group", dangling_attr_group, "SSSSSEEEESS"},
    {"schema-element-ref", schema_element_ref, "ESSEESSSSSS"},
    {"xsd-attr-ref", xsd_attr_ref, "ESSEESSSSSS"},
    {"wildcard-only-content", wildcard_only, "ESSEESSSSSS"},
    {"zero-operations", zero_operations, "ESESSEEEWWW"},
    {"dual-type-declaration", dual_type, "WSSSSEEESSS"},
    {"encoded-use", encoded_use, "SSSSSWWWSSW"},
    {"missing-soap-action", missing_soap_action, "SSSSSSSSSSS"},
    {"unknown-extension-element", extension_element, "SSSSSSSWSSS"},
    // Clearing the targetNamespace also strands the tns-qualified part
    // references, so the stricter binders see a dangling part as well.
    {"missing-target-namespace", missing_tns, "ESEEEEEEWSE"},
    {"dangling-message-reference", dangling_message, "ESSEEEEESSS"},
    {"dangling-part-reference", dangling_part, "ESEEEEEESSE"},
    {"duplicate-operations", duplicate_operations, "ESEEEEEESSS"},
    {"locationless-import", locationless_import, "ESSEEEEEWSS"},
};

class PolicyMatrix : public ::testing::TestWithParam<FeatureCase> {};

TEST_P(PolicyMatrix, EveryClientReactsAsModeled) {
  const FeatureCase& feature = GetParam();
  wsdl::Definitions defs = compliant_echo_definitions();
  feature.inject(defs);
  const std::string text = wsdl::to_string(defs);

  const auto clients = make_clients();
  ASSERT_EQ(clients.size(), 11u);
  ASSERT_EQ(std::string(feature.expected).size(), 11u);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const GenerationResult result = clients[i]->generate(text);
    char reaction = 'S';
    if (result.diagnostics.has_errors()) {
      reaction = 'E';
    } else if (result.diagnostics.has_warnings()) {
      reaction = 'W';
    }
    EXPECT_EQ(reaction, feature.expected[i])
        << feature.name << " / " << clients[i]->name();
  }
}

TEST_P(PolicyMatrix, BaselineIsCleanForEveryClient) {
  // Sanity: without the injection, every client consumes the description
  // silently — so each matrix cell isolates exactly one feature.
  const std::string text = wsdl::to_string(compliant_echo_definitions());
  for (const auto& client : make_clients()) {
    const GenerationResult result = client->generate(text);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client->name();
    EXPECT_FALSE(result.diagnostics.has_warnings()) << client->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Features, PolicyMatrix, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<FeatureCase>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace wsx::frameworks
