// Tests for the rpc/literal binding variant of the description builder.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/wsdl_builder.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "wsi/profile.hpp"

namespace wsx::frameworks {
namespace {

wsdl::Definitions rpc_definitions() {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const catalog::TypeInfo* type = catalog.find(catalog::java_names::kXmlGregorianCalendar);
  WsdlBuilderOptions options;
  options.namespace_root = "http://rpc.example.org/";
  options.endpoint_root = "http://localhost/rpc/";
  options.binding_style = wsdl::SoapStyle::kRpc;
  return build_echo_wsdl(ServiceSpec{type}, options);
}

TEST(RpcStyle, PartsUseTypeNotElement) {
  const wsdl::Definitions defs = rpc_definitions();
  for (const wsdl::Message& message : defs.messages) {
    for (const wsdl::Part& part : message.parts) {
      EXPECT_TRUE(part.element.empty()) << message.name;
      EXPECT_FALSE(part.type.empty()) << message.name;
    }
  }
  EXPECT_EQ(defs.bindings.front().style, wsdl::SoapStyle::kRpc);
}

TEST(RpcStyle, NoWrapperElementsAreDeclared) {
  const wsdl::Definitions defs = rpc_definitions();
  EXPECT_TRUE(defs.schemas.front().elements.empty());
  EXPECT_FALSE(defs.schemas.front().complex_types.empty());  // the bean stays
}

TEST(RpcStyle, PassesWsiBasicProfile) {
  const wsi::ComplianceReport report = wsi::check(rpc_definitions());
  EXPECT_TRUE(report.compliant()) << report.summary();
  EXPECT_FALSE(report.failed("R2203"));
}

TEST(RpcStyle, ElementPartsInRpcBindingFailWsi) {
  wsdl::Definitions defs = rpc_definitions();
  defs.messages.front().parts.front().type = {};
  defs.messages.front().parts.front().element =
      xml::QName{defs.target_namespace, "echo"};
  EXPECT_TRUE(wsi::check(defs).failed("R2203"));
}

TEST(RpcStyle, RoundTripsThroughText) {
  const wsdl::Definitions defs = rpc_definitions();
  Result<wsdl::Definitions> reparsed = wsdl::parse(wsdl::to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->bindings.front().style, wsdl::SoapStyle::kRpc);
  EXPECT_EQ(reparsed->messages, defs.messages);
}

TEST(RpcStyle, ClientsConsumeRpcDescriptions) {
  const std::string text = wsdl::to_string(rpc_definitions());
  for (const auto& client : make_clients()) {
    GenerationResult result = client->generate(text);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client->name();
    ASSERT_TRUE(result.produced_artifacts()) << client->name();
    EXPECT_EQ(result.artifacts->client_operations.size(), 1u) << client->name();
  }
}

}  // namespace
}  // namespace wsx::frameworks
