// Tests for the higher-complexity (CRUD) service shape — the paper's
// future-work extension.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "soap/message.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

namespace wsx::frameworks {
namespace {

DeployedService crud_service(std::string_view type_name) {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = make_server("Metro 2.3");
  const catalog::TypeInfo* type = catalog.find(type_name);
  EXPECT_NE(type, nullptr);
  ServiceSpec spec{type, ServiceShape::kCrud};
  Result<DeployedService> service = server->deploy(spec);
  EXPECT_TRUE(service.ok());
  return std::move(service.value());
}

TEST(CrudShape, NamesAndMetadata) {
  EXPECT_STREQ(to_string(ServiceShape::kSimpleEcho), "simple-echo");
  EXPECT_STREQ(to_string(ServiceShape::kCrud), "crud");
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const catalog::TypeInfo* type = catalog.find(catalog::java_names::kSimpleDateFormat);
  EXPECT_EQ((ServiceSpec{type, ServiceShape::kCrud}).service_name(),
            "CrudSimpleDateFormat");
}

TEST(CrudShape, DeclaresThreeOperations) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  ASSERT_EQ(service.wsdl.port_types.size(), 1u);
  const wsdl::PortType& port_type = service.wsdl.port_types.front();
  ASSERT_EQ(port_type.operations.size(), 3u);
  EXPECT_EQ(port_type.operations[0].name, "store");
  EXPECT_EQ(port_type.operations[1].name, "fetch");
  EXPECT_EQ(port_type.operations[2].name, "list");
  EXPECT_EQ(service.wsdl.bindings.front().operations.size(), 3u);
  EXPECT_EQ(service.wsdl.messages.size(), 6u);
}

TEST(CrudShape, ListReturnsAnUnboundedArray) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  const xsd::Schema& schema = service.wsdl.schemas.front();
  const xsd::ElementDecl* wrapper = schema.find_element("listResponse");
  ASSERT_NE(wrapper, nullptr);
  ASSERT_TRUE(wrapper->inline_type.has_value());
  const std::vector<const xsd::ElementDecl*> elements = wrapper->inline_type->elements();
  ASSERT_EQ(elements.size(), 1u);
  EXPECT_EQ(elements.front()->max_occurs, xsd::kUnbounded);
}

TEST(CrudShape, StaysWsiCompliantForPlainTypes) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  const wsi::ComplianceReport report = wsi::check(service.wsdl);
  EXPECT_TRUE(report.compliant()) << report.summary();
}

TEST(CrudShape, ServedTextRoundTrips) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  Result<wsdl::Definitions> reparsed = wsdl::parse(service.wsdl_text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->operation_count(), 3u);
}

TEST(CrudShape, ClientsGenerateThreeProxyMethods) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  for (const auto& client : make_clients()) {
    GenerationResult result = client->generate(service.wsdl_text);
    ASSERT_TRUE(result.produced_artifacts()) << client->name();
    EXPECT_EQ(result.artifacts->client_operations.size(), 3u) << client->name();
  }
}

TEST(CrudShape, FaultAttachesToStoreOperation) {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (!type.has(catalog::Trait::kThrowableDerived) ||
        type.has(catalog::Trait::kRawGenericApi)) {
      continue;
    }
    const DeployedService service = crud_service(type.qualified_name());
    const wsdl::PortType& port_type = service.wsdl.port_types.front();
    EXPECT_EQ(port_type.operations[0].faults.size(), 1u);
    EXPECT_TRUE(port_type.operations[1].faults.empty());
    EXPECT_TRUE(wsi::check(service.wsdl).compliant());
    break;
  }
}

TEST(CrudShape, AllOperationsInvocableOverSoap) {
  const DeployedService service = crud_service(catalog::java_names::kXmlGregorianCalendar);
  const auto server = make_server("Metro 2.3");
  // store
  Result<soap::Envelope> store =
      soap::build_request(service.wsdl, "store", {{"arg0", "payload"}});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(server->handle_request(service, *store).is_fault());
  // fetch
  Result<soap::Envelope> fetch =
      soap::build_request(service.wsdl, "fetch", {{"arg0", "id-1"}});
  ASSERT_TRUE(fetch.ok());
  const soap::Envelope fetched = server->handle_request(service, *fetch);
  EXPECT_FALSE(fetched.is_fault());
  EXPECT_EQ(soap::response_value(fetched).value(), "id-1");
  // list (no arguments)
  Result<soap::Envelope> list = soap::build_request(service.wsdl, "list", {});
  ASSERT_TRUE(list.ok());
  EXPECT_FALSE(server->handle_request(service, *list).is_fault());
}

TEST(CrudShape, W3CEndpointReferenceStillBreaksTheSameClients) {
  const DeployedService service = crud_service(catalog::java_names::kW3CEndpointReference);
  EXPECT_TRUE(wsi::check(service.wsdl).failed("R2102"));
  const auto metro = make_client("Oracle Metro 2.3");
  EXPECT_TRUE(metro->generate(service.wsdl_text).diagnostics.has_errors());
  const auto gsoap = make_client("gSOAP Toolkit 2.8.16");
  EXPECT_FALSE(gsoap->generate(service.wsdl_text).diagnostics.has_errors());
}

TEST(CrudShape, JBossStillPublishesZeroOperationCrudWsdl) {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = make_server("JBossWS CXF 4.2.3");
  const catalog::TypeInfo* future = catalog.find(catalog::java_names::kFuture);
  Result<DeployedService> service =
      server->deploy(ServiceSpec{future, ServiceShape::kCrud});
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->wsdl.operation_count(), 0u);
}

}  // namespace
}  // namespace wsx::frameworks
