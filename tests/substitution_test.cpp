// Tests for the substitution index (src/analysis/substitution.*): building
// it folds the worst per-client outcome, the JSON document round-trips,
// and substitute() answers ranked queries from a deserialized index alone
// — no corpus rescan.
#include <gtest/gtest.h>

#include <string>

#include "analysis/predict.hpp"
#include "analysis/substitution.hpp"

namespace wsx::analysis::predict {
namespace {

PredictOptions tiny_options() {
  PredictOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 3;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  options.java_spec = java;
  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 3;
  dotnet.dataset_plain = 1;
  dotnet.deep_nesting_pathological = 1;
  options.dotnet_spec = dotnet;
  options.jobs = 2;
  options.join_study = false;
  return options;
}

SubstitutionIndex tiny_index() { return build_index(predict_corpus(tiny_options())); }

TEST(SubstitutionIndex, BuildFoldsWorstOutcomePerClient) {
  const PredictReport report = predict_corpus(tiny_options());
  const SubstitutionIndex index = build_index(report);

  ASSERT_EQ(index.clients.size(), client_models().size());
  ASSERT_EQ(index.entries.size(), report.services.size());
  for (std::size_t i = 0; i < index.entries.size(); ++i) {
    const IndexEntry& entry = index.entries[i];
    const ServicePredictionRecord& record = report.services[i];
    EXPECT_EQ(entry.fingerprint, record.prediction.fingerprint);
    ASSERT_EQ(entry.verdicts.size(), index.clients.size());
    for (std::size_t c = 0; c < entry.verdicts.size(); ++c) {
      const ClientPrediction& prediction = record.prediction.clients[c];
      if (prediction.any_error()) {
        EXPECT_EQ(entry.verdicts[c], Outcome::kError);
      } else if (prediction.generation.warning || prediction.compilation.warning) {
        EXPECT_EQ(entry.verdicts[c], Outcome::kWarning);
      } else {
        EXPECT_EQ(entry.verdicts[c], Outcome::kOk);
      }
    }
  }
}

TEST(SubstitutionIndex, JsonRoundTripsByteIdentically) {
  const SubstitutionIndex index = tiny_index();
  const std::string json = index_json(index);
  Result<SubstitutionIndex> parsed = index_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value(), index);
  EXPECT_EQ(index_json(parsed.value()), json);
}

TEST(SubstitutionIndex, RejectsMalformedDocuments) {
  EXPECT_FALSE(index_from_json("").ok());
  EXPECT_FALSE(index_from_json("[]").ok());
  EXPECT_FALSE(index_from_json("{\"version\":99,\"clients\":[],\"entries\":[]}").ok());
  // Verdict count must match the client roster.
  EXPECT_FALSE(index_from_json("{\"version\":1,\"clients\":[\"a\",\"b\"],\"entries\":["
                               "{\"server\":\"s\",\"service\":\"x\",\"type\":\"t\","
                               "\"fingerprint\":\"f\",\"operations\":[],"
                               "\"verdicts\":[\"ok\"]}]}")
                   .ok());
}

TEST(Substitute, AnswersFromDeserializedIndexOnly) {
  // Serialize, drop the in-memory index, and answer from the parsed copy —
  // the CLI's `substitute --index FILE` path.
  const std::string json = index_json(tiny_index());
  Result<SubstitutionIndex> index = index_from_json(json);
  ASSERT_TRUE(index.ok());

  // Find a target that fails somewhere for the first client so candidates
  // are meaningful; plain beans guarantee ok entries exist.
  SubstituteQuery query;
  query.client = index->clients.front();
  query.service = index->entries.front().server + "/" + index->entries.front().service;
  query.top = 3;
  Result<std::vector<Candidate>> candidates = substitute(index.value(), query);
  ASSERT_TRUE(candidates.ok()) << candidates.error().message;
  EXPECT_LE(candidates->size(), 3u);
  ASSERT_FALSE(candidates->empty());
  for (std::size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_GE((*candidates)[i - 1].score, (*candidates)[i].score);
  }
  // Every candidate is predicted clean for the queried client.
  for (const Candidate& candidate : candidates.value()) {
    bool found = false;
    for (const IndexEntry& entry : index->entries) {
      if (entry.server == candidate.server && entry.service == candidate.service) {
        EXPECT_EQ(entry.verdicts.front(), Outcome::kOk) << candidate.service;
        found = true;
      }
    }
    EXPECT_TRUE(found) << candidate.service;
  }
  EXPECT_NE(format_candidates(query, candidates.value()).find("score"), std::string::npos);
}

TEST(Substitute, ClientMatchesCaseInsensitiveSubstring) {
  const SubstitutionIndex index = tiny_index();
  SubstituteQuery query;
  query.client = "gsoap";  // → "gSOAP Toolkit 2.8.16"
  query.service = index.entries.front().service;  // bare name form
  Result<std::vector<Candidate>> candidates = substitute(index, query);
  EXPECT_TRUE(candidates.ok()) << candidates.error().message;
}

TEST(Substitute, UnknownClientOrServiceIsAnError) {
  const SubstitutionIndex index = tiny_index();
  SubstituteQuery query;
  query.client = "no-such-tool";
  query.service = index.entries.front().service;
  Result<std::vector<Candidate>> unknown_client = substitute(index, query);
  ASSERT_FALSE(unknown_client.ok());
  EXPECT_EQ(unknown_client.error().code, "predict.unknown-client");

  query.client = index.clients.front();
  query.service = "NoSuchService";
  Result<std::vector<Candidate>> unknown_service = substitute(index, query);
  ASSERT_FALSE(unknown_service.ok());
  EXPECT_EQ(unknown_service.error().code, "predict.unknown-service");
}

TEST(Substitute, FingerprintMatchOutranksOperationOverlapAlone) {
  // Two candidate entries with identical operations; only one shares the
  // target's fingerprint. The sharer must rank first via the +0.25 bonus.
  SubstitutionIndex index;
  index.clients = {"tool"};
  const auto entry = [](const std::string& service, const std::string& fp) {
    IndexEntry e;
    e.server = "S";
    e.service = service;
    e.type_name = "t";
    e.fingerprint = fp;
    e.operations = {"echo"};
    e.verdicts = {Outcome::kOk};
    return e;
  };
  index.entries.push_back(entry("Target", "aaaa"));
  index.entries.push_back(entry("PlainTwin", "bbbb"));
  index.entries.push_back(entry("ShapeTwin", "aaaa"));

  SubstituteQuery query;
  query.client = "tool";
  query.service = "S/Target";
  Result<std::vector<Candidate>> candidates = substitute(index, query);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 2u);
  EXPECT_EQ(candidates->front().service, "ShapeTwin");
  EXPECT_TRUE(candidates->front().fingerprint_match);
  EXPECT_DOUBLE_EQ(candidates->front().score, 1.25);
  EXPECT_EQ(candidates->back().service, "PlainTwin");
  EXPECT_DOUBLE_EQ(candidates->back().score, 1.0);
}

}  // namespace
}  // namespace wsx::analysis::predict
