// The fuzz ↔ chaos bridge: the WSDL mutation operators (src/fuzz) and the
// wire corruption faults (src/chaos) damage documents through different
// doors, but the damage must be classified consistently — a document broken
// by either path fails parsing/classification the same way, and a clean
// document passes both. This pins the two subsystems to one notion of
// "broken on the wire".
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "chaos/fault.hpp"
#include "chaos/wire.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/mutation.hpp"
#include "soap/message.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

class Bridge : public ::testing::Test {
 protected:
  static const frameworks::DeployedService& service() {
    static const frameworks::DeployedService deployed =
        wsx::testing::deploy_one("Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
    return deployed;
  }

  /// A clean echo response straight off the (faultless) wire.
  static soap::HttpResponse clean_response(const std::string& payload) {
    const auto server = frameworks::make_server("Metro 2.3");
    Result<soap::Envelope> envelope =
        soap::build_request(service().wsdl, "echo", {{"arg0", payload}});
    const soap::HttpRequest request =
        soap::make_soap_request("http://localhost/echo", "", soap::write(*envelope));
    return server->handle_http(service(), request);
  }
};

TEST_F(Bridge, CleanDocumentPassesBothPaths) {
  const soap::HttpResponse response = clean_response("ping");
  ASSERT_EQ(response.status, 200);
  EXPECT_EQ(frameworks::classify_echo_response(response, "ping").outcome,
            frameworks::EchoOutcome::kOk);
  EXPECT_TRUE(soap::parse(response.body).ok());
}

TEST_F(Bridge, WireTruncationMatchesTheFuzzTruncateOperator) {
  // Both subsystems cut to 60% of the document — the corruption is the
  // same transformation whether it arrives via a mutated description or a
  // truncated response body.
  const soap::HttpResponse response = clean_response("ping");
  ASSERT_GE(response.body.size(), 64u);  // kTruncate's applicability floor
  const std::string wire_cut =
      chaos::apply_body_fault(chaos::FaultKind::kTruncatedBody, response.body, 1);
  const std::optional<fuzz::Mutant> mutant =
      fuzz::mutate(response.body, fuzz::MutationKind::kTruncate);
  ASSERT_TRUE(mutant.has_value());
  EXPECT_EQ(wire_cut, mutant->wsdl_text);
}

TEST_F(Bridge, TruncatedEnvelopeFailsClassificationLikeAMutantFailsParsing) {
  const soap::HttpResponse clean = clean_response("ping");
  soap::HttpResponse truncated = clean;
  truncated.body =
      chaos::apply_body_fault(chaos::FaultKind::kTruncatedBody, clean.body, 1);
  // The wire path: the truncated response is a transport-level failure.
  EXPECT_FALSE(soap::parse(truncated.body).ok());
  EXPECT_EQ(frameworks::classify_echo_response(truncated, "ping").outcome,
            frameworks::EchoOutcome::kTransportError);
}

TEST_F(Bridge, MismatchedTagMutantIsUnparseableAsAnEnvelopeToo)
{
  // The fuzz operator that breaks one end tag applies to envelope text just
  // as it does to WSDL text, and the SOAP parser must reject the result —
  // no silent acceptance of malformed XML on either path.
  const soap::HttpResponse response = clean_response("ping");
  const std::optional<fuzz::Mutant> mutant =
      fuzz::mutate(response.body, fuzz::MutationKind::kMismatchedTag);
  ASSERT_TRUE(mutant.has_value());
  EXPECT_FALSE(soap::parse(mutant->wsdl_text).ok());
  soap::HttpResponse broken = response;
  broken.body = mutant->wsdl_text;
  EXPECT_EQ(frameworks::classify_echo_response(broken, "ping").outcome,
            frameworks::EchoOutcome::kTransportError);
}

TEST_F(Bridge, CorruptedPayloadByteShowsUpAsAnEchoMismatch) {
  // A flipped byte inside the echoed value keeps the XML well-formed but
  // must fail the payload comparison — corruption that parsing cannot see
  // is still caught by the echo check.
  const soap::HttpResponse clean = clean_response("ping");
  const std::size_t offset = clean.body.find("ping");
  ASSERT_NE(offset, std::string::npos);
  soap::HttpResponse corrupted = clean;
  corrupted.body =
      chaos::apply_body_fault(chaos::FaultKind::kCorruptedByte, clean.body, offset);
  ASSERT_NE(corrupted.body, clean.body);
  EXPECT_TRUE(soap::parse(corrupted.body).ok());
  EXPECT_EQ(frameworks::classify_echo_response(corrupted, "ping").outcome,
            frameworks::EchoOutcome::kEchoMismatch);
}

TEST_F(Bridge, CorruptedStructuralByteIsATransportError) {
  // A flipped byte on markup breaks well-formedness: same classification a
  // fuzz text-level mutant gets when its WSDL no longer parses.
  const soap::HttpResponse clean = clean_response("ping");
  const std::size_t offset = clean.body.rfind('<');
  ASSERT_NE(offset, std::string::npos);
  soap::HttpResponse corrupted = clean;
  corrupted.body =
      chaos::apply_body_fault(chaos::FaultKind::kCorruptedByte, clean.body, offset);
  EXPECT_FALSE(soap::parse(corrupted.body).ok());
  EXPECT_EQ(frameworks::classify_echo_response(corrupted, "ping").outcome,
            frameworks::EchoOutcome::kTransportError);
}

TEST_F(Bridge, HeaderFaultsAreNotBodyFaults) {
  // apply_body_fault is a no-op for non-body fault kinds — header drops and
  // intermediary errors must not silently mangle the document.
  const soap::HttpResponse response = clean_response("ping");
  EXPECT_EQ(chaos::apply_body_fault(chaos::FaultKind::kDropSoapAction, response.body, 3),
            response.body);
  EXPECT_EQ(chaos::apply_body_fault(chaos::FaultKind::kHttp503, response.body, 3),
            response.body);
}

}  // namespace
}  // namespace wsx
