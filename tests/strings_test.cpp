// Unit tests for the shared string utilities (src/common/strings.*).
#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace wsx {
namespace {

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("wsdl:definitions", "wsdl:"));
  EXPECT_FALSE(starts_with("wsdl", "wsdl:"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(Strings, EndsWith) {
  EXPECT_TRUE(ends_with("TimeoutException", "Exception"));
  EXPECT_FALSE(ends_with("Exception", "TimeoutException"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(Strings, SplitBasic) {
  const std::vector<std::string> parts = split("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const std::vector<std::string> parts = split(":a::", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitNoSeparator) {
  const std::vector<std::string> parts = split("abc", ':');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"java", "util", "List"};
  EXPECT_EQ(join(parts, "."), "java.util.List");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, TrimRemovesXmlWhitespace) {
  EXPECT_EQ(trim("  \t\r\n x \n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("DataTable"), "datatable");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, IequalsMatchesVbIdentifierRules) {
  EXPECT_TRUE(iequals("Value", "value"));
  EXPECT_TRUE(iequals("TEXT", "text"));
  EXPECT_FALSE(iequals("value", "values"));
  EXPECT_FALSE(iequals("", "x"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, Capitalize) {
  EXPECT_EQ(capitalize("message"), "Message");
  EXPECT_EQ(capitalize(""), "");
  EXPECT_EQ(capitalize("X"), "X");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

}  // namespace
}  // namespace wsx
