// json_roundtrip_property_test — seeded property tests for common/json
// against the payloads the obs layer exports: metric documents with large
// counts, span attributes carrying UTF-8 and control characters, and
// deeply nested structures. Every case writes with ObjectWriter/ArrayWriter
// and must read back identically through json::parse.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::json {
namespace {

/// Deterministic generator: every failure reproduces from the case index.
std::mt19937 rng_for_case(std::uint32_t case_index) {
  return std::mt19937(0x5eed0000u + case_index);
}

std::string random_string(std::mt19937& rng) {
  // Mix printable ASCII, control characters, JSON specials, and multi-byte
  // UTF-8 sequences — everything a span attribute or metric name may carry.
  static const std::vector<std::string> utf8_samples = {
      "\xC3\xA9",          // é
      "\xE2\x82\xAC",      // €
      "\xE6\xBC\xA2",      // 漢
      "\xF0\x9F\x94\xA7",  // wrench emoji (4-byte)
  };
  std::uniform_int_distribution<int> length(0, 24);
  std::uniform_int_distribution<int> kind(0, 5);
  std::string out;
  const int n = length(rng);
  for (int i = 0; i < n; ++i) {
    switch (kind(rng)) {
      case 0:
        out += static_cast<char>(std::uniform_int_distribution<int>(0x20, 0x7E)(rng));
        break;
      case 1:
        out += static_cast<char>(std::uniform_int_distribution<int>(0x00, 0x1F)(rng));
        break;
      case 2:
        out += '"';
        break;
      case 3:
        out += '\\';
        break;
      default:
        out += utf8_samples[std::uniform_int_distribution<std::size_t>(
            0, utf8_samples.size() - 1)(rng)];
    }
  }
  return out;
}

TEST(JsonRoundTrip, ArbitraryStringsSurviveEscapeAndParse) {
  for (std::uint32_t c = 0; c < 200; ++c) {
    std::mt19937 rng = rng_for_case(c);
    const std::string original = random_string(rng);
    const std::string doc = "\"" + escape(original) + "\"";
    const Result<Value> parsed = parse(doc);
    ASSERT_TRUE(parsed.ok()) << "case " << c << ": " << parsed.error().message;
    ASSERT_TRUE(parsed->is_string()) << "case " << c;
    EXPECT_EQ(parsed->as_string(), original) << "case " << c;
  }
}

TEST(JsonRoundTrip, LargeCountsSurviveExactly) {
  // Counters are uint64 but JSON numbers read back as double; every count
  // below 2^53 must round-trip without loss.
  const std::vector<std::uint64_t> counts = {
      0, 1, 999, 1u << 20, (1ull << 32) - 1, 1ull << 40, (1ull << 53) - 1};
  ObjectWriter writer;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    writer.field("c" + std::to_string(i), static_cast<std::size_t>(counts[i]));
  }
  const Result<Value> parsed = parse(writer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const Value* field = parsed->find("c" + std::to_string(i));
    ASSERT_NE(field, nullptr);
    EXPECT_EQ(static_cast<std::uint64_t>(field->as_number()), counts[i]) << "index " << i;
  }
}

TEST(JsonRoundTrip, RandomObjectsSurvive) {
  for (std::uint32_t c = 0; c < 100; ++c) {
    std::mt19937 rng = rng_for_case(1000 + c);
    std::uniform_int_distribution<int> field_count(0, 12);
    std::uniform_int_distribution<std::uint64_t> number(0, (1ull << 53) - 1);
    const int n = field_count(rng);
    std::vector<std::pair<std::string, std::string>> strings;
    std::vector<std::pair<std::string, std::uint64_t>> numbers;
    ObjectWriter writer;
    for (int i = 0; i < n; ++i) {
      // Key uniqueness by construction; values random.
      const std::string key = "k" + std::to_string(i) + random_string(rng);
      if (i % 2 == 0) {
        const std::string value = random_string(rng);
        writer.field(key, std::string_view(value));
        strings.emplace_back(key, value);
      } else {
        const std::uint64_t value = number(rng);
        writer.field(key, static_cast<std::size_t>(value));
        numbers.emplace_back(key, value);
      }
    }
    const Result<Value> parsed = parse(writer.str());
    ASSERT_TRUE(parsed.ok()) << "case " << c << ": " << parsed.error().message;
    EXPECT_EQ(parsed->size(), static_cast<std::size_t>(n));
    for (const auto& [key, value] : strings) {
      const Value* field = parsed->find(key);
      ASSERT_NE(field, nullptr) << "case " << c << " key " << key;
      EXPECT_EQ(field->as_string(), value) << "case " << c;
    }
    for (const auto& [key, value] : numbers) {
      const Value* field = parsed->find(key);
      ASSERT_NE(field, nullptr) << "case " << c << " key " << key;
      EXPECT_EQ(static_cast<std::uint64_t>(field->as_number()), value) << "case " << c;
    }
  }
}

TEST(JsonRoundTrip, DeepNestingParsesUpToTheDocumentedLimit) {
  // The parser caps nesting at 128 levels; build a 100-deep array through
  // ArrayWriter raw_item composition and walk it back down.
  std::string doc = "[]";
  const int depth = 100;
  for (int i = 1; i < depth; ++i) {
    ArrayWriter wrapper;
    wrapper.raw_item(doc);
    doc = wrapper.str();
  }
  const Result<Value> parsed = parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const Value* level = &*parsed;
  int walked = 1;
  while (level->is_array() && !level->items().empty()) {
    level = &level->items()[0];
    ++walked;
  }
  EXPECT_EQ(walked, depth);
}

TEST(JsonRoundTrip, BeyondLimitNestingFailsCleanly) {
  std::string doc = "[]";
  for (int i = 0; i < 200; ++i) doc = "[" + doc + "]";
  const Result<Value> parsed = parse(doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "json.too-deep");
}

TEST(JsonRoundTrip, MetricExportsParseForRandomContents) {
  // Registry::to_json over randomized metric names/values is always valid
  // JSON, in both export modes.
  for (std::uint32_t c = 0; c < 25; ++c) {
    std::mt19937 rng = rng_for_case(2000 + c);
    std::uniform_int_distribution<int> metric_count(0, 10);
    std::uniform_int_distribution<std::uint64_t> value(0, 1ull << 40);
    obs::Registry registry;
    const int n = metric_count(rng);
    for (int i = 0; i < n; ++i) {
      const std::string name = "m" + std::to_string(i) + "." + random_string(rng);
      switch (i % 3) {
        case 0: registry.counter(name).add(value(rng)); break;
        case 1: registry.gauge(name).set(static_cast<std::int64_t>(value(rng))); break;
        default: registry.histogram(name).observe(value(rng));
      }
    }
    for (const obs::Export mode : {obs::Export::kFull, obs::Export::kDeterministic}) {
      const Result<Value> parsed = parse(registry.to_json(mode));
      ASSERT_TRUE(parsed.ok()) << "case " << c << ": " << parsed.error().message;
    }
  }
}

TEST(JsonRoundTrip, TraceExportsParseForRandomSpanNames) {
  // Every to_jsonl line parses and reproduces the randomized span name and
  // attribute bytes exactly.
  for (std::uint32_t c = 0; c < 25; ++c) {
    std::mt19937 rng = rng_for_case(3000 + c);
    obs::Tracer tracer;
    const std::string name = random_string(rng);
    const std::string attr_value = random_string(rng);
    const obs::SpanId root = tracer.begin_span(name);
    tracer.annotate(root, "payload", attr_value);
    tracer.end_span(root);
    const std::string jsonl = tracer.to_jsonl();
    const std::string line = jsonl.substr(0, jsonl.find('\n'));
    const Result<Value> parsed = parse(line);
    ASSERT_TRUE(parsed.ok()) << "case " << c << ": " << parsed.error().message;
    EXPECT_EQ(parsed->find("name")->as_string(), name) << "case " << c;
    const Value* attributes = parsed->find("attributes");
    ASSERT_NE(attributes, nullptr);
    ASSERT_NE(attributes->find("payload"), nullptr) << "case " << c;
    EXPECT_EQ(attributes->find("payload")->as_string(), attr_value) << "case " << c;
  }
}

}  // namespace
}  // namespace wsx::json
