// Unit tests for the WSDL model, writer and parser (src/wsdl/).
#include <gtest/gtest.h>

#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "xml/parser.hpp"

namespace wsx::wsdl {
namespace {

Definitions make_echo_definitions() {
  Definitions defs;
  defs.name = "EchoPoint";
  defs.target_namespace = "urn:echo";

  xsd::Schema schema;
  schema.target_namespace = "urn:echo";
  xsd::ComplexType point;
  point.name = "Point";
  xsd::ElementDecl x;
  x.name = "x";
  x.type = xsd::qname(xsd::Builtin::kInt);
  point.particles.emplace_back(std::move(x));
  schema.complex_types.push_back(std::move(point));
  xsd::ElementDecl wrapper;
  wrapper.name = "echo";
  xsd::ComplexType wrapper_type;
  xsd::ElementDecl arg;
  arg.name = "arg0";
  arg.type = xml::QName{"urn:echo", "Point"};
  wrapper_type.particles.emplace_back(std::move(arg));
  wrapper.inline_type = Box<xsd::ComplexType>{std::move(wrapper_type)};
  schema.elements.push_back(std::move(wrapper));
  defs.schemas.push_back(std::move(schema));

  Message input;
  input.name = "echo";
  input.parts.push_back({"parameters", xml::QName{"urn:echo", "echo"}, {}});
  defs.messages.push_back(std::move(input));
  Message output;
  output.name = "echoResponse";
  output.parts.push_back({"parameters", xml::QName{"urn:echo", "echoResponse"}, {}});
  defs.messages.push_back(std::move(output));

  PortType port_type;
  port_type.name = "EchoPort";
  port_type.operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.port_types.push_back(std::move(port_type));

  Binding binding;
  binding.name = "EchoBinding";
  binding.port_type = xml::QName{"urn:echo", "EchoPort"};
  BindingOperation operation;
  operation.name = "echo";
  operation.soap_action = "";
  binding.operations.push_back(std::move(operation));
  defs.bindings.push_back(std::move(binding));

  Service service;
  service.name = "EchoService";
  service.ports.push_back(
      {"EchoPortPort", xml::QName{"urn:echo", "EchoBinding"}, "http://localhost/echo"});
  defs.services.push_back(std::move(service));
  return defs;
}

TEST(Model, LookupHelpers) {
  const Definitions defs = make_echo_definitions();
  EXPECT_NE(defs.find_message("echo"), nullptr);
  EXPECT_EQ(defs.find_message("nope"), nullptr);
  EXPECT_NE(defs.find_port_type("EchoPort"), nullptr);
  EXPECT_NE(defs.find_binding("EchoBinding"), nullptr);
  EXPECT_EQ(defs.operation_count(), 1u);
}

TEST(Model, StyleAndUseNames) {
  EXPECT_STREQ(to_string(SoapStyle::kDocument), "document");
  EXPECT_STREQ(to_string(SoapStyle::kRpc), "rpc");
  EXPECT_STREQ(to_string(SoapUse::kLiteral), "literal");
  EXPECT_STREQ(to_string(SoapUse::kEncoded), "encoded");
}

TEST(WriterParser, RoundTripsFullDocument) {
  const Definitions original = make_echo_definitions();
  const std::string text = to_string(original);
  Result<Definitions> reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok());

  EXPECT_EQ(reparsed->name, original.name);
  EXPECT_EQ(reparsed->target_namespace, original.target_namespace);
  EXPECT_EQ(reparsed->schemas.size(), 1u);
  EXPECT_EQ(reparsed->schemas.front(), original.schemas.front());
  EXPECT_EQ(reparsed->messages, original.messages);
  EXPECT_EQ(reparsed->port_types, original.port_types);
  EXPECT_EQ(reparsed->bindings, original.bindings);
  EXPECT_EQ(reparsed->services, original.services);
}

TEST(WriterParser, RoundTripsRpcEncodedBinding) {
  Definitions defs = make_echo_definitions();
  defs.bindings.front().style = SoapStyle::kRpc;
  defs.bindings.front().operations.front().input_use = SoapUse::kEncoded;
  defs.bindings.front().operations.front().output_use = SoapUse::kEncoded;
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->bindings.front().style, SoapStyle::kRpc);
  EXPECT_EQ(reparsed->bindings.front().operations.front().input_use, SoapUse::kEncoded);
}

TEST(WriterParser, RoundTripsMissingSoapAction) {
  Definitions defs = make_echo_definitions();
  defs.bindings.front().operations.front().has_soap_action = false;
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_FALSE(reparsed->bindings.front().operations.front().has_soap_action);
}

TEST(WriterParser, PreservesSoapActionPresenceWithEmptyValue) {
  const Definitions defs = make_echo_definitions();  // soapAction=""
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed->bindings.front().operations.front().has_soap_action);
  EXPECT_EQ(reparsed->bindings.front().operations.front().soap_action, "");
}

TEST(WriterParser, RoundTripsExtensionElements) {
  Definitions defs = make_echo_definitions();
  xml::Element extension{"jaxws:bindings"};
  extension.declare_namespace("jaxws", "http://java.sun.com/xml/ns/jaxws");
  extension.set_attribute("version", "2.0");
  defs.extension_elements.push_back(extension);
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->extension_elements.size(), 1u);
  EXPECT_EQ(reparsed->extension_elements.front().name(), "jaxws:bindings");
}

TEST(WriterParser, RoundTripsDocumentation) {
  Definitions defs = make_echo_definitions();
  defs.documentation = "Generated by the interop study";
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->documentation, "Generated by the interop study");
}

TEST(WriterParser, ExtraNamespacesAreDeclaredAndRecovered) {
  Definitions defs = make_echo_definitions();
  defs.extra_namespaces.emplace_back("wsa", std::string(xml::ns::kWsAddressing));
  const std::string text = to_string(defs);
  EXPECT_NE(text.find("xmlns:wsa="), std::string::npos);
  Result<Definitions> reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok());
  bool found = false;
  for (const auto& [prefix, uri] : reparsed->extra_namespaces) {
    if (prefix == "wsa" && uri == xml::ns::kWsAddressing) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WriterParser, ZeroOperationDescriptionRoundTrips) {
  Definitions defs = make_echo_definitions();
  defs.port_types.front().operations.clear();
  defs.bindings.front().operations.clear();
  defs.messages.clear();
  Result<Definitions> reparsed = parse(to_string(defs));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->operation_count(), 0u);
}

TEST(WriterParser, SchemaPrefixOptionPropagates) {
  WsdlWriteOptions options;
  options.schema_prefix = "s";
  const std::string text = to_string(make_echo_definitions(), options);
  EXPECT_NE(text.find("<s:schema"), std::string::npos);
  Result<Definitions> reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->schemas.front(), make_echo_definitions().schemas.front());
}

TEST(WriterParser, RoundTripsWsdlImports) {
  Definitions defs = make_echo_definitions();
  defs.imports.push_back({"urn:other", "http://host/other.wsdl"});
  defs.imports.push_back({"urn:broken", ""});  // locationless
  const std::string text = to_string(defs);
  EXPECT_NE(text.find("<wsdl:import"), std::string::npos);
  Result<Definitions> reparsed = parse(text);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->imports.size(), 2u);
  EXPECT_EQ(reparsed->imports[0].location, "http://host/other.wsdl");
  EXPECT_TRUE(reparsed->imports[1].location.empty());
}

TEST(Parser, RejectsNonWsdlRoot) {
  Result<Definitions> defs = parse("<html/>");
  ASSERT_FALSE(defs.ok());
  EXPECT_EQ(defs.error().code, "wsdl.not-a-wsdl");
}

TEST(Parser, RejectsMalformedXml) {
  Result<Definitions> defs = parse("<wsdl:definitions");
  ASSERT_FALSE(defs.ok());
}

TEST(Parser, RejectsUnknownBindingStyle) {
  const char* text =
      R"(<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
           xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/" targetNamespace="urn:x">
           <wsdl:binding name="B" type="tns:P">
             <soap:binding transport="t" style="sideways"/>
           </wsdl:binding>
         </wsdl:definitions>)";
  Result<Definitions> defs = parse(text);
  ASSERT_FALSE(defs.ok());
  EXPECT_EQ(defs.error().code, "wsdl.bad-style");
}

TEST(Parser, OneWayOperationHasEmptyOutput) {
  const char* text =
      R"(<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
           xmlns:tns="urn:x" targetNamespace="urn:x">
           <wsdl:portType name="P">
             <wsdl:operation name="fire"><wsdl:input message="tns:fire"/></wsdl:operation>
           </wsdl:portType>
         </wsdl:definitions>)";
  Result<Definitions> defs = parse(text);
  ASSERT_TRUE(defs.ok());
  const Operation& operation = defs->port_types.front().operations.front();
  EXPECT_EQ(operation.input_message, "fire");
  EXPECT_TRUE(operation.output_message.empty());
}

}  // namespace
}  // namespace wsx::wsdl
