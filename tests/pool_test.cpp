// pool_test — units for the shared worker pool (common/pool.hpp): the one
// thread-count resolution rule every campaign now routes through, slice
// ordering, exception surfacing (a throwing task fails the run instead of
// hanging it), and the pool's instrumentation counters.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/pool.hpp"

namespace wsx {
namespace {

TEST(ResolveWorkers, ZeroMeansHardwareConcurrencyAtLeastOne) {
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::size_t expected = hardware == 0 ? 1 : hardware;
  EXPECT_EQ(resolve_workers(0), expected);
  EXPECT_GE(resolve_workers(0), 1u);
}

TEST(ResolveWorkers, ExplicitCountsPassThrough) {
  EXPECT_EQ(resolve_workers(1), 1u);
  EXPECT_EQ(resolve_workers(7), 7u);
  EXPECT_EQ(resolve_workers(kMaxWorkers), kMaxWorkers);
}

TEST(ResolveWorkers, ValidRangeIsZeroThroughMax) {
  EXPECT_TRUE(valid_worker_count(0));
  EXPECT_TRUE(valid_worker_count(1));
  EXPECT_TRUE(valid_worker_count(kMaxWorkers));
  EXPECT_FALSE(valid_worker_count(kMaxWorkers + 1));
  EXPECT_FALSE(valid_worker_count(100000));
}

TEST(WorkerPool, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(ran.load(), 100);
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.tasks_run, 100u);
  EXPECT_EQ(stats.tasks_failed, 0u);
}

TEST(WorkerPool, ThrowingTaskSurfacesFromWaitInsteadOfHanging) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.submit([] { throw std::runtime_error("slice failed"); });
  pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure is counted and the other tasks still ran.
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.stats().tasks_failed, 1u);
  // A second wait() does not rethrow the already-surfaced error.
  pool.wait();
}

TEST(WorkerPool, SingleFailureRethrowsOriginalExceptionType) {
  // One failed task must surface the original exception, not a PoolError —
  // callers catching a specific domain exception keep working.
  WorkerPool pool(2);
  pool.submit([] { throw std::invalid_argument("only failure"); });
  try {
    pool.wait();
    FAIL() << "wait() did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "only failure");
  }
}

TEST(WorkerPool, MultipleFailuresAggregateIntoPoolError) {
  // Regression: wait() used to keep only the first stored exception, so a
  // multi-failure batch was under-reported. Every message must survive.
  WorkerPool pool(2);
  pool.submit([] { throw std::runtime_error("task A failed"); });
  pool.submit([] { throw std::runtime_error("task B failed"); });
  pool.submit([] { throw std::runtime_error("task C failed"); });
  try {
    pool.wait();
    FAIL() << "wait() did not throw";
  } catch (const PoolError& e) {
    EXPECT_EQ(e.messages().size(), 3u);
    const std::string what = e.what();
    EXPECT_NE(what.find("3 pool tasks failed"), std::string::npos);
    EXPECT_NE(what.find("task A failed"), std::string::npos);
    EXPECT_NE(what.find("task B failed"), std::string::npos);
    EXPECT_NE(what.find("task C failed"), std::string::npos);
  }
  EXPECT_EQ(pool.stats().tasks_failed, 3u);
  // The aggregated error is consumed: a second wait() is clean.
  pool.wait();
}

TEST(WorkerPool, NonStdExceptionsAggregateWithPlaceholderMessage) {
  WorkerPool pool(2);
  pool.submit([] { throw 42; });  // NOLINT(hicpp-exception-baseclass)
  pool.submit([] { throw std::runtime_error("typed failure"); });
  try {
    pool.wait();
    FAIL() << "wait() did not throw";
  } catch (const PoolError& e) {
    ASSERT_EQ(e.messages().size(), 2u);
    bool saw_placeholder = false;
    bool saw_typed = false;
    for (const std::string& message : e.messages()) {
      if (message == "unknown exception") saw_placeholder = true;
      if (message == "typed failure") saw_typed = true;
    }
    EXPECT_TRUE(saw_placeholder);
    EXPECT_TRUE(saw_typed);
  }
}

TEST(WorkerPool, WaitIsReusableAcrossBatches) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelSlices, ResultsArriveInSliceOrder) {
  // Each slice returns its own range; concatenated they must reproduce
  // [0, count) exactly, for every worker count.
  const auto run = [](std::size_t count, std::size_t workers) {
    const std::vector<std::vector<std::size_t>> slices = parallel_slices(
        count, workers, [](std::size_t begin, std::size_t end) {
          std::vector<std::size_t> out(end - begin);
          std::iota(out.begin(), out.end(), begin);
          return out;
        });
    std::vector<std::size_t> merged;
    for (const std::vector<std::size_t>& slice : slices) {
      merged.insert(merged.end(), slice.begin(), slice.end());
    }
    return merged;
  };
  std::vector<std::size_t> expected(97);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(run(97, 1), expected);
  EXPECT_EQ(run(97, 4), expected);
  EXPECT_EQ(run(97, 8), expected);
  EXPECT_EQ(run(97, 200), expected);
}

TEST(ParallelSlices, SlicesCoverEverythingExactlyOnce) {
  std::atomic<std::size_t> total{0};
  (void)parallel_slices(1000, 8, [&total](std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
    return end - begin;
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ParallelSlices, EmptyCountProducesNoSlices) {
  const std::vector<int> result =
      parallel_slices(0, 4, [](std::size_t, std::size_t) { return 1; });
  EXPECT_TRUE(result.empty());
}

TEST(ParallelSlices, SingleWorkerRunsInline) {
  PoolStats stats;
  const std::thread::id main_thread = std::this_thread::get_id();
  const std::vector<bool> result = parallel_slices(
      10, 1,
      [main_thread](std::size_t, std::size_t) {
        return std::this_thread::get_id() == main_thread;
      },
      &stats);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result[0]);
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.tasks_run, 1u);
}

TEST(ParallelSlices, SliceExceptionPropagates) {
  EXPECT_THROW(parallel_slices(100, 4,
                               [](std::size_t begin, std::size_t) -> int {
                                 if (begin == 0) throw std::runtime_error("boom");
                                 return 0;
                               }),
               std::runtime_error);
}

TEST(ParallelSlices, StatsReportResolvedWorkersAndTasks) {
  PoolStats stats;
  (void)parallel_slices(
      100, 4, [](std::size_t begin, std::size_t end) { return end - begin; }, &stats);
  EXPECT_EQ(stats.workers, 4u);
  EXPECT_EQ(stats.tasks_run, 4u);
  EXPECT_EQ(stats.tasks_failed, 0u);
}

TEST(ParallelSlices, WorkerCountCappedByItemCount) {
  PoolStats stats;
  (void)parallel_slices(
      3, 16, [](std::size_t begin, std::size_t end) { return end - begin; }, &stats);
  EXPECT_LE(stats.workers, 3u);
  EXPECT_EQ(stats.tasks_run, 3u);
}

}  // namespace
}  // namespace wsx
