// Unit and property tests for the calibrated type catalogs (src/catalog/).
#include <gtest/gtest.h>

#include <set>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"

namespace wsx::catalog {
namespace {

const TypeCatalog& java() {
  static const TypeCatalog catalog = make_java_catalog();
  return catalog;
}

const TypeCatalog& dotnet() {
  static const TypeCatalog catalog = make_dotnet_catalog();
  return catalog;
}

TEST(JavaCatalog, PopulationMatchesPaperCrawl) {
  EXPECT_EQ(java().size(), 3971u);  // Java SE 7 classes crawled
  EXPECT_EQ(java().platform(), "Java SE 7");
}

TEST(DotNetCatalog, PopulationMatchesPaperCrawl) {
  EXPECT_EQ(dotnet().size(), 14082u);  // .NET 4 classes crawled
}

TEST(JavaCatalog, SpecialClassesPresentWithTraits) {
  const TypeInfo* w3c = java().find(java_names::kW3CEndpointReference);
  ASSERT_NE(w3c, nullptr);
  EXPECT_TRUE(w3c->has(Trait::kWsaEndpointReference));

  const TypeInfo* sdf = java().find(java_names::kSimpleDateFormat);
  ASSERT_NE(sdf, nullptr);
  EXPECT_TRUE(sdf->has(Trait::kLegacyDateFormat));

  const TypeInfo* cal = java().find(java_names::kXmlGregorianCalendar);
  ASSERT_NE(cal, nullptr);
  EXPECT_TRUE(cal->has(Trait::kXmlGregorianCalendar));

  const TypeInfo* future = java().find(java_names::kFuture);
  ASSERT_NE(future, nullptr);
  EXPECT_TRUE(future->has(Trait::kInterface));
  EXPECT_TRUE(future->has(Trait::kAsyncApi));

  ASSERT_NE(java().find(java_names::kResponse), nullptr);
  const TypeInfo* nvp = java().find(java_names::kNameValuePair);
  ASSERT_NE(nvp, nullptr);
  EXPECT_TRUE(nvp->has(Trait::kCaseCollidingFields));
}

TEST(JavaCatalog, ThrowablePopulationMatchesAxis1Failures) {
  // 477 Throwable-derived deployable on Metro, of which 412 also deploy on
  // JBossWS (the Axis1 compilation-error counts).
  EXPECT_EQ(java().count_with_trait(Trait::kThrowableDerived), 477u);
  std::size_t clean = 0;
  for (const TypeInfo* type : java().with_trait(Trait::kThrowableDerived)) {
    if (!type->has(Trait::kRawGenericApi)) ++clean;
  }
  EXPECT_EQ(clean, 412u);
}

TEST(JavaCatalog, RawGenericPopulationMatchesJBossRefusals) {
  EXPECT_EQ(java().count_with_trait(Trait::kRawGenericApi), 243u);  // 2489 - (2248-2)
}

TEST(JavaCatalog, AnyTypeArrayPopulationMatchesJScriptFailures) {
  EXPECT_EQ(java().count_with_trait(Trait::kAnyTypeArrayField), 50u);
}

TEST(JavaCatalog, ThrowableTypesCarryMessageField) {
  for (const TypeInfo* type : java().with_trait(Trait::kThrowableDerived)) {
    const bool has_message =
        std::any_of(type->fields.begin(), type->fields.end(),
                    [](const FieldSpec& field) { return field.name == "message"; });
    EXPECT_TRUE(has_message) << type->qualified_name();
  }
}

TEST(DotNetCatalog, SpecialTypesPresentWithTraits) {
  const TypeInfo* table = dotnet().find(dotnet_names::kDataTable);
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(table->has(Trait::kWildcardContent));
  EXPECT_TRUE(table->has(Trait::kDoubleWildcard));

  const TypeInfo* view = dotnet().find(dotnet_names::kDataView);
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->has(Trait::kWildcardContent));
  EXPECT_FALSE(view->has(Trait::kDoubleWildcard));

  const TypeInfo* socket_error = dotnet().find(dotnet_names::kSocketError);
  ASSERT_NE(socket_error, nullptr);
  EXPECT_TRUE(socket_error->has(Trait::kEnumType));
  EXPECT_FALSE(socket_error->enum_values.empty());
}

TEST(DotNetCatalog, DataSetSubShapeQuotas) {
  EXPECT_EQ(dotnet().count_with_trait(Trait::kDataSetSchema), 76u);
  EXPECT_EQ(dotnet().count_with_trait(Trait::kDataSetDuplicated), 13u);  // gSOAP
  EXPECT_EQ(dotnet().count_with_trait(Trait::kDataSetNested), 3u);       // Axis1
  EXPECT_EQ(dotnet().count_with_trait(Trait::kDataSetArray), 1u);        // suds
  EXPECT_EQ(dotnet().count_with_trait(Trait::kSoapEncodedBinding), 1u);
  EXPECT_EQ(dotnet().count_with_trait(Trait::kMissingSoapAction), 3u);
}

TEST(DotNetCatalog, DataSetSubShapesAreSubsets) {
  for (const Trait sub :
       {Trait::kDataSetDuplicated, Trait::kDataSetNested, Trait::kDataSetArray}) {
    for (const TypeInfo* type : dotnet().with_trait(sub)) {
      EXPECT_TRUE(type->has(Trait::kDataSetSchema)) << type->qualified_name();
    }
  }
}

TEST(DotNetCatalog, JScriptFailurePopulations) {
  EXPECT_EQ(dotnet().count_with_trait(Trait::kDeepNesting), 301u);
  EXPECT_EQ(dotnet().count_with_trait(Trait::kCompilerPathological), 17u);
  EXPECT_EQ(dotnet().count_with_trait(Trait::kGeneratorCrash), 2u);
  for (const TypeInfo* type : dotnet().with_trait(Trait::kCompilerPathological)) {
    EXPECT_TRUE(type->has(Trait::kDeepNesting));
  }
}

TEST(DotNetCatalog, FourWebControlsCollide) {
  std::size_t web_controls = 0;
  for (const TypeInfo* type : dotnet().with_trait(Trait::kCaseCollidingFields)) {
    if (type->package == "System.Web.UI.WebControls") ++web_controls;
  }
  EXPECT_EQ(web_controls, 4u);
}

TEST(Catalogs, QualifiedNamesAreUnique) {
  for (const TypeCatalog* catalog : {&java(), &dotnet()}) {
    std::set<std::string> names;
    for (const TypeInfo& type : catalog->types()) {
      EXPECT_TRUE(names.insert(type.qualified_name()).second)
          << "duplicate: " << type.qualified_name();
    }
  }
}

TEST(Catalogs, GenerationIsDeterministic) {
  const TypeCatalog again = make_java_catalog();
  ASSERT_EQ(again.size(), java().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.types()[i].qualified_name(), java().types()[i].qualified_name());
    EXPECT_EQ(again.types()[i].traits, java().types()[i].traits);
    EXPECT_EQ(again.types()[i].fields, java().types()[i].fields);
  }
}

TEST(Catalogs, SeedChangesNamesButNotQuotas) {
  JavaCatalogSpec spec;
  spec.seed = 0xDEADBEEF;
  const TypeCatalog reseeded = make_java_catalog(spec);
  EXPECT_EQ(reseeded.size(), java().size());
  EXPECT_EQ(reseeded.count_with_trait(Trait::kThrowableDerived),
            java().count_with_trait(Trait::kThrowableDerived));
  EXPECT_EQ(reseeded.count_with_trait(Trait::kRawGenericApi),
            java().count_with_trait(Trait::kRawGenericApi));
  // Generated names differ (the named specials stay).
  bool any_difference = false;
  for (std::size_t i = 0; i < reseeded.size(); ++i) {
    if (reseeded.types()[i].qualified_name() != java().types()[i].qualified_name()) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Catalogs, ScaledSpecScalesPopulation) {
  JavaCatalogSpec spec;
  spec.plain_beans = 10;
  spec.throwable_clean = 2;
  spec.throwable_raw = 1;
  spec.raw_generic_beans = 2;
  spec.anytype_array_beans = 1;
  spec.no_default_ctor = 3;
  spec.abstract_classes = 2;
  spec.interfaces = 2;
  spec.generic_types = 1;
  const TypeCatalog small = make_java_catalog(spec);
  // 4 named specials + 2 async interfaces + the quotas above.
  EXPECT_EQ(small.size(), 4u + 2u + 10 + 2 + 1 + 2 + 1 + 3 + 2 + 2 + 1);
}

TEST(TraitApi, SetAndHas) {
  TypeInfo type;
  EXPECT_FALSE(type.has(Trait::kAbstract));
  type.set(Trait::kAbstract);
  EXPECT_TRUE(type.has(Trait::kAbstract));
  EXPECT_FALSE(type.has(Trait::kInterface));
}

TEST(TraitApi, LanguageNames) {
  EXPECT_STREQ(to_string(SourceLanguage::kJava), "Java");
  EXPECT_STREQ(to_string(SourceLanguage::kCSharp), "C#");
}

}  // namespace
}  // namespace wsx::catalog
