// Integration tests for the Communication + Execution extension
// (src/interop/communication.*, soap/http.*).
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "interop/communication.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"

namespace wsx::interop {
namespace {

TEST(Http, HeadersAreCaseInsensitive) {
  soap::HttpRequest request;
  request.set_header("Content-Type", "text/xml");
  EXPECT_EQ(request.header("content-type"), "text/xml");
  request.set_header("CONTENT-TYPE", "text/plain");
  EXPECT_EQ(request.header("Content-Type"), "text/plain");
  EXPECT_EQ(request.headers.size(), 1u);
}

TEST(Http, SoapRequestCarriesQuotedAction) {
  const soap::HttpRequest request =
      soap::make_soap_request("http://h/svc", "urn:op", "<e/>");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.header("SOAPAction"), "\"urn:op\"");
  EXPECT_NE(request.header("Content-Type")->find("text/xml"), std::string::npos);
}

TEST(Http, FaultResponsesUse500) {
  EXPECT_EQ(soap::make_soap_response("<e/>", /*is_fault=*/false).status, 200);
  EXPECT_EQ(soap::make_soap_response("<f/>", /*is_fault=*/true).status, 500);
  EXPECT_TRUE(soap::make_soap_response("<e/>", false).ok());
  EXPECT_FALSE(soap::make_soap_response("<f/>", true).ok());
}

class HttpEndpoint : public ::testing::Test {
 protected:
  static const frameworks::DeployedService& service() {
    static const frameworks::DeployedService deployed = [] {
      const catalog::TypeCatalog catalog = catalog::make_java_catalog();
      const auto server = frameworks::make_server("Metro 2.3");
      const catalog::TypeInfo* type =
          catalog.find(catalog::java_names::kXmlGregorianCalendar);
      return std::move(server->deploy(frameworks::ServiceSpec{type}).value());
    }();
    return deployed;
  }

  static soap::HttpRequest echo_request(const std::string& payload) {
    Result<soap::Envelope> envelope =
        soap::build_request(service().wsdl, "echo", {{"arg0", payload}});
    return soap::make_soap_request("http://localhost/echo", "", soap::write(*envelope));
  }
};

TEST_F(HttpEndpoint, EchoOverHttpSucceeds) {
  const auto server = frameworks::make_server("Metro 2.3");
  const soap::HttpResponse response = server->handle_http(service(), echo_request("ping"));
  ASSERT_EQ(response.status, 200);
  Result<soap::Envelope> envelope = soap::parse(response.body);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(soap::response_value(*envelope).value(), "ping");
}

TEST_F(HttpEndpoint, RejectsNonPost) {
  const auto server = frameworks::make_server("Metro 2.3");
  soap::HttpRequest request = echo_request("x");
  request.method = "GET";
  EXPECT_EQ(server->handle_http(service(), request).status, 405);
}

TEST_F(HttpEndpoint, RejectsWrongContentType) {
  const auto server = frameworks::make_server("Metro 2.3");
  soap::HttpRequest request = echo_request("x");
  request.set_header("Content-Type", "application/json");
  EXPECT_EQ(server->handle_http(service(), request).status, 415);
}

TEST_F(HttpEndpoint, MalformedEnvelopeYieldsClientFault) {
  const auto server = frameworks::make_server("Metro 2.3");
  soap::HttpRequest request = echo_request("x");
  request.body = "<garbage";
  const soap::HttpResponse response = server->handle_http(service(), request);
  EXPECT_EQ(response.status, 500);
  Result<soap::Envelope> envelope = soap::parse(response.body);
  ASSERT_TRUE(envelope.ok());
  EXPECT_TRUE(envelope->is_fault());
}

TEST_F(HttpEndpoint, JavaStacksTolerateMissingSoapAction) {
  const auto server = frameworks::make_server("Metro 2.3");
  soap::HttpRequest request = echo_request("x");
  std::erase_if(request.headers,
                [](const soap::HttpHeader& header) { return header.name == "SOAPAction"; });
  EXPECT_EQ(server->handle_http(service(), request).status, 200);
}

TEST(WcfEndpoint, RequiresSoapActionHeader) {
  const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
  const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
  const catalog::TypeInfo* type = catalog.find(catalog::dotnet_names::kDataView);
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(service.ok());
  Result<soap::Envelope> envelope =
      soap::build_request(service->wsdl, "echo", {{"arg0", "x"}});
  soap::HttpRequest request =
      soap::make_soap_request("http://localhost/x", "", soap::write(*envelope));
  std::erase_if(request.headers,
                [](const soap::HttpHeader& header) { return header.name == "SOAPAction"; });
  const soap::HttpResponse response = server->handle_http(*service, request);
  EXPECT_EQ(response.status, 500);
  EXPECT_NE(response.body.find("SOAPAction"), std::string::npos);
}

/// Scaled communication study shared across the assertions below.
class CommStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.java_spec.plain_beans = 20;
    config.java_spec.throwable_clean = 3;
    config.java_spec.throwable_raw = 1;
    config.java_spec.raw_generic_beans = 2;
    config.java_spec.anytype_array_beans = 1;
    config.java_spec.no_default_ctor = 2;
    config.java_spec.abstract_classes = 1;
    config.java_spec.interfaces = 1;
    config.java_spec.generic_types = 1;
    config.dotnet_spec.plain_types = 20;
    config.dotnet_spec.dataset_plain = 2;
    config.dotnet_spec.dataset_duplicated = 1;
    config.dotnet_spec.dataset_nested = 1;
    config.dotnet_spec.dataset_array = 1;
    config.dotnet_spec.encoded_binding = 1;
    config.dotnet_spec.missing_soap_action = 2;
    config.dotnet_spec.deep_nesting_clean = 2;
    config.dotnet_spec.deep_nesting_pathological = 1;
    config.dotnet_spec.generator_crash = 1;
    config.dotnet_spec.non_serializable = 5;
    config.dotnet_spec.no_default_ctor = 4;
    config.dotnet_spec.generic_types = 3;
    config.dotnet_spec.abstract_classes = 2;
    config.dotnet_spec.interfaces = 1;
    result_ = new CommunicationResult(run_communication_study(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const CommunicationResult& result() { return *result_; }
  static CommunicationResult* result_;

  static const CommCell& cell(std::size_t server, std::string_view client_prefix) {
    for (const CommCell& candidate : result().servers[server].cells) {
      if (candidate.client.rfind(client_prefix, 0) == 0) return candidate;
    }
    static CommCell empty;
    return empty;
  }
};

CommunicationResult* CommStudy::result_ = nullptr;

TEST_F(CommStudy, MostInvocationsSucceed) {
  EXPECT_GT(result().total_attempted(), 0u);
  EXPECT_GT(result().total(CommOutcome::kOk), result().total_failures());
}

TEST_F(CommStudy, GsoapHitsTransportErrorsOnMissingSoapAction) {
  // gSOAP omits the SOAPAction header when the binding declares none; the
  // .NET HTTP stack rejects such requests (2 services in this config).
  EXPECT_EQ(cell(2, "gSOAP").count(CommOutcome::kTransportError), 2u);
  // Every other client sends an empty quoted action and passes.
  EXPECT_EQ(cell(2, "Oracle Metro").count(CommOutcome::kTransportError), 0u);
  EXPECT_EQ(cell(2, "suds").count(CommOutcome::kTransportError), 0u);
}

TEST_F(CommStudy, ZendSilentlyLosesDataOnUncommonStructures) {
  // Zend produced zero generation/compilation issues, yet its calls against
  // the DataSet-idiom services echo nothing back — the paper's warning
  // about step-1..3 cleanliness made concrete. 5 DataSet services here.
  EXPECT_EQ(cell(2, "Zend").count(CommOutcome::kEchoMismatch), 5u);
  EXPECT_EQ(cell(2, "suds").count(CommOutcome::kEchoMismatch), 0u);
}

TEST_F(CommStudy, ZeroOperationProxiesCannotInvoke) {
  // Future/Response on JBossWS: tools that silently accepted the unusable
  // WSDL end with proxies that cannot call anything.
  EXPECT_EQ(cell(1, "Apache Axis1").count(CommOutcome::kNoInvocableProxy), 2u);
  EXPECT_EQ(cell(1, "Apache CXF").count(CommOutcome::kNoInvocableProxy), 2u);
  EXPECT_EQ(cell(1, "Zend").count(CommOutcome::kNoInvocableProxy), 2u);
  // Tools that errored at generation never get here.
  EXPECT_EQ(cell(1, "Oracle Metro").count(CommOutcome::kNoInvocableProxy), 0u);
}

TEST_F(CommStudy, BlockedEarlierMatchesMainStudyGates) {
  // Clients blocked at steps 1–3 must not attempt communication: attempted
  // + blocked == deployed services.
  for (const CommServerResult& server : result().servers) {
    for (const CommCell& cell : server.cells) {
      EXPECT_EQ(cell.attempted() + cell.count(CommOutcome::kBlockedEarlier),
                server.services_deployed)
          << server.server << " / " << cell.client;
    }
  }
}

TEST_F(CommStudy, TransportDetailSplitsByStatusClass) {
  // The 4xx/5xx split refines kTransportError without changing it: the
  // two buckets never exceed the transport count (unparseable 2xx bodies
  // fall in neither).
  for (const CommServerResult& server : result().servers) {
    for (const CommCell& cell : server.cells) {
      EXPECT_LE(cell.transport_4xx + cell.transport_5xx,
                cell.count(CommOutcome::kTransportError))
          << server.server << " / " << cell.client;
    }
  }
  // gSOAP's missing-SOAPAction rejections on WCF are server-side 500s.
  EXPECT_EQ(cell(2, "gSOAP").transport_5xx, 2u);
  EXPECT_EQ(cell(2, "gSOAP").transport_4xx, 0u);
}

TEST_F(CommStudy, CsvCarriesTheTransportDetailColumns) {
  const std::string csv = communication_csv(result());
  EXPECT_EQ(csv.find("server,client,blocked"), 0u);
  EXPECT_NE(csv.find("transport_4xx,transport_5xx"), std::string::npos);
}

TEST_F(CommStudy, FormatRendersAllServers) {
  const std::string text = format_communication(result());
  EXPECT_NE(text.find("Metro 2.3"), std::string::npos);
  EXPECT_NE(text.find("WCF"), std::string::npos);
  EXPECT_NE(text.find("communication-step failures"), std::string::npos);
}

TEST(CommOutcomeMeta, Names) {
  EXPECT_STREQ(to_string(CommOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(CommOutcome::kEchoMismatch), "echo mismatch");
  EXPECT_STREQ(to_string(CommOutcome::kBlockedEarlier), "blocked earlier");
}

}  // namespace
}  // namespace wsx::interop
