// obs_test — units for the wsx::obs metric registry and span tracer:
// counter/gauge/histogram semantics, JSON export validity and stable
// ordering, the deterministic-export contract, null-sink no-ops, and the
// canonical (sorted, renumbered) span-tree export.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx::obs {
namespace {

TEST(Clock, FixedClockIsFrozen) {
  const FixedClock frozen(42);
  EXPECT_EQ(frozen.now_us(), 42u);
  EXPECT_EQ(frozen.now_us(), 42u);
  EXPECT_EQ(FixedClock().now_us(), 0u);
}

TEST(Clock, SteadyClockAdvances) {
  const std::uint64_t first = steady_clock().now_us();
  const std::uint64_t second = steady_clock().now_us();
  EXPECT_LE(first, second);
}

TEST(Metrics, CounterAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Metrics, GaugeSetAndHighWater) {
  Gauge gauge;
  gauge.set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set_max(3);  // lower: ignored
  EXPECT_EQ(gauge.value(), 7);
  gauge.set_max(11);
  EXPECT_EQ(gauge.value(), 11);
}

TEST(Metrics, HistogramTracksCountSumExtremes) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  histogram.observe(50);       // first bucket (<= 100us)
  histogram.observe(500);      // second bucket
  histogram.observe(2000000);  // sixth bucket (<= 5s)
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 2000550u);
  EXPECT_EQ(histogram.min(), 50u);
  EXPECT_EQ(histogram.max(), 2000000u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(5), 1u);
}

TEST(Metrics, HistogramOverflowLandsInLastBucket) {
  Histogram histogram;
  histogram.observe(Histogram::kBounds[Histogram::kBucketCount - 2] + 1);
  EXPECT_EQ(histogram.bucket(Histogram::kBucketCount - 1), 1u);
}

TEST(Registry, LookupCreatesAndReferencesAreStable) {
  Registry registry;
  Counter& counter = registry.counter("a.counter");
  counter.add(3);
  EXPECT_EQ(registry.counter("a.counter").value(), 3u);
  EXPECT_EQ(&registry.counter("a.counter"), &counter);
}

TEST(Registry, ExportIsValidJsonWithSortedNames) {
  Registry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.gauge").set(5);
  registry.histogram("h.hist").observe(10);
  const std::string text = registry.to_json();
  const Result<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const json::Value* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.first");
  EXPECT_EQ(counters->members()[1].first, "z.last");
  const json::Value* hist = parsed->find("histograms")->find("h.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_number(), 1.0);
  EXPECT_EQ(hist->find("buckets")->items().size(), Histogram::kBucketCount);
}

TEST(Registry, DeterministicExportDropsGaugesAndDurations) {
  Registry registry;
  registry.counter("c").add(4);
  registry.gauge("g").set(9);
  registry.histogram("h").observe(123);
  const std::string text = registry.to_json(Export::kDeterministic);
  const Result<json::Value> parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed->find("gauges"), nullptr);
  const json::Value* hist = parsed->find("histograms")->find("h");
  ASSERT_NE(hist, nullptr);
  // Observation counts are deterministic; the measured durations are not.
  EXPECT_NE(hist->find("count"), nullptr);
  EXPECT_EQ(hist->find("min_us"), nullptr);
  EXPECT_EQ(hist->find("max_us"), nullptr);
  EXPECT_EQ(hist->find("buckets"), nullptr);
}

TEST(Registry, ScopedTimerOnFixedClockRecordsZero) {
  const FixedClock frozen(1000);
  Registry registry(&frozen);
  { ScopedTimer timer = registry.timer("t"); }
  EXPECT_EQ(registry.histogram("t").count(), 1u);
  EXPECT_EQ(registry.histogram("t").sum(), 0u);
}

TEST(Registry, ScopedTimerStopRecordsOnce) {
  Registry registry;
  ScopedTimer timer = registry.timer("t");
  timer.stop();
  timer.stop();  // idempotent
  EXPECT_EQ(registry.histogram("t").count(), 1u);
}

TEST(Registry, NullSafeHelpersNoOpOnNull) {
  add(nullptr, "anything", 5);        // must not crash
  { ScopedTimer t = timer(nullptr, "anything"); }
  Registry registry;
  add(&registry, "c", 2);
  EXPECT_EQ(registry.counter("c").value(), 2u);
}

TEST(Registry, ConcurrentAddsAreLossless) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) add(&registry, "shared");
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared").value(), 4000u);
}

TEST(Registry, SummaryListsEveryMetric) {
  Registry registry;
  registry.counter("hits").add(2);
  registry.gauge("depth").set(1);
  registry.histogram("lat").observe(5);
  const std::string summary = registry.summary();
  EXPECT_NE(summary.find("hits"), std::string::npos);
  EXPECT_NE(summary.find("depth"), std::string::npos);
  EXPECT_NE(summary.find("lat"), std::string::npos);
}

TEST(Trace, SpanLifecycleAndAttributes) {
  Tracer tracer;
  {
    Span root(&tracer, "run");
    Span child(&tracer, "phase:x", root);
    child.annotate("items", std::size_t{3});
  }
  const std::vector<SpanData> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].ended);
  EXPECT_TRUE(spans[1].ended);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  ASSERT_EQ(spans[1].attributes.size(), 1u);
  EXPECT_EQ(spans[1].attributes[0].first, "items");
  EXPECT_EQ(spans[1].attributes[0].second, "3");
}

TEST(Trace, NullTracerSpansAreInert) {
  Span span(nullptr, "nothing");
  span.annotate("k", "v");
  span.end();  // must not crash
  EXPECT_EQ(span.id(), kNoSpan);
}

TEST(Trace, MovedFromSpanDoesNotDoubleEnd) {
  Tracer tracer;
  {
    Span a(&tracer, "a");
    Span b = std::move(a);
    // `a` is inert now; only `b` ends the span.
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_TRUE(tracer.spans()[0].ended);
}

TEST(Trace, JsonlLinesAreValidJson) {
  Tracer tracer;
  Span root(&tracer, "run");
  Span child(&tracer, "child \"quoted\"\n", root);
  child.annotate("key", "va\"lue");
  child.end();
  root.end();
  std::istringstream lines(tracer.to_jsonl());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const Result<json::Value> parsed = json::parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message << " in: " << line;
    EXPECT_NE(parsed->find("id"), nullptr);
    EXPECT_NE(parsed->find("parent"), nullptr);
    EXPECT_NE(parsed->find("name"), nullptr);
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Trace, CanonicalExportSortsSiblingsAndRenumbers) {
  // Record children out of order; the export must sort them by name and
  // renumber ids in canonical DFS order regardless of recording order.
  Tracer tracer;
  const SpanId root = tracer.begin_span("run");
  const SpanId late = tracer.begin_span("z-phase", root);
  const SpanId early = tracer.begin_span("a-phase", root);
  const SpanId leaf = tracer.begin_span("leaf", early);
  tracer.end_span(leaf);
  tracer.end_span(early);
  tracer.end_span(late);
  tracer.end_span(root);

  EXPECT_EQ(tracer.shape(), "run\n.a-phase\n..leaf\n.z-phase\n");

  std::istringstream lines(tracer.to_jsonl());
  std::string line;
  std::vector<std::string> names;
  std::vector<double> ids;
  while (std::getline(lines, line)) {
    const Result<json::Value> parsed = json::parse(line);
    ASSERT_TRUE(parsed.ok());
    names.push_back(parsed->find("name")->as_string());
    ids.push_back(parsed->find("id")->as_number());
  }
  EXPECT_EQ(names, (std::vector<std::string>{"run", "a-phase", "leaf", "z-phase"}));
  EXPECT_EQ(ids, (std::vector<double>{1, 2, 3, 4}));
}

TEST(Trace, ShapeIsIdenticalForAnyRecordingOrder) {
  const auto record = [](const std::vector<std::string>& order) {
    Tracer tracer;
    const SpanId root = tracer.begin_span("run");
    for (const std::string& name : order) {
      tracer.end_span(tracer.begin_span(name, root));
    }
    tracer.end_span(root);
    return tracer.shape();
  };
  EXPECT_EQ(record({"b", "a", "c"}), record({"c", "b", "a"}));
}

TEST(Trace, FixedClockJsonlIsByteStableAcrossRuns) {
  const auto run = [] {
    const FixedClock frozen;
    Tracer tracer(&frozen);
    const SpanId root = tracer.begin_span("run");
    tracer.annotate(root, "k", "v");
    tracer.end_span(tracer.begin_span("child", root));
    tracer.end_span(root);
    return tracer.to_jsonl();
  };
  EXPECT_EQ(run(), run());
}

TEST(Trace, SummaryIndentsByDepth) {
  Tracer tracer;
  const SpanId root = tracer.begin_span("run");
  tracer.end_span(tracer.begin_span("phase:deploy", root));
  tracer.end_span(root);
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("run"), std::string::npos);
  EXPECT_NE(summary.find("  phase:deploy"), std::string::npos);
}

TEST(Trace, ConcurrentSpanRecordingIsSafe) {
  Tracer tracer;
  const SpanId root = tracer.begin_span("run");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, root, t] {
      for (int i = 0; i < 100; ++i) {
        Span span(&tracer, "w" + std::to_string(t), root);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  tracer.end_span(root);
  EXPECT_EQ(tracer.spans().size(), 401u);
  // Ids must be unique even under contention.
  std::set<SpanId> ids;
  for (const SpanData& span : tracer.spans()) ids.insert(span.id);
  EXPECT_EQ(ids.size(), 401u);
}

}  // namespace
}  // namespace wsx::obs
