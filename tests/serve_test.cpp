// Tests for the serve subsystem (src/serve/*): the framed wire protocol,
// admission-control edge cases (expired deadlines, zero-capacity queues,
// budget exhaustion), the retry-then-quarantine lint path with its circuit
// breaker, warm-restart byte identity through the verdict-cache journal,
// and the optional localhost TCP transport.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/corpus.hpp"
#include "analysis/predict.hpp"
#include "serve/admission.hpp"
#include "serve/daemon.hpp"
#include "serve/oracle.hpp"
#include "serve/protocol.hpp"
#include "serve/tcp.hpp"

namespace wsx::serve {
namespace {

analysis::predict::PredictOptions tiny_predict() {
  analysis::predict::PredictOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 3;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  java.no_default_ctor = 1;
  java.abstract_classes = 1;
  java.interfaces = 1;
  java.generic_types = 1;
  options.java_spec = java;
  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 3;
  dotnet.dataset_plain = 1;
  dotnet.dataset_duplicated = 1;
  dotnet.deep_nesting_clean = 1;
  dotnet.deep_nesting_pathological = 1;
  dotnet.non_serializable = 1;
  options.dotnet_spec = dotnet;
  options.join_study = false;
  options.jobs = 2;
  return options;
}

/// One cold oracle over the tiny corpus, loaded once and copied into each
/// daemon under test (Oracle is immutable after load, so copies are safe).
const Oracle& shared_oracle() {
  static const Oracle* oracle = [] {
    OracleOptions options;
    options.predict = tiny_predict();
    Result<Oracle> loaded = Oracle::load(options);
    if (!loaded.ok()) {
      ADD_FAILURE() << "oracle load failed: " << loaded.error().message;
      std::abort();
    }
    return new Oracle(std::move(loaded.value()));
  }();
  return *oracle;
}

/// A WSDL document the lint path parses cleanly: the first generated
/// description of the tiny corpus.
const std::string& valid_wsdl_body() {
  static const std::string* body = [] {
    analysis::predict::PredictReport scratch;
    const std::vector<analysis::LintJob> jobs =
        analysis::predict::build_predict_corpus(tiny_predict(), scratch);
    if (jobs.empty()) {
      ADD_FAILURE() << "tiny corpus produced no jobs";
      std::abort();
    }
    return new std::string(jobs.front().wsdl_text);
  }();
  return *body;
}

struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(testing::TempDir() + "wsx_serve_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

Request verdict_request(const Oracle& oracle, std::size_t service_index = 0) {
  Request request;
  request.kind = QueryKind::kVerdict;
  request.client = oracle.clients().front();
  const auto& record = oracle.records()[service_index % oracle.records().size()];
  request.service = record.server + "/" + record.service;
  return request;
}

// ----------------------------------------------------------------- protocol

TEST(ServeProtocol, RequestRoundTrip) {
  Request request;
  request.kind = QueryKind::kSubstitute;
  request.client = "gSOAP Toolkit 2.8.16";
  request.service = "Metro 2.3/EchoFoo";
  request.top = 7;
  Result<Request> decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded->kind, request.kind);
  EXPECT_EQ(decoded->client, request.client);
  EXPECT_EQ(decoded->service, request.service);
  EXPECT_EQ(decoded->top, request.top);

  Request lint;
  lint.kind = QueryKind::kLint;
  lint.body = "<definitions>\nline two\n\"quoted\"</definitions>";
  Result<Request> lint_decoded = decode_request(encode_request(lint));
  ASSERT_TRUE(lint_decoded.ok());
  EXPECT_EQ(lint_decoded->kind, QueryKind::kLint);
  EXPECT_EQ(lint_decoded->body, lint.body);

  EXPECT_FALSE(decode_request("not json").ok());
  EXPECT_FALSE(decode_request("{\"query\":\"warp\"}").ok());
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Response response;
  response.status = StatusCode::kShedded;
  response.reason = "queue full: load shed";
  response.latency_ms = 0;
  Result<Response> decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded->status, StatusCode::kShedded);
  EXPECT_EQ(decoded->reason, response.reason);

  Response ok;
  ok.status = StatusCode::kOk;
  ok.body = "{\"verdict\":\"ok\"}";
  ok.latency_ms = 12;
  Result<Response> ok_decoded = decode_response(encode_response(ok));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_EQ(ok_decoded->body, ok.body);
  EXPECT_EQ(ok_decoded->latency_ms, 12u);
}

TEST(ServeProtocol, FrameReaderReassemblesByteWiseFeeds) {
  const std::string stream = frame("{\"a\":1}") + frame("{\"b\":\"two\"}");
  FrameReader reader;
  std::vector<std::string> payloads;
  for (const char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    for (;;) {
      std::string payload;
      Result<bool> next = reader.next(payload);
      ASSERT_TRUE(next.ok()) << next.error().message;
      if (!next.value()) break;
      payloads.push_back(payload);
    }
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "{\"a\":1}");
  EXPECT_EQ(payloads[1], "{\"b\":\"two\"}");
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(ServeProtocol, FrameReaderRejectsMalformedHeaders) {
  FrameReader missing_hash;
  missing_hash.feed("7\n{\"a\":1}\n");
  std::string payload;
  EXPECT_FALSE(missing_hash.next(payload).ok());

  FrameReader bad_length;
  bad_length.feed("#seven\n{\"a\":1}\n");
  EXPECT_FALSE(bad_length.next(payload).ok());

  FrameReader missing_terminator;
  missing_terminator.feed("#7\n{\"a\":1}X");
  EXPECT_FALSE(missing_terminator.next(payload).ok());
}

// ---------------------------------------------------------------- admission

TEST(ServeAdmission, DeadlineUnmeetableAtArrivalIsRejectedUpFront) {
  AdmissionSettings settings;
  settings.lanes = 1;
  settings.verdict = ClassSpec{20, 10};  // cost alone overshoots the deadline
  AdmissionController admission(settings);
  const Admission rejected = admission.admit(QueryKind::kVerdict, 5);
  EXPECT_EQ(rejected.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.snapshot().deadline_rejected, 1u);
  EXPECT_EQ(admission.snapshot().admitted, 0u);
}

TEST(ServeAdmission, QueueWaitPushesPastDeadline) {
  AdmissionSettings settings;
  settings.lanes = 1;
  settings.verdict = ClassSpec{10, 15};
  AdmissionController admission(settings);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 0).status, StatusCode::kOk);
  // The lane is busy until t=10: wait 10 + cost 10 = 20 > deadline 15.
  const Admission late = admission.admit(QueryKind::kVerdict, 0);
  EXPECT_EQ(late.status, StatusCode::kDeadlineExceeded);
  // Once the lane drains, the class is admittable again.
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 10).status, StatusCode::kOk);
}

TEST(ServeAdmission, ZeroCapacityQueueShedsWheneverNoLaneIsFree) {
  AdmissionSettings settings;
  settings.lanes = 1;
  settings.queue_capacity = 0;
  settings.verdict = ClassSpec{10, 0};  // no deadline: shedding is the queue's call
  AdmissionController admission(settings);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 0).status, StatusCode::kOk);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 0).status, StatusCode::kShedded);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 9).status, StatusCode::kShedded);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 10).status, StatusCode::kOk);
  EXPECT_EQ(admission.snapshot().shed, 2u);
}

TEST(ServeAdmission, ShedWinsOverDeadlineWhenBothApply) {
  AdmissionSettings settings;
  settings.lanes = 1;
  settings.queue_capacity = 0;
  settings.verdict = ClassSpec{10, 10};
  AdmissionController admission(settings);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 0).status, StatusCode::kOk);
  // The second arrival both misses its deadline (wait 10 + cost 10 > 10)
  // and finds the queue full; the full queue must be the reported cause so
  // the shed and deadline counters stay distinguishable.
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 0).status, StatusCode::kShedded);
  EXPECT_EQ(admission.snapshot().deadline_rejected, 0u);
}

TEST(ServeAdmission, QueryBudgetExhaustionSheds) {
  AdmissionSettings settings;
  settings.budget_queries = 2;
  AdmissionController admission(settings);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 1).status, StatusCode::kOk);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 2).status, StatusCode::kOk);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 3).status, StatusCode::kShedded);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 1000).status, StatusCode::kShedded);
  EXPECT_EQ(admission.snapshot().admitted, 2u);
}

TEST(ServeAdmission, CostBudgetExhaustionSheds) {
  AdmissionSettings settings;
  settings.verdict = ClassSpec{10, 0};
  settings.budget_cost_ms = 25;
  AdmissionController admission(settings);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 1).status, StatusCode::kOk);
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 20).status, StatusCode::kOk);
  // 20 ms spent; another 10 ms query would overshoot the 25 ms budget.
  EXPECT_EQ(admission.admit(QueryKind::kVerdict, 40).status, StatusCode::kShedded);
}

// ------------------------------------------------------------------- daemon

TEST(ServeDaemon, AnswersPrecomputedQueries) {
  Daemon daemon(shared_oracle(), DaemonSettings{});
  std::uint64_t now = 0;

  Request verdict = verdict_request(daemon.oracle());
  Response answered = daemon.handle(verdict, ++now);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_NE(answered.body.find("\"verdict\""), std::string::npos);

  Request explain = verdict;
  explain.kind = QueryKind::kExplain;
  answered = daemon.handle(explain, ++now);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_NE(answered.body.find("\"mechanisms\""), std::string::npos);

  Request substitute = verdict;
  substitute.kind = QueryKind::kSubstitute;
  substitute.top = 3;
  answered = daemon.handle(substitute, ++now);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_NE(answered.body.find("\"candidates\""), std::string::npos);

  Request unknown = verdict;
  unknown.service = "NoSuchServer/NoSuchService";
  answered = daemon.handle(unknown, ++now);
  EXPECT_EQ(answered.status, StatusCode::kNotFound);
}

TEST(ServeDaemon, StatsBypassesAdmissionEvenWhenShedding) {
  DaemonSettings settings;
  settings.admission.budget_queries = 1;
  Daemon daemon(shared_oracle(), settings);

  EXPECT_EQ(daemon.handle(verdict_request(daemon.oracle()), 1).status, StatusCode::kOk);
  EXPECT_EQ(daemon.handle(verdict_request(daemon.oracle()), 2).status,
            StatusCode::kShedded);

  Request stats;
  stats.kind = QueryKind::kStats;
  const Response answered = daemon.handle(stats, 3);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_NE(answered.body.find("\"shed\":1"), std::string::npos);
  EXPECT_NE(answered.body.find("\"admitted\":1"), std::string::npos);
}

TEST(ServeDaemon, PoisonUploadRetriedQuarantinedAndBreakerCools) {
  DaemonSettings settings;
  settings.quarantine_after = 2;
  settings.breaker.failure_threshold = 2;
  settings.breaker.open_ms = 50;
  Daemon daemon(shared_oracle(), settings);

  Request lint;
  lint.kind = QueryKind::kLint;

  // Poison body #1 burns its two attempts inside one request and is parked.
  lint.body = "<definitions xmlns=\"";
  Response answered = daemon.handle(lint, 1);
  EXPECT_EQ(answered.status, StatusCode::kQuarantined);
  EXPECT_EQ(daemon.lint_snapshot().attempts, 2u);

  // A repeat of the same body is answered from quarantine in O(1).
  answered = daemon.handle(lint, 2);
  EXPECT_EQ(answered.status, StatusCode::kQuarantined);
  EXPECT_EQ(daemon.lint_snapshot().quarantined_hits, 1u);
  EXPECT_EQ(daemon.lint_snapshot().attempts, 2u);

  // Poison body #2 is the second consecutive failed request: breaker opens.
  lint.body = "not xml at all";
  answered = daemon.handle(lint, 3);
  EXPECT_EQ(answered.status, StatusCode::kQuarantined);
  EXPECT_EQ(daemon.lint_snapshot().breaker_trips, 1u);
  EXPECT_EQ(daemon.lint_snapshot().quarantined_bodies, 2u);

  // While open, even a clean upload is refused without parsing.
  lint.body = valid_wsdl_body();
  answered = daemon.handle(lint, 4);
  EXPECT_EQ(answered.status, StatusCode::kCircuitOpen);

  // After the cooldown the half-open probe succeeds and closes the breaker.
  answered = daemon.handle(lint, 60);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_NE(answered.body.find("\"findings\""), std::string::npos);
  answered = daemon.handle(lint, 61);
  EXPECT_EQ(answered.status, StatusCode::kOk);
  EXPECT_EQ(daemon.lint_snapshot().breaker_trips, 1u);
}

// ------------------------------------------------------------- warm restart

TEST(ServeOracle, WarmRestartIsByteIdenticalToColdLoad) {
  ScratchJournal scratch("warm");
  const std::uint64_t cold_fingerprint = shared_oracle().fingerprint();

  // Crash drill: the first load trips partway through the precompute,
  // leaving a partial verdict-cache journal behind.
  OracleOptions tripped_options;
  tripped_options.predict = tiny_predict();
  tripped_options.cache_path = scratch.path;
  // Blocks of 4, trip after 5: the tiny corpus fits inside one default
  // checkpoint block, so the drill needs a shorter cadence to fire at all.
  tripped_options.journal.checkpoint_every = 4;
  tripped_options.trip_after_tasks = 5;
  Result<Oracle> tripped = Oracle::load(tripped_options);
  ASSERT_TRUE(tripped.ok()) << tripped.error().message;
  ASSERT_TRUE(tripped->precompute().tripped);
  ASSERT_GT(tripped->precompute().executed, 0u);

  // Warm restart resumes the journal and finishes the precompute; the
  // resulting cache must be byte-identical to a cold one.
  Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  OracleOptions warm_options;
  warm_options.predict = tiny_predict();
  warm_options.cache_path = scratch.path;
  warm_options.journal.checkpoint_every = 4;  // must match the journal header
  warm_options.resume = &journal.value();
  Result<Oracle> warm = Oracle::load(warm_options);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_FALSE(warm->precompute().tripped);
  EXPECT_GT(warm->precompute().resumed, 0u);
  EXPECT_EQ(warm->fingerprint(), cold_fingerprint);

  // And the daemons built on both answer identically, stats included.
  Daemon cold_daemon(shared_oracle(), DaemonSettings{});
  Daemon warm_daemon(std::move(warm.value()), DaemonSettings{});
  const Request request = verdict_request(cold_daemon.oracle());
  EXPECT_EQ(encode_response(cold_daemon.handle(request, 1)),
            encode_response(warm_daemon.handle(request, 1)));
  EXPECT_EQ(cold_daemon.stats_body(2), warm_daemon.stats_body(2));
}

// ---------------------------------------------------------------------- tcp

TEST(ServeTcp, RoundTripOverLocalhost) {
  Result<TcpServer> server = TcpServer::listen(0);
  if (!server.ok()) {
    GTEST_SKIP() << "cannot bind localhost: " << server.error().message;
  }
  Daemon daemon(shared_oracle(), DaemonSettings{});
  std::uint64_t now = 0;
  std::thread serving(
      [&] { (void)server->serve(daemon, 1, now); });
  const Result<Response> answered =
      tcp_query(server->port(), verdict_request(daemon.oracle()));
  serving.join();
  ASSERT_TRUE(answered.ok()) << answered.error().message;
  EXPECT_EQ(answered->status, StatusCode::kOk);
  EXPECT_NE(answered->body.find("\"verdict\""), std::string::npos);
}

}  // namespace
}  // namespace wsx::serve
