// test_helpers.hpp — shared fixtures for the wsinterop test suite.
#pragma once

#include <string_view>
#include <vector>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "gen/request_gen.hpp"
#include "wsdl/model.hpp"

namespace wsx::testing {

/// Small catalog population shared by the chaos, fuzz-bridge and propcheck
/// suites: enough services for differentiated counts, fast enough for a
/// unit test.
inline catalog::JavaCatalogSpec small_java_spec() {
  catalog::JavaCatalogSpec spec;
  spec.plain_beans = 20;
  spec.throwable_clean = 2;
  spec.throwable_raw = 1;
  spec.raw_generic_beans = 1;
  spec.anytype_array_beans = 1;
  spec.no_default_ctor = 2;
  spec.abstract_classes = 1;
  spec.interfaces = 1;
  spec.generic_types = 1;
  return spec;
}

inline catalog::DotNetCatalogSpec small_dotnet_spec() {
  catalog::DotNetCatalogSpec spec;
  spec.plain_types = 20;
  spec.dataset_plain = 2;
  spec.deep_nesting_clean = 1;
  spec.non_serializable = 2;
  spec.no_default_ctor = 2;
  spec.generic_types = 1;
  spec.abstract_classes = 1;
  spec.interfaces = 1;
  return spec;
}

/// Deploys the service a server publishes for one named catalog type —
/// the single-pair unit the bridge tests start from.
inline frameworks::DeployedService deploy_one(std::string_view server_name,
                                              std::string_view type_name) {
  // Static: ServiceSpec points into the catalog, so it must outlive the
  // returned service.
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server(server_name);
  const catalog::TypeInfo* type = catalog.find(std::string(type_name));
  return std::move(server->deploy(frameworks::ServiceSpec{type}).value());
}

/// One deployed service with its parse-once description and its seeded
/// generated corpus — the unit every corpus-replay test starts from.
struct SeededService {
  frameworks::DeployedService service;
  frameworks::SharedDescription description;
  std::vector<gen::GeneratedCase> corpus;
};

/// Deploys every service `server` publishes for `catalog` and compiles the
/// per-service corpus at `options`. Deterministic: same (catalog, options)
/// always yields byte-identical corpora.
inline std::vector<SeededService> seeded_corpus(const frameworks::ServerFramework& server,
                                                const catalog::TypeCatalog& catalog,
                                                const gen::CorpusOptions& options) {
  std::vector<SeededService> seeded;
  for (const catalog::TypeInfo& type : catalog.types()) {
    Result<frameworks::DeployedService> service =
        server.deploy(frameworks::ServiceSpec{&type});
    if (!service.ok()) continue;
    frameworks::DeployedService deployed = std::move(service.value());
    frameworks::SharedDescription description =
        frameworks::SharedDescription::from_deployed(deployed, /*with_wsi=*/false);
    std::vector<gen::GeneratedCase> corpus = gen::generate_corpus(deployed, options);
    seeded.push_back(
        SeededService{std::move(deployed), std::move(description), std::move(corpus)});
  }
  return seeded;
}

/// A minimal, fully WS-I-compliant echo description (document/literal
/// wrapped, one operation), used as the baseline that individual tests
/// then break in targeted ways.
inline wsdl::Definitions compliant_echo_definitions() {
  wsdl::Definitions defs;
  defs.name = "Echo";
  defs.target_namespace = "urn:echo";

  xsd::Schema schema;
  schema.target_namespace = "urn:echo";
  xsd::ComplexType payload;
  payload.name = "Payload";
  xsd::ElementDecl field;
  field.name = "value";
  field.type = xsd::qname(xsd::Builtin::kString);
  payload.particles.emplace_back(std::move(field));
  schema.complex_types.push_back(std::move(payload));

  const auto wrapper = [](const std::string& name, const std::string& child) {
    xsd::ElementDecl element;
    element.name = name;
    xsd::ComplexType type;
    xsd::ElementDecl arg;
    arg.name = child;
    arg.type = xml::QName{"urn:echo", "Payload"};
    type.particles.emplace_back(std::move(arg));
    element.inline_type = Box<xsd::ComplexType>{std::move(type)};
    return element;
  };
  schema.elements.push_back(wrapper("echo", "arg0"));
  schema.elements.push_back(wrapper("echoResponse", "return"));
  defs.schemas.push_back(std::move(schema));

  wsdl::Message input;
  input.name = "echo";
  input.parts.push_back({"parameters", xml::QName{"urn:echo", "echo"}, {}});
  defs.messages.push_back(std::move(input));
  wsdl::Message output;
  output.name = "echoResponse";
  output.parts.push_back({"parameters", xml::QName{"urn:echo", "echoResponse"}, {}});
  defs.messages.push_back(std::move(output));

  wsdl::PortType port_type;
  port_type.name = "EchoPort";
  port_type.operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.port_types.push_back(std::move(port_type));

  wsdl::Binding binding;
  binding.name = "EchoBinding";
  binding.port_type = xml::QName{"urn:echo", "EchoPort"};
  wsdl::BindingOperation operation;
  operation.name = "echo";
  operation.soap_action = "";
  binding.operations.push_back(std::move(operation));
  defs.bindings.push_back(std::move(binding));

  wsdl::Service service;
  service.name = "EchoService";
  service.ports.push_back(
      {"EchoPort", xml::QName{"urn:echo", "EchoBinding"}, "http://localhost/echo"});
  defs.services.push_back(std::move(service));
  return defs;
}

}  // namespace wsx::testing
