// test_helpers.hpp — shared fixtures for the wsinterop test suite.
#pragma once

#include "wsdl/model.hpp"

namespace wsx::testing {

/// A minimal, fully WS-I-compliant echo description (document/literal
/// wrapped, one operation), used as the baseline that individual tests
/// then break in targeted ways.
inline wsdl::Definitions compliant_echo_definitions() {
  wsdl::Definitions defs;
  defs.name = "Echo";
  defs.target_namespace = "urn:echo";

  xsd::Schema schema;
  schema.target_namespace = "urn:echo";
  xsd::ComplexType payload;
  payload.name = "Payload";
  xsd::ElementDecl field;
  field.name = "value";
  field.type = xsd::qname(xsd::Builtin::kString);
  payload.particles.emplace_back(std::move(field));
  schema.complex_types.push_back(std::move(payload));

  const auto wrapper = [](const std::string& name, const std::string& child) {
    xsd::ElementDecl element;
    element.name = name;
    xsd::ComplexType type;
    xsd::ElementDecl arg;
    arg.name = child;
    arg.type = xml::QName{"urn:echo", "Payload"};
    type.particles.emplace_back(std::move(arg));
    element.inline_type = Box<xsd::ComplexType>{std::move(type)};
    return element;
  };
  schema.elements.push_back(wrapper("echo", "arg0"));
  schema.elements.push_back(wrapper("echoResponse", "return"));
  defs.schemas.push_back(std::move(schema));

  wsdl::Message input;
  input.name = "echo";
  input.parts.push_back({"parameters", xml::QName{"urn:echo", "echo"}, {}});
  defs.messages.push_back(std::move(input));
  wsdl::Message output;
  output.name = "echoResponse";
  output.parts.push_back({"parameters", xml::QName{"urn:echo", "echoResponse"}, {}});
  defs.messages.push_back(std::move(output));

  wsdl::PortType port_type;
  port_type.name = "EchoPort";
  port_type.operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.port_types.push_back(std::move(port_type));

  wsdl::Binding binding;
  binding.name = "EchoBinding";
  binding.port_type = xml::QName{"urn:echo", "EchoPort"};
  wsdl::BindingOperation operation;
  operation.name = "echo";
  operation.soap_action = "";
  binding.operations.push_back(std::move(operation));
  defs.bindings.push_back(std::move(binding));

  wsdl::Service service;
  service.name = "EchoService";
  service.ports.push_back(
      {"EchoPort", xml::QName{"urn:echo", "EchoBinding"}, "http://localhost/echo"});
  defs.services.push_back(std::move(service));
  return defs;
}

}  // namespace wsx::testing
