// Tests for XSD type derivation (complexContent/extension) and its use by
// the Throwable service schemas.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "wsdl/parser.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xsd/reader.hpp"
#include "xsd/resolver.hpp"
#include "xsd/writer.hpp"

namespace wsx::xsd {
namespace {

Schema derived_schema() {
  Schema schema;
  schema.target_namespace = "urn:derive";
  ComplexType base;
  base.name = "Base";
  ElementDecl id;
  id.name = "id";
  id.type = qname(Builtin::kInt);
  base.particles.emplace_back(std::move(id));
  schema.complex_types.push_back(std::move(base));

  ComplexType derived;
  derived.name = "Derived";
  derived.base = xml::QName{"urn:derive", "Base"};
  ElementDecl extra;
  extra.name = "extra";
  extra.type = qname(Builtin::kString);
  derived.particles.emplace_back(std::move(extra));
  AttributeDecl marker;
  marker.name = "marker";
  marker.type = qname(Builtin::kBoolean);
  derived.attributes.push_back(std::move(marker));
  schema.complex_types.push_back(std::move(derived));
  return schema;
}

TEST(Derivation, WriterEmitsComplexContentExtension) {
  const std::string text = xml::write(to_xml(derived_schema()));
  EXPECT_NE(text.find("xs:complexContent"), std::string::npos);
  EXPECT_NE(text.find("base=\"tns:Base\""), std::string::npos);
}

TEST(Derivation, RoundTripsThroughXml) {
  const Schema original = derived_schema();
  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(original)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, original);
  const ComplexType* derived = read_back->find_complex_type("Derived");
  ASSERT_NE(derived, nullptr);
  EXPECT_TRUE(derived->is_derived());
  EXPECT_EQ(derived->base.local_name(), "Base");
  EXPECT_EQ(derived->elements().size(), 1u);
  EXPECT_EQ(derived->attributes.size(), 1u);
}

TEST(Derivation, ResolverAcceptsLocalBase) {
  EXPECT_TRUE(resolve({derived_schema()}).clean());
}

TEST(Derivation, ResolverFlagsUnknownBase) {
  Schema schema = derived_schema();
  schema.complex_types.back().base = xml::QName{"urn:derive", "Ghost"};
  const ResolutionReport report = resolve({schema});
  ASSERT_EQ(report.unresolved.size(), 1u);
  EXPECT_EQ(report.unresolved.front().kind, RefKind::kTypeRef);
  EXPECT_NE(report.unresolved.front().context.find("extension base"), std::string::npos);
}

TEST(Derivation, BuiltinBaseResolves) {
  Schema schema = derived_schema();
  schema.complex_types.back().base = qname(Builtin::kAnyType);
  EXPECT_TRUE(resolve({schema}).clean());
}

TEST(Derivation, ThrowableServicesExtendThrowableBase) {
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (!type.has(catalog::Trait::kThrowableDerived) ||
        type.has(catalog::Trait::kRawGenericApi)) {
      continue;
    }
    Result<frameworks::DeployedService> service =
        server->deploy(frameworks::ServiceSpec{&type});
    ASSERT_TRUE(service.ok());
    // The served text carries the derivation...
    Result<wsdl::Definitions> reparsed = wsdl::parse(service->wsdl_text);
    ASSERT_TRUE(reparsed.ok());
    const Schema& schema = reparsed->schemas.front();
    const ComplexType* base = schema.find_complex_type("Throwable");
    ASSERT_NE(base, nullptr);
    const ComplexType* bean = schema.find_complex_type(type.name);
    ASSERT_NE(bean, nullptr);
    EXPECT_TRUE(bean->is_derived());
    EXPECT_EQ(bean->base.local_name(), "Throwable");
    break;  // one representative suffices
  }
}

TEST(Derivation, PlainServicesDoNotDerive) {
  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  const catalog::TypeInfo* type = catalog.find(catalog::java_names::kXmlGregorianCalendar);
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(service.ok());
  for (const ComplexType& complex_type : service->wsdl.schemas.front().complex_types) {
    EXPECT_FALSE(complex_type.is_derived()) << complex_type.name;
  }
}

}  // namespace
}  // namespace wsx::xsd
