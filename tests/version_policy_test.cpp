// version_policy_test.cpp — the mixed-version robustness axis
// (docs/VERSIONS.md): policy metadata, hybrid profiles, per-policy server
// validation, the version-skew wire faults, downgrade recovery, and the
// axis's determinism and resume guarantees.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "chaos/campaign.hpp"
#include "chaos/policy.hpp"
#include "chaos/supervised.hpp"
#include "chaos/wire.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/version_policy.hpp"
#include "interop/communication.hpp"
#include "interop/supervised.hpp"
#include "resilience/journal.hpp"
#include "soap/envelope.hpp"
#include "soap/http.hpp"
#include "soap/message.hpp"
#include "soap/version.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

using frameworks::VersionPolicy;

// ------------------------------------------------------------ metadata

TEST(VersionPolicyMeta, SpellingsRoundTripThroughTheParser) {
  const auto all = frameworks::all_version_policies();
  EXPECT_EQ(all.size(), frameworks::kVersionPolicyCount);
  for (const VersionPolicy policy : all) {
    const std::optional<VersionPolicy> parsed =
        frameworks::parse_version_policy(frameworks::to_string(policy));
    ASSERT_TRUE(parsed.has_value()) << frameworks::to_string(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(frameworks::parse_version_policy("lenient").has_value());
  EXPECT_FALSE(frameworks::parse_version_policy("").has_value());
}

TEST(VersionPolicyMeta, PolicyImpliesProfile) {
  EXPECT_EQ(frameworks::profile_for(VersionPolicy::kStrict), soap::HybridProfile::kPure11);
  EXPECT_EQ(frameworks::profile_for(VersionPolicy::kRelaxed),
            soap::HybridProfile::kAddressing);
  EXPECT_EQ(frameworks::profile_for(VersionPolicy::kShadedCxf),
            soap::HybridProfile::kSecured);
}

TEST(VersionPolicyMeta, MatrixCoversTheRoster) {
  const std::string matrix = frameworks::format_version_policy_matrix();
  for (const auto& server : frameworks::make_servers()) {
    EXPECT_NE(matrix.find(server->name()), std::string::npos) << server->name();
  }
  for (const auto& client : frameworks::make_clients()) {
    EXPECT_NE(matrix.find(client->name()), std::string::npos) << client->name();
  }
  EXPECT_NE(matrix.find("| strict |"), std::string::npos);
  EXPECT_NE(matrix.find("| relaxed |"), std::string::npos);
  EXPECT_NE(matrix.find("| shaded |"), std::string::npos);
}

// -------------------------------------------- per-policy server validation

class ServerPolicy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    service_ = new frameworks::DeployedService(wsx::testing::deploy_one(
        "Metro 2.3", catalog::java_names::kXmlGregorianCalendar));
  }
  static void TearDownTestSuite() {
    delete service_;
    service_ = nullptr;
  }
  static const frameworks::DeployedService& service() { return *service_; }
  static frameworks::DeployedService* service_;

  /// A well-formed echo request dressed in `profile`.
  static soap::Envelope request_with(soap::HybridProfile profile) {
    Result<soap::Envelope> request =
        soap::build_request(service().wsdl, "echo", {{"arg0", "versioned"}});
    EXPECT_TRUE(request.ok());
    soap::apply_hybrid_profile(*request, profile, "echo");
    return *request;
  }

  /// Runs the envelope through the server under `policy` and returns the
  /// fault code ("" = echoed successfully).
  static std::string fault_code(const soap::Envelope& request, VersionPolicy policy) {
    const auto server = frameworks::make_server("Metro 2.3");
    const soap::Envelope response = server->handle_request(service(), request, policy);
    return response.is_fault() ? response.fault().fault_code : "";
  }
};

frameworks::DeployedService* ServerPolicy::service_ = nullptr;

TEST_F(ServerPolicy, PureElevenIsAcceptedUnderEveryPolicy) {
  for (const VersionPolicy policy : frameworks::all_version_policies()) {
    EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kPure11), policy), "")
        << frameworks::to_string(policy);
  }
}

TEST_F(ServerPolicy, StrictFaultsAnyTwelveEraHeader) {
  EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kAddressing),
                       VersionPolicy::kStrict),
            "soap:VersionMismatch");
  EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kSecured), VersionPolicy::kStrict),
            "soap:VersionMismatch");
}

TEST_F(ServerPolicy, RelaxedSkipsIgnorableHeadersButFaultsMustUnderstand) {
  EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kAddressing),
                       VersionPolicy::kRelaxed),
            "");
  EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kSecured),
                       VersionPolicy::kRelaxed),
            "soap:MustUnderstand");
}

TEST_F(ServerPolicy, ShadedProcessesTheFullDigikoppelingShape) {
  EXPECT_EQ(fault_code(request_with(soap::HybridProfile::kSecured),
                       VersionPolicy::kShadedCxf),
            "");
}

TEST_F(ServerPolicy, UnknownMustUnderstandHeaderFaultsUnderEveryPolicy) {
  for (const VersionPolicy policy : frameworks::all_version_policies()) {
    soap::Envelope request = request_with(soap::HybridProfile::kPure11);
    xml::Element custom("ext:Session");
    custom.set_attribute("xmlns:ext", "urn:example:session");
    request.add_must_understand_header(std::move(custom));
    EXPECT_EQ(fault_code(request, policy), "soap:MustUnderstand")
        << frameworks::to_string(policy);
  }
}

TEST_F(ServerPolicy, GenuineSoap12EnvelopeSplitsTheRoster) {
  soap::Envelope request = request_with(soap::HybridProfile::kPure11);
  request.set_version(soap::SoapVersion::k12);
  // Strict and relaxed endpoints answer with the standard fault, in 1.1.
  EXPECT_EQ(fault_code(request, VersionPolicy::kStrict), "soap:VersionMismatch");
  EXPECT_EQ(fault_code(request, VersionPolicy::kRelaxed), "soap:VersionMismatch");
  // The shaded runtime processes it and answers in kind.
  const auto server = frameworks::make_server("Metro 2.3");
  const soap::Envelope response =
      server->handle_request(service(), request, VersionPolicy::kShadedCxf);
  EXPECT_FALSE(response.is_fault());
  EXPECT_EQ(response.version(), soap::SoapVersion::k12);
}

TEST_F(ServerPolicy, MediaTypeGateIsPolicyScoped) {
  const auto server = frameworks::make_server("Metro 2.3");
  soap::Envelope request = request_with(soap::HybridProfile::kPure11);
  request.set_version(soap::SoapVersion::k12);
  soap::HttpRequest http =
      soap::make_soap_request("http://localhost/echo", "", soap::write(request));
  http.set_header("Content-Type", "application/soap+xml; charset=utf-8");
  for (const VersionPolicy policy :
       {VersionPolicy::kStrict, VersionPolicy::kRelaxed}) {
    EXPECT_EQ(server->handle_http(service(), http, policy).status, 415)
        << frameworks::to_string(policy);
  }
  const soap::HttpResponse shaded =
      server->handle_http(service(), http, VersionPolicy::kShadedCxf);
  EXPECT_EQ(shaded.status, 200);
  ASSERT_TRUE(shaded.header("Content-Type").has_value());
  EXPECT_TRUE(soap::content_type_matches(*shaded.header("Content-Type"),
                                         soap::SoapVersion::k12));
}

// ------------------------------------------------- version-skew wire faults

TEST(VersionSkewWire, DowngradedRetransmitBypassesOnlySkewKinds) {
  const frameworks::DeployedService service = wsx::testing::deploy_one(
      "Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
  const auto server = frameworks::make_server("Metro 2.3");
  Result<soap::Envelope> request =
      soap::build_request(service.wsdl, "echo", {{"arg0", "skew"}});
  ASSERT_TRUE(request.ok());
  const soap::HttpRequest http =
      soap::make_soap_request("http://localhost/echo", "", soap::write(*request));

  for (const chaos::FaultKind kind :
       {chaos::FaultKind::kSoap12Rewrite, chaos::FaultKind::kMustUnderstandInject,
        chaos::FaultKind::kContentTypeSkew}) {
    chaos::FaultPlan plan;
    plan.rate_percent = 100;
    plan.kinds = {kind};
    chaos::FaultyWire wire(*server, plan);
    wire.set_server_policy(VersionPolicy::kStrict);
    const chaos::CallSchedule schedule = wire.schedule("pair|call#0");
    ASSERT_TRUE(schedule.faulted());

    // The skewed attempt reaches a strict server and is rejected — a SOAP
    // fault (HTTP 500) for the envelope-level skews, HTTP 415 when the
    // Content-Type itself was skewed.
    const chaos::WireAttempt skewed = wire.attempt(service, http, schedule, 0);
    ASSERT_TRUE(skewed.injected.has_value());
    if (skewed.response.status == 415) {
      EXPECT_EQ(kind, chaos::FaultKind::kContentTypeSkew);
    } else {
      EXPECT_EQ(skewed.response.status, 500) << chaos::to_string(kind);
      Result<soap::Envelope> envelope = soap::parse(skewed.response.body);
      ASSERT_TRUE(envelope.ok());
      EXPECT_TRUE(envelope->is_fault()) << chaos::to_string(kind);
    }

    // The downgraded retransmit renegotiates around the intermediary: the
    // same schedule slot no longer injects, and the call succeeds.
    const chaos::WireAttempt downgraded =
        wire.attempt(service, http, schedule, 0, /*downgraded=*/true);
    EXPECT_FALSE(downgraded.injected.has_value()) << chaos::to_string(kind);
    EXPECT_EQ(downgraded.response.status, 200) << chaos::to_string(kind);
  }

  // A non-skew kind is NOT bypassed by the downgrade.
  chaos::FaultPlan plan;
  plan.rate_percent = 100;
  plan.kinds = {chaos::FaultKind::kConnectionReset};
  chaos::FaultyWire wire(*server, plan);
  const chaos::CallSchedule schedule = wire.schedule("pair|call#0");
  ASSERT_TRUE(schedule.faulted());
  const chaos::WireAttempt reset =
      wire.attempt(service, http, schedule, 0, /*downgraded=*/true);
  EXPECT_TRUE(reset.injected.has_value());
}

TEST(VersionSkewWire, SkewKindsParseAndPrint) {
  for (const char* name : {"soap12-rewrite", "mu-inject", "content-type-skew"}) {
    const std::optional<chaos::FaultKind> kind = chaos::parse_fault_kind(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_STREQ(chaos::to_string(*kind), name);
  }
  EXPECT_EQ(chaos::all_fault_kinds().size(), chaos::kFaultKindCount);
}

TEST(VersionSkewWire, DowngradeFlagIsCalibratedPerStack) {
  EXPECT_TRUE(chaos::policy_for("Oracle Metro 2.3").downgrade_on_version_mismatch);
  EXPECT_TRUE(chaos::policy_for("Apache CXF 2.7.6").downgrade_on_version_mismatch);
  EXPECT_FALSE(chaos::policy_for("JBossWS CXF 4.2.3").downgrade_on_version_mismatch);
  EXPECT_FALSE(chaos::policy_for("gSOAP Toolkit 2.8.16").downgrade_on_version_mismatch);
  EXPECT_NE(chaos::format_policy_table().find("downgrades"), std::string::npos);
}

// ------------------------------------------------------- the campaign axis

chaos::ChaosConfig axis_chaos_config() {
  chaos::ChaosConfig config;
  config.java_spec = wsx::testing::small_java_spec();
  config.dotnet_spec = wsx::testing::small_dotnet_spec();
  config.versions = {VersionPolicy::kStrict, VersionPolicy::kRelaxed,
                     VersionPolicy::kShadedCxf};
  config.jobs = 2;
  return config;
}

class VersionAxisChaos : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    chaos::ChaosConfig config = axis_chaos_config();
    config.plan.rate_percent = 40;
    result_ = new chaos::ChaosResult(chaos::run_chaos_study(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const chaos::ChaosResult& result() { return *result_; }
  static chaos::ChaosResult* result_;

  static std::size_t total(std::string_view client_prefix, chaos::ChaosOutcome outcome) {
    std::size_t count = 0;
    for (const chaos::ChaosServerResult& server : result().servers) {
      for (const chaos::ChaosCell& cell : server.cells) {
        if (cell.client.rfind(client_prefix, 0) != 0) continue;
        count += cell.count(outcome);
      }
    }
    return count;
  }
};

chaos::ChaosResult* VersionAxisChaos::result_ = nullptr;

TEST_F(VersionAxisChaos, OneRoundPerServerPolicyPair) {
  const std::size_t servers = frameworks::make_servers().size();
  ASSERT_EQ(result().servers.size(), servers * 3);
  std::size_t strict_rounds = 0;
  for (const chaos::ChaosServerResult& server : result().servers) {
    if (server.server.find(" [strict]") != std::string::npos) ++strict_rounds;
  }
  EXPECT_EQ(strict_rounds, servers);
}

TEST_F(VersionAxisChaos, DowngradeRecoversAnOutcomeClass) {
  // The acceptance bar: downgrade-capable clients convert what would be
  // version-mismatch failures into successes. Metro (relaxed, addressing
  // profile) must downgrade against strict rounds; JBossWS (shaded,
  // secured profile, no downgrade path) must surface clean mismatches and
  // never downgrade.
  EXPECT_GT(total("Oracle Metro", chaos::ChaosOutcome::kDowngraded), 0u);
  EXPECT_GT(total("Apache CXF", chaos::ChaosOutcome::kDowngraded), 0u);
  EXPECT_GT(total("JBossWS", chaos::ChaosOutcome::kVersionMismatch), 0u);
  EXPECT_EQ(total("JBossWS", chaos::ChaosOutcome::kDowngraded), 0u);
}

TEST_F(VersionAxisChaos, DowngradedCountsAsSuccess) {
  for (const chaos::ChaosServerResult& server : result().servers) {
    for (const chaos::ChaosCell& cell : server.cells) {
      EXPECT_GE(cell.succeeded(), cell.count(chaos::ChaosOutcome::kDowngraded))
          << server.server << " / " << cell.client;
    }
  }
}

TEST_F(VersionAxisChaos, RendersCarryTheNewColumns) {
  const std::string text = chaos::format_chaos(result());
  EXPECT_NE(text.find("downgraded"), std::string::npos);
  EXPECT_NE(text.find("vmismatch"), std::string::npos);
  const std::string csv = chaos::chaos_csv(result());
  EXPECT_EQ(csv.rfind("server,client,blocked,ok,recovered", 0), 0u);
  EXPECT_NE(csv.find(",version_mismatch,"), std::string::npos);
  EXPECT_NE(csv.find(",downgraded,"), std::string::npos);
  EXPECT_NE(csv.find(" [relaxed]"), std::string::npos);
}

TEST(VersionAxisDeterminism, ChaosWorkerCountDoesNotChangeTheResult) {
  chaos::ChaosConfig config = axis_chaos_config();
  config.plan.rate_percent = 35;
  config.jobs = 1;
  const std::string serial = chaos::chaos_csv(chaos::run_chaos_study(config));
  config.jobs = 8;
  const std::string parallel = chaos::chaos_csv(chaos::run_chaos_study(config));
  EXPECT_EQ(serial, parallel);
}

TEST(VersionAxisDeterminism, CleanWireStillShowsPolicyCollisions) {
  // Version mismatches and downgrades are policy effects, not wire faults:
  // they must appear even at fault rate 0.
  chaos::ChaosConfig config = axis_chaos_config();
  config.plan.rate_percent = 0;
  const chaos::ChaosResult result = chaos::run_chaos_study(config);
  std::size_t downgraded = 0;
  std::size_t mismatched = 0;
  for (const chaos::ChaosServerResult& server : result.servers) {
    for (const chaos::ChaosCell& cell : server.cells) {
      downgraded += cell.count(chaos::ChaosOutcome::kDowngraded);
      mismatched += cell.count(chaos::ChaosOutcome::kVersionMismatch);
    }
  }
  EXPECT_GT(downgraded, 0u);
  EXPECT_GT(mismatched, 0u);
}

interop::StudyConfig axis_comm_config() {
  interop::StudyConfig config;
  config.java_spec = wsx::testing::small_java_spec();
  config.dotnet_spec = wsx::testing::small_dotnet_spec();
  config.versions = {VersionPolicy::kStrict, VersionPolicy::kShadedCxf};
  return config;
}

TEST(VersionAxisCommunication, RoundsMismatchesAndDeterminism) {
  interop::StudyConfig config = axis_comm_config();
  config.threads = 1;
  const interop::CommunicationResult serial = interop::run_communication_study(config);
  ASSERT_EQ(serial.servers.size(), frameworks::make_servers().size() * 2);

  std::size_t strict_mismatches = 0;
  std::size_t shaded_mismatches = 0;
  for (const interop::CommServerResult& server : serial.servers) {
    for (const interop::CommCell& cell : server.cells) {
      const std::size_t mismatches = cell.count(interop::CommOutcome::kVersionMismatch);
      if (server.server.find(" [strict]") != std::string::npos) {
        strict_mismatches += mismatches;
      } else {
        shaded_mismatches += mismatches;
      }
    }
  }
  // Strict rounds reject the hybrid emitters that cannot downgrade at the
  // invocation layer; shaded rounds accept everything.
  EXPECT_GT(strict_mismatches, 0u);
  EXPECT_EQ(shaded_mismatches, 0u);

  config.threads = 4;
  const interop::CommunicationResult parallel = interop::run_communication_study(config);
  EXPECT_EQ(interop::communication_csv(serial), interop::communication_csv(parallel));
  EXPECT_NE(interop::format_communication(serial).find("vmismatch"), std::string::npos);
}

// ----------------------------------------------- supervised resume parity

struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(::testing::TempDir() + "wsx_versions_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

TEST(VersionAxisSupervised, ConfigFingerprintsCarryTheVersions) {
  chaos::ChaosConfig chaos_config = axis_chaos_config();
  const std::string chaos_json = chaos::chaos_config_json(chaos_config);
  Result<chaos::ChaosConfig> chaos_parsed = chaos::chaos_config_from_json(chaos_json);
  ASSERT_TRUE(chaos_parsed.ok()) << chaos_parsed.error().message;
  EXPECT_EQ(chaos::chaos_config_json(*chaos_parsed), chaos_json);
  ASSERT_EQ(chaos_parsed->versions.size(), 3u);
  EXPECT_EQ(chaos_parsed->versions[2], VersionPolicy::kShadedCxf);

  interop::StudyConfig comm_config = axis_comm_config();
  const std::string comm_json = interop::communication_config_json(comm_config);
  Result<interop::StudyConfig> comm_parsed =
      interop::communication_config_from_json(comm_json);
  ASSERT_TRUE(comm_parsed.ok()) << comm_parsed.error().message;
  EXPECT_EQ(interop::communication_config_json(*comm_parsed), comm_json);
  ASSERT_EQ(comm_parsed->versions.size(), 2u);
}

TEST(VersionAxisSupervised, ChaosMatchesLegacyAndResumesByteIdentically) {
  chaos::ChaosConfig config = axis_chaos_config();
  config.plan.rate_percent = 30;
  config.jobs = 2;
  const std::string legacy = chaos::chaos_csv(chaos::run_chaos_study(config));

  chaos::SupervisedChaosOptions base;
  base.journal.checkpoint_every = 3;
  Result<chaos::SupervisedChaosResult> straight = chaos::run_chaos_supervised(config, base);
  ASSERT_TRUE(straight.ok()) << straight.error().message;
  EXPECT_EQ(chaos::chaos_csv(straight.value().chaos), legacy);

  ScratchJournal scratch("chaos");
  chaos::SupervisedChaosOptions interrupted = base;
  interrupted.checkpoint_path = scratch.path;
  interrupted.trip_after_tasks = 4;
  ASSERT_TRUE(chaos::run_chaos_supervised(config, interrupted).ok());

  Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  Result<chaos::ChaosConfig> rederived = chaos::chaos_config_from_json(journal->config_json);
  ASSERT_TRUE(rederived.ok()) << rederived.error().message;
  ASSERT_EQ(rederived->versions.size(), 3u);

  chaos::SupervisedChaosOptions resumed = base;
  resumed.resume = &journal.value();
  Result<chaos::SupervisedChaosResult> finished =
      chaos::run_chaos_supervised(*rederived, resumed);
  ASSERT_TRUE(finished.ok()) << finished.error().message;
  EXPECT_EQ(chaos::chaos_csv(finished.value().chaos), legacy);
}

TEST(VersionAxisSupervised, CommunicationMatchesLegacy) {
  interop::StudyConfig config = axis_comm_config();
  config.threads = 2;
  const interop::CommunicationResult legacy = interop::run_communication_study(config);
  Result<interop::SupervisedCommunicationResult> supervised =
      interop::run_communication_supervised(config, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(interop::communication_csv(supervised.value().communication),
            interop::communication_csv(legacy));
}

}  // namespace
}  // namespace wsx
