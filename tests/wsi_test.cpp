// Unit tests for the WS-I Basic Profile checker (src/wsi/).
#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "wsi/profile.hpp"

namespace wsx::wsi {
namespace {

using testing::compliant_echo_definitions;

TEST(Wsi, CompliantDescriptionPasses) {
  const ComplianceReport report = check(compliant_echo_definitions());
  EXPECT_TRUE(report.compliant());
  EXPECT_TRUE(report.failures().empty());
  EXPECT_TRUE(report.warnings().empty());
  EXPECT_EQ(report.summary(), "PASS");
}

TEST(Wsi, R2001FailsWithoutTargetNamespace) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.target_namespace.clear();
  const ComplianceReport report = check(defs);
  EXPECT_TRUE(report.failed("R2001"));
}

TEST(Wsi, R2007FailsOnLocationlessImport) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.imports.push_back({"urn:other", ""});
  EXPECT_TRUE(check(defs).failed("R2007"));
  defs.imports.back().location = "http://host/other.wsdl";
  EXPECT_FALSE(check(defs).failed("R2007"));
}

TEST(Wsi, R2102FailsOnUnresolvedTypeReference) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ElementDecl bad;
  bad.name = "address";
  bad.type = xml::QName{std::string(xml::ns::kWsAddressing), "EndpointReferenceType"};
  defs.schemas.front().complex_types.front().particles.emplace_back(std::move(bad));
  const ComplianceReport report = check(defs);
  EXPECT_TRUE(report.failed("R2102"));
  EXPECT_FALSE(report.compliant());
}

TEST(Wsi, R2102FailsOnSchemaElementRef) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ElementDecl ref;
  ref.ref = xml::QName{std::string(xml::ns::kXsd), "schema", "s"};
  defs.schemas.front().complex_types.front().particles.emplace_back(std::move(ref));
  EXPECT_TRUE(check(defs).failed("R2102"));
}

TEST(Wsi, R2102DetailNamesTheReference) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::AttributeDecl lang;
  lang.ref = xml::QName{std::string(xml::ns::kXsd), "lang", "s"};
  defs.schemas.front().complex_types.front().attributes.push_back(std::move(lang));
  const ComplianceReport report = check(defs);
  ASSERT_TRUE(report.failed("R2102"));
  bool found = false;
  for (const AssertionResult* failure : report.failures()) {
    if (failure->detail.find("s:lang") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Wsi, R2800FailsOnDualTypeDeclaration) {
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ElementDecl& wrapper = defs.schemas.front().elements.front();
  wrapper.type = xsd::qname(xsd::Builtin::kString);  // type= AND inline type
  EXPECT_TRUE(check(defs).failed("R2800"));
}

TEST(Wsi, R2304FailsOnDuplicateOperations) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.bindings.front().operations.push_back(defs.bindings.front().operations.front());
  EXPECT_TRUE(check(defs).failed("R2304"));
}

TEST(Wsi, R2204FailsOnTypePartInDocumentBinding) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.messages.front().parts.front().element = {};
  defs.messages.front().parts.front().type = xml::QName{"urn:echo", "Payload"};
  EXPECT_TRUE(check(defs).failed("R2204"));
}

TEST(Wsi, R2204FailsOnMultipartDocumentMessage) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.messages.front().parts.push_back(
      {"extra", xml::QName{"urn:echo", "echo"}, {}});
  EXPECT_TRUE(check(defs).failed("R2204"));
}

TEST(Wsi, R2203FailsOnElementPartInRpcBinding) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().style = wsdl::SoapStyle::kRpc;
  EXPECT_TRUE(check(defs).failed("R2203"));
}

TEST(Wsi, R2706FailsOnEncodedUse) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().operations.front().input_use = wsdl::SoapUse::kEncoded;
  EXPECT_TRUE(check(defs).failed("R2706"));
}

TEST(Wsi, R2744FailsOnMissingSoapAction) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().operations.front().has_soap_action = false;
  EXPECT_TRUE(check(defs).failed("R2744"));
}

TEST(Wsi, EmptySoapActionValueIsCompliant) {
  // The attribute must be present; its value may be "".
  const ComplianceReport report = check(compliant_echo_definitions());
  EXPECT_FALSE(report.failed("R2744"));
}

TEST(Wsi, R2701FailsOnDanglingPortTypeReference) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().port_type = xml::QName{"urn:echo", "Ghost"};
  EXPECT_TRUE(check(defs).failed("R2701"));
}

TEST(Wsi, R2718FailsOnUnboundOperation) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().operations.clear();
  EXPECT_TRUE(check(defs).failed("R2718"));
}

TEST(Wsi, R2718FailsOnUnknownBoundOperation) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().operations.front().name = "ghost";
  EXPECT_TRUE(check(defs).failed("R2718"));
}

TEST(Wsi, R2097FailsOnUnknownMessage) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.front().input_message = "ghost";
  EXPECT_TRUE(check(defs).failed("R2097"));
}

TEST(Wsi, R2401FailsOnRelativeAddress) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.services.front().ports.front().location = "/echo";
  EXPECT_TRUE(check(defs).failed("R2401"));
}

TEST(Wsi, R2401FailsOnUnknownBindingReference) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.services.front().ports.front().binding = xml::QName{"urn:echo", "Ghost"};
  EXPECT_TRUE(check(defs).failed("R2401"));
}

TEST(Wsi, ZeroOperationsIsAWarningByDefault) {
  // JBossWS's unusable-but-compliant descriptions (§IV.B.1).
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.clear();
  defs.bindings.front().operations.clear();
  defs.messages.clear();
  const ComplianceReport report = check(defs);
  EXPECT_TRUE(report.compliant());
  ASSERT_EQ(report.warnings().size(), 1u);
  EXPECT_EQ(report.warnings().front()->id, "WSX-OP1");
}

TEST(Wsi, ZeroOperationsFailsUnderStrictProfile) {
  // The paper's minOccurs >= 1 advocacy (§IV.A).
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.port_types.front().operations.clear();
  defs.bindings.front().operations.clear();
  defs.messages.clear();
  Profile profile;
  profile.require_operations = true;
  EXPECT_FALSE(check(defs, profile).compliant());
}

TEST(Wsi, SummaryListsFailedAssertions) {
  wsdl::Definitions defs = compliant_echo_definitions();
  defs.bindings.front().operations.front().has_soap_action = false;
  defs.bindings.front().operations.front().input_use = wsdl::SoapUse::kEncoded;
  const std::string summary = check(defs).summary();
  EXPECT_NE(summary.find("R2744"), std::string::npos);
  EXPECT_NE(summary.find("R2706"), std::string::npos);
}

TEST(Wsi, WildcardOnlyContentIsCompliant) {
  // The DataTable family passes WS-I — that is the point of §IV.B.2.
  wsdl::Definitions defs = compliant_echo_definitions();
  xsd::ComplexType table;
  table.name = "DataTable";
  table.particles.emplace_back(xsd::AnyParticle{});
  table.particles.emplace_back(xsd::AnyParticle{});
  defs.schemas.front().complex_types.push_back(std::move(table));
  EXPECT_TRUE(check(defs).compliant());
}

TEST(Wsi, OutcomeNames) {
  EXPECT_STREQ(to_string(Outcome::kPass), "pass");
  EXPECT_STREQ(to_string(Outcome::kWarning), "warning");
  EXPECT_STREQ(to_string(Outcome::kFail), "fail");
  EXPECT_STREQ(to_string(Outcome::kNotApplicable), "n/a");
}

}  // namespace
}  // namespace wsx::wsi
