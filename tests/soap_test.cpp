// Unit tests for SOAP envelopes and messages (src/soap/).
#include <gtest/gtest.h>

#include "soap/http.hpp"
#include "soap/message.hpp"
#include "wsdl/model.hpp"

namespace wsx::soap {
namespace {

wsdl::Definitions echo_defs() {
  wsdl::Definitions defs;
  defs.target_namespace = "urn:echo";
  wsdl::PortType port_type;
  port_type.name = "P";
  port_type.operations.push_back({"echo", "echo", "echoResponse", {}});
  defs.port_types.push_back(std::move(port_type));
  return defs;
}

TEST(Envelope, WritesAndParsesPayload) {
  xml::Element payload{"m:ping"};
  payload.declare_namespace("m", "urn:x");
  payload.add_element("m:value").add_text("42");
  const Envelope envelope{payload};
  const std::string wire = write(envelope);
  Result<Envelope> parsed = parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->is_fault());
  EXPECT_EQ(parsed->body().local_name(), "ping");
}

TEST(Envelope, HeaderEntriesRoundTrip) {
  Envelope envelope{xml::Element{"m:op"}};
  xml::Element header{"m:transactionId"};
  header.add_text("tx-7");
  envelope.add_header(header);
  Result<Envelope> parsed = parse(write(envelope));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->header_entries().size(), 1u);
  EXPECT_EQ(parsed->header_entries().front().text(), "tx-7");
}

TEST(Envelope, FaultRoundTrips) {
  const Envelope envelope = Envelope::make_fault({"soap:Client", "bad request", "detail here"});
  EXPECT_TRUE(envelope.is_fault());
  Result<Envelope> parsed = parse(write(envelope));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_fault());
  EXPECT_EQ(parsed->fault().fault_code, "soap:Client");
  EXPECT_EQ(parsed->fault().fault_string, "bad request");
  EXPECT_EQ(parsed->fault().detail, "detail here");
}

TEST(Envelope, RejectsNonEnvelopeRoot) {
  Result<Envelope> parsed = parse("<html/>");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "soap.not-an-envelope");
}

TEST(Envelope, RejectsMissingBody) {
  Result<Envelope> parsed = parse(
      R"(<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
         </soapenv:Envelope>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "soap.missing-body");
}

TEST(Envelope, RejectsEmptyBody) {
  Result<Envelope> parsed = parse(
      R"(<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
           <soapenv:Body/>
         </soapenv:Envelope>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "soap.empty-body");
}

TEST(Message, BuildsRequestForKnownOperation) {
  Result<Envelope> request = build_request(echo_defs(), "echo", {{"arg0", "hi"}});
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->body().local_name(), "echo");
  const std::vector<Argument> arguments = request_arguments(*request);
  ASSERT_EQ(arguments.size(), 1u);
  EXPECT_EQ(arguments.front().name, "arg0");
  EXPECT_EQ(arguments.front().value, "hi");
}

TEST(Message, RejectsUnknownOperation) {
  Result<Envelope> request = build_request(echo_defs(), "nope", {});
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.error().code, "soap.unknown-operation");
}

TEST(Message, BuildsResponseWithReturnValue) {
  Result<Envelope> response = build_response(echo_defs(), "echo", "pong");
  ASSERT_TRUE(response.ok());
  Result<std::string> value = response_value(*response);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "pong");
}

TEST(Message, RejectsResponseForOneWayOperation) {
  wsdl::Definitions defs = echo_defs();
  defs.port_types.front().operations.front().output_message.clear();
  Result<Envelope> response = build_response(defs, "echo", "x");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code, "soap.one-way");
}

TEST(Message, RequestOperationExtractsName) {
  Result<Envelope> request = build_request(echo_defs(), "echo", {});
  ASSERT_TRUE(request.ok());
  Result<std::string> operation = request_operation(*request);
  ASSERT_TRUE(operation.ok());
  EXPECT_EQ(*operation, "echo");
}

TEST(Message, RequestOperationRejectsFault) {
  const Envelope fault = Envelope::make_fault({"soap:Server", "boom", ""});
  Result<std::string> operation = request_operation(fault);
  ASSERT_FALSE(operation.ok());
}

TEST(Message, ResponseValueSurfacesFaults) {
  const Envelope fault = Envelope::make_fault({"soap:Server", "exec failed", ""});
  Result<std::string> value = response_value(fault);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.error().code, "soap.fault");
  EXPECT_NE(value.error().message.find("exec failed"), std::string::npos);
}

TEST(Message, ResponseValueRejectsNonResponsePayloads) {
  Result<Envelope> request = build_request(echo_defs(), "echo", {});
  Result<std::string> value = response_value(*request);
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.error().code, "soap.not-a-response");
}

TEST(Message, WireRoundTripPreservesValues) {
  Result<Envelope> request =
      build_request(echo_defs(), "echo", {{"arg0", "<xml> & entities"}});
  ASSERT_TRUE(request.ok());
  Result<Envelope> reparsed = parse(write(*request));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(request_arguments(*reparsed).front().value, "<xml> & entities");
}

// Duplicate-header semantics are pinned (http.hpp): first-wins lookup,
// upsert-first set, append-only add, order-preserving storage. The chaos
// wire's header faults rely on exactly these rules.

TEST(HttpHeaders, LookupIsFirstWinsAcrossDuplicates) {
  HttpRequest request;
  request.add_header("X-Trace", "one");
  request.add_header("x-trace", "two");
  ASSERT_EQ(request.headers.size(), 2u);
  EXPECT_EQ(request.header("X-TRACE"), "one");
}

TEST(HttpHeaders, SetHeaderUpsertsTheFirstMatchAndKeepsLaterDuplicates) {
  HttpResponse response;
  response.add_header("Warning", "a");
  response.add_header("Warning", "b");
  response.set_header("warning", "c");
  ASSERT_EQ(response.headers.size(), 2u);
  EXPECT_EQ(response.headers[0].value, "c");  // first match updated in place
  EXPECT_EQ(response.headers[1].value, "b");  // later duplicate untouched
  EXPECT_EQ(response.header("Warning"), "c");
}

TEST(HttpHeaders, SetHeaderInsertsWhenAbsent) {
  HttpRequest request;
  request.set_header("SOAPAction", "\"urn:op\"");
  ASSERT_EQ(request.headers.size(), 1u);
  EXPECT_EQ(request.header("soapaction"), "\"urn:op\"");
}

TEST(HttpHeaders, RemoveHeaderDropsEveryMatchCaseInsensitively) {
  HttpRequest request;
  request.add_header("Cookie", "a");
  request.add_header("COOKIE", "b");
  request.add_header("Content-Type", "text/xml");
  EXPECT_EQ(request.remove_header("cookie"), 2u);
  EXPECT_EQ(request.remove_header("cookie"), 0u);
  ASSERT_EQ(request.headers.size(), 1u);
  EXPECT_EQ(request.headers[0].name, "Content-Type");
}

TEST(HttpHeaders, InsertionOrderIsPreserved) {
  HttpRequest request;
  request.add_header("A", "1");
  request.add_header("B", "2");
  request.add_header("A", "3");
  ASSERT_EQ(request.headers.size(), 3u);
  EXPECT_EQ(request.headers[0], (HttpHeader{"A", "1"}));
  EXPECT_EQ(request.headers[1], (HttpHeader{"B", "2"}));
  EXPECT_EQ(request.headers[2], (HttpHeader{"A", "3"}));
}

TEST(HttpHeaders, StatusClassHelpers) {
  HttpResponse response;
  response.status = 404;
  EXPECT_TRUE(response.is_client_error());
  EXPECT_FALSE(response.is_server_error());
  EXPECT_EQ(response.status_class(), 4);
  response.status = 503;
  EXPECT_FALSE(response.is_client_error());
  EXPECT_TRUE(response.is_server_error());
  EXPECT_EQ(response.status_class(), 5);
  response.status = 200;
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.status_class(), 2);
}

}  // namespace
}  // namespace wsx::soap
