// message_lint_test.cpp — the WSX11xx message-coherence pack: each rule's
// fire/don't-fire behaviour, SARIF serialization against the message
// registry, baseline round-trip suppression, and RuleConfig tuning.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/message_lint.hpp"
#include "analysis/registry.hpp"
#include "analysis/sarif.hpp"
#include "soap/envelope.hpp"
#include "soap/version.hpp"
#include "xml/node.hpp"

namespace wsx {
namespace {

using analysis::Finding;
using analysis::MessageInput;

std::string body_with(soap::HybridProfile profile,
                      soap::SoapVersion version = soap::SoapVersion::k11) {
  soap::Envelope envelope(xml::Element("pay:echo"), version);
  soap::apply_hybrid_profile(envelope, profile, "echo");
  return soap::write(envelope);
}

std::vector<Finding> lint(std::string body, std::string content_type = "",
                          const analysis::RuleConfig& config = {}) {
  MessageInput input;
  input.body = std::move(body);
  input.content_type = std::move(content_type);
  input.uri = "mem://message";
  return analysis::lint_message(input, config);
}

std::size_t count_rule(const std::vector<Finding>& findings, std::string_view id) {
  std::size_t count = 0;
  for (const Finding& finding : findings) {
    if (finding.rule_id == id) ++count;
  }
  return count;
}

TEST(MessageLint, RegistryListsTheVersionPackInOrder) {
  const auto& rules = analysis::message_lint_registry().rules();
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0]->info().id, "WSX1101");
  EXPECT_EQ(rules[1]->info().id, "WSX1102");
  EXPECT_EQ(rules[2]->info().id, "WSX1103");
  for (const auto& rule : rules) {
    EXPECT_EQ(rule->info().category, analysis::Category::kPortability);
    EXPECT_EQ(rule->info().paper_ref, "docs/VERSIONS.md");
  }
}

TEST(MessageLint, CoherentMessagesAreClean) {
  EXPECT_TRUE(lint(body_with(soap::HybridProfile::kPure11)).empty());
  EXPECT_TRUE(lint(body_with(soap::HybridProfile::kPure11),
                   "text/xml; charset=utf-8")
                  .empty());
  // A genuine 1.2 envelope under its own media type: the extension headers
  // belong to that version, nothing is incoherent.
  EXPECT_TRUE(lint(body_with(soap::HybridProfile::kPure11, soap::SoapVersion::k12),
                   "application/soap+xml; charset=utf-8")
                  .empty());
  // Unparseable input reports nothing (the parser layer owns that failure).
  EXPECT_TRUE(lint("<not-an-envelope").empty());
}

TEST(MessageLint, Wsx1101FiresPerTwelveEraHeader) {
  const std::vector<Finding> addressing = lint(body_with(soap::HybridProfile::kAddressing));
  EXPECT_GE(count_rule(addressing, "WSX1101"), 1u);
  EXPECT_EQ(count_rule(addressing, "WSX1103"), 0u);
  for (const Finding& finding : addressing) {
    EXPECT_EQ(finding.severity, Severity::kWarning);
    EXPECT_EQ(finding.location.uri, "mem://message");
    EXPECT_FALSE(finding.fixit.empty());
  }
  // The secured profile adds wsse:Security on top of the addressing set.
  EXPECT_GT(count_rule(lint(body_with(soap::HybridProfile::kSecured)), "WSX1101"),
            count_rule(addressing, "WSX1101"));
}

TEST(MessageLint, Wsx1102FiresOnTransportEnvelopeSkew) {
  const std::vector<Finding> skewed =
      lint(body_with(soap::HybridProfile::kPure11), "application/soap+xml");
  ASSERT_EQ(count_rule(skewed, "WSX1102"), 1u);
  EXPECT_EQ(skewed[0].severity, Severity::kError);
  EXPECT_NE(skewed[0].fixit.find("text/xml"), std::string::npos);

  const std::vector<Finding> reverse =
      lint(body_with(soap::HybridProfile::kPure11, soap::SoapVersion::k12), "text/xml");
  EXPECT_EQ(count_rule(reverse, "WSX1102"), 1u);

  // No Content-Type supplied → the rule has nothing to check.
  EXPECT_EQ(count_rule(lint(body_with(soap::HybridProfile::kPure11)), "WSX1102"), 0u);
}

TEST(MessageLint, Wsx1103FiresOnMustUnderstandExtensions) {
  // secured = wsse:Security with mustUnderstand="1" → the 1.2-era arm.
  const std::vector<Finding> secured = lint(body_with(soap::HybridProfile::kSecured));
  ASSERT_EQ(count_rule(secured, "WSX1103"), 1u);
  for (const Finding& finding : secured) {
    if (finding.rule_id != "WSX1103") continue;
    EXPECT_EQ(finding.severity, Severity::kError);
    EXPECT_NE(finding.message.find("shaded"), std::string::npos);
  }

  // An unknown-namespace mustUnderstand header → the faults-everywhere arm.
  soap::Envelope envelope(xml::Element("pay:echo"), soap::SoapVersion::k11);
  xml::Element session("ext:Session");
  session.set_attribute("xmlns:ext", "urn:example:session");
  envelope.add_must_understand_header(std::move(session));
  const std::vector<Finding> unknown = lint(soap::write(envelope));
  ASSERT_EQ(count_rule(unknown, "WSX1103"), 1u);
  for (const Finding& finding : unknown) {
    if (finding.rule_id != "WSX1103") continue;
    EXPECT_NE(finding.message.find("every "), std::string::npos);
  }

  // The relaxed shape (addressing, no mustUnderstand) stays quiet.
  EXPECT_EQ(count_rule(lint(body_with(soap::HybridProfile::kAddressing)), "WSX1103"), 0u);
}

TEST(MessageLint, RuleConfigDisablesAndRetunes) {
  analysis::RuleConfig config;
  config.disabled.insert("WSX1101");
  const std::vector<Finding> filtered = lint(body_with(soap::HybridProfile::kSecured), "", config);
  EXPECT_EQ(count_rule(filtered, "WSX1101"), 0u);
  EXPECT_EQ(count_rule(filtered, "WSX1103"), 1u);

  analysis::RuleConfig retuned;
  retuned.severity_overrides["WSX1101"] = Severity::kError;
  for (const Finding& finding : lint(body_with(soap::HybridProfile::kAddressing), "", retuned)) {
    if (finding.rule_id == "WSX1101") EXPECT_EQ(finding.severity, Severity::kError);
  }

  analysis::RuleConfig only;
  only.only.insert("WSX1102");
  const std::vector<Finding> narrowed =
      lint(body_with(soap::HybridProfile::kSecured), "application/soap+xml", only);
  EXPECT_EQ(narrowed.size(), count_rule(narrowed, "WSX1102"));
  EXPECT_EQ(count_rule(narrowed, "WSX1102"), 1u);
}

TEST(MessageLint, SarifCarriesTheMessagePack) {
  const std::vector<Finding> findings =
      lint(body_with(soap::HybridProfile::kSecured), "application/soap+xml");
  ASSERT_FALSE(findings.empty());
  const std::string sarif = analysis::to_sarif(findings, analysis::message_lint_registry());
  for (const char* id : {"WSX1101", "WSX1102", "WSX1103"}) {
    EXPECT_NE(sarif.find(std::string("\"id\":\"") + id + "\""), std::string::npos) << id;
  }
  EXPECT_NE(sarif.find("\"ruleId\":\"WSX1102\""), std::string::npos);
  EXPECT_NE(sarif.find("mem://message"), std::string::npos);
}

TEST(MessageLint, BaselineRoundTripSuppresses) {
  const std::vector<Finding> findings =
      lint(body_with(soap::HybridProfile::kSecured), "application/soap+xml");
  ASSERT_FALSE(findings.empty());

  const analysis::Baseline baseline = analysis::Baseline::from_findings(findings);
  EXPECT_EQ(baseline.size(), findings.size());
  Result<analysis::Baseline> reparsed = analysis::Baseline::parse(baseline.str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed->str(), baseline.str());

  // Every recorded finding is suppressed; a genuinely new one is not.
  EXPECT_TRUE(analysis::apply_baseline(findings, *reparsed).empty());
  soap::Envelope envelope(xml::Element("pay:echo"), soap::SoapVersion::k11);
  xml::Element session("ext:Session");
  session.set_attribute("xmlns:ext", "urn:example:session");
  envelope.add_must_understand_header(std::move(session));
  const std::vector<Finding> fresh = lint(soap::write(envelope), "application/soap+xml");
  const std::vector<Finding> surviving = analysis::apply_baseline(fresh, *reparsed);
  // The unknown-namespace WSX1103 finding is new and survives; the
  // identical WSX1102 skew is already baselined even in the new run.
  EXPECT_EQ(count_rule(surviving, "WSX1103"), 1u);
  EXPECT_EQ(count_rule(surviving, "WSX1102"), 0u);
}

}  // namespace
}  // namespace wsx
