// Tests for the supervised campaign drivers (interop/supervised.*,
// chaos/supervised.*, analysis/supervised_corpus.*): config fingerprints
// round-trip through their JSON inverses, a fully-covered supervised run
// reproduces the legacy driver's report byte-for-byte, and an interrupted
// run resumed from its journal matches an uninterrupted one at any worker
// count — the ISSUE's central equivalence guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/corpus.hpp"
#include "analysis/supervised_corpus.hpp"
#include "chaos/campaign.hpp"
#include "chaos/supervised.hpp"
#include "frameworks/registry.hpp"
#include "interop/communication.hpp"
#include "interop/report.hpp"
#include "interop/report_formats.hpp"
#include "interop/study.hpp"
#include "interop/supervised.hpp"
#include "resilience/journal.hpp"

namespace wsx {
namespace {

/// A deliberately tiny population: every campaign below runs several times,
/// so the corpus is kept to a few services per bucket.
void tiny_specs(catalog::JavaCatalogSpec& java, catalog::DotNetCatalogSpec& dotnet) {
  java.plain_beans = 4;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  java.no_default_ctor = 1;
  java.abstract_classes = 1;
  java.interfaces = 1;
  java.generic_types = 1;
  dotnet.plain_types = 4;
  dotnet.dataset_plain = 1;
  dotnet.deep_nesting_clean = 1;
  dotnet.deep_nesting_pathological = 1;
  dotnet.non_serializable = 1;
  dotnet.no_default_ctor = 1;
  dotnet.generic_types = 1;
  dotnet.abstract_classes = 1;
  dotnet.interfaces = 1;
}

interop::StudyConfig tiny_study() {
  interop::StudyConfig config;
  tiny_specs(config.java_spec, config.dotnet_spec);
  return config;
}

chaos::ChaosConfig tiny_chaos() {
  chaos::ChaosConfig config;
  tiny_specs(config.java_spec, config.dotnet_spec);
  config.calls_per_pair = 3;
  return config;
}

analysis::CorpusOptions tiny_corpus() {
  analysis::CorpusOptions options;
  tiny_specs(options.java_spec, options.dotnet_spec);
  return options;
}

std::string study_report(const interop::StudyResult& result) {
  return interop::fig4_csv(result) + "\n" + interop::table3_csv(result);
}

struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(testing::TempDir() + "wsx_supervised_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

// ------------------------------------------------------ config fingerprints

TEST(ConfigFingerprint, StudyRoundTrips) {
  interop::StudyConfig config = tiny_study();
  config.samples_per_cell = 5;
  config.shape = frameworks::ServiceShape::kCrud;
  config.wsi_deploy_gate = true;
  config.parse_cache = false;
  const std::string json = interop::study_config_json(config);
  Result<interop::StudyConfig> parsed = interop::study_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(interop::study_config_json(*parsed), json);
  EXPECT_EQ(parsed->samples_per_cell, 5u);
  EXPECT_EQ(parsed->shape, frameworks::ServiceShape::kCrud);
  EXPECT_TRUE(parsed->wsi_deploy_gate);
  EXPECT_FALSE(parsed->parse_cache);
}

TEST(ConfigFingerprint, CommunicationRoundTrips) {
  interop::StudyConfig config = tiny_study();
  config.parse_cache = false;
  const std::string json = interop::communication_config_json(config);
  Result<interop::StudyConfig> parsed = interop::communication_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(interop::communication_config_json(*parsed), json);
}

TEST(ConfigFingerprint, ChaosRoundTrips) {
  chaos::ChaosConfig config = tiny_chaos();
  config.plan.seed = 99;
  config.plan.rate_percent = 45;
  config.plan.max_burst = 2;
  config.plan.kinds = {chaos::FaultKind::kConnectionReset, chaos::FaultKind::kHttp503};
  config.breaker.failure_threshold = 5;
  config.breaker.open_ms = 250;
  const std::string json = chaos::chaos_config_json(config);
  Result<chaos::ChaosConfig> parsed = chaos::chaos_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(chaos::chaos_config_json(*parsed), json);
  EXPECT_EQ(parsed->plan.seed, 99u);
  ASSERT_EQ(parsed->plan.kinds.size(), 2u);
  EXPECT_EQ(parsed->plan.kinds[1], chaos::FaultKind::kHttp503);
}

TEST(ConfigFingerprint, CorpusRoundTrips) {
  analysis::CorpusOptions options = tiny_corpus();
  options.join_study = true;
  options.rules.disabled.insert("R2102");
  options.rules.only.insert("WSX1001");
  options.rules.severity_overrides["WSX1001"] = Severity::kError;
  const std::string json = analysis::corpus_config_json(options);
  Result<analysis::CorpusOptions> parsed = analysis::corpus_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(analysis::corpus_config_json(*parsed), json);
  EXPECT_TRUE(parsed->join_study);
  EXPECT_EQ(parsed->rules.disabled.count("R2102"), 1u);
  EXPECT_EQ(parsed->rules.severity_overrides.at("WSX1001"), Severity::kError);
}

TEST(ConfigFingerprint, MalformedTextIsRejected) {
  EXPECT_FALSE(interop::study_config_from_json("{}").ok());
  EXPECT_FALSE(interop::communication_config_from_json("nope").ok());
  EXPECT_FALSE(chaos::chaos_config_from_json("{\"java\":{}}").ok());
  EXPECT_FALSE(analysis::corpus_config_from_json("[]").ok());
}

// ------------------------------------------------- legacy-path equivalence

TEST(SupervisedStudy, FullCoverageMatchesLegacyReport) {
  const interop::StudyConfig config = tiny_study();
  const interop::StudyResult legacy = interop::run_study(config);
  Result<interop::SupervisedStudyResult> supervised =
      interop::run_study_supervised(config, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(study_report(supervised->study), study_report(legacy));
  EXPECT_EQ(supervised->supervisor.completed, supervised->supervisor.tasks.size());
  EXPECT_FALSE(supervised->supervisor.degraded);
}

TEST(SupervisedCommunication, FullCoverageMatchesLegacyReport) {
  const interop::StudyConfig config = tiny_study();
  const interop::CommunicationResult legacy = interop::run_communication_study(config);
  Result<interop::SupervisedCommunicationResult> supervised =
      interop::run_communication_supervised(config, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(interop::format_communication(supervised->communication),
            interop::format_communication(legacy));
}

TEST(SupervisedChaos, FullCoverageMatchesLegacyReport) {
  const chaos::ChaosConfig config = tiny_chaos();
  const chaos::ChaosResult legacy = chaos::run_chaos_study(config);
  Result<chaos::SupervisedChaosResult> supervised = chaos::run_chaos_supervised(config, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(chaos::chaos_csv(supervised->chaos), chaos::chaos_csv(legacy));
  EXPECT_EQ(chaos::chaos_recovery_json(supervised->chaos), chaos::chaos_recovery_json(legacy));
}

TEST(SupervisedCorpus, FullCoverageMatchesLegacyReport) {
  const analysis::CorpusOptions options = tiny_corpus();
  const analysis::CorpusReport legacy = analysis::analyze_corpus(options);
  Result<analysis::SupervisedCorpusResult> supervised =
      analysis::analyze_corpus_supervised(options, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(analysis::format_report(supervised->report), analysis::format_report(legacy));
  ASSERT_EQ(supervised->report.services.size(), legacy.services.size());
  for (std::size_t i = 0; i < legacy.services.size(); ++i) {
    EXPECT_EQ(supervised->report.services[i].server, legacy.services[i].server);
    EXPECT_EQ(supervised->report.services[i].findings.size(),
              legacy.services[i].findings.size());
  }
}

// --------------------------------------------- interrupt/resume equivalence

TEST(SupervisedStudy, InterruptedRunResumesByteIdentically) {
  const interop::StudyConfig config = tiny_study();
  interop::SupervisedOptions base;
  base.journal.checkpoint_every = 4;

  interop::SupervisedOptions straight = base;
  straight.jobs = 1;
  Result<interop::SupervisedStudyResult> uninterrupted =
      interop::run_study_supervised(config, straight);
  ASSERT_TRUE(uninterrupted.ok());
  const std::string want = study_report(uninterrupted->study);

  // Interrupt after a few checkpointed tasks, then resume — once at one
  // worker and once at eight. Every path must land on the same bytes.
  for (const std::size_t resume_jobs : {std::size_t{1}, std::size_t{8}}) {
    ScratchJournal scratch("study_j" + std::to_string(resume_jobs));
    interop::SupervisedOptions interrupted = base;
    interrupted.jobs = 8;
    interrupted.checkpoint_path = scratch.path;
    interrupted.trip_after_tasks = 5;
    Result<interop::SupervisedStudyResult> tripped =
        interop::run_study_supervised(config, interrupted);
    ASSERT_TRUE(tripped.ok());
    ASSERT_TRUE(tripped->supervisor.tripped);
    EXPECT_NE(study_report(tripped->study), want);  // partial fold ≠ full report

    Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
    ASSERT_TRUE(journal.ok()) << journal.error().message;
    // The CLI re-derives the config from the journal header; do the same.
    Result<interop::StudyConfig> rederived =
        interop::study_config_from_json(journal->config_json);
    ASSERT_TRUE(rederived.ok()) << rederived.error().message;

    interop::SupervisedOptions resumed = base;
    resumed.jobs = resume_jobs;
    resumed.checkpoint_path = scratch.path;
    resumed.resume = &journal.value();
    Result<interop::SupervisedStudyResult> finished =
        interop::run_study_supervised(*rederived, resumed);
    ASSERT_TRUE(finished.ok()) << finished.error().message;
    EXPECT_FALSE(finished->supervisor.tripped);
    EXPECT_GT(finished->supervisor.resumed, 0u);
    EXPECT_EQ(study_report(finished->study), want);
  }
}

TEST(SupervisedChaos, InterruptedRunResumesByteIdentically) {
  const chaos::ChaosConfig config = tiny_chaos();
  ScratchJournal scratch("chaos");
  chaos::SupervisedChaosOptions base;
  base.journal.checkpoint_every = 3;

  Result<chaos::SupervisedChaosResult> uninterrupted =
      chaos::run_chaos_supervised(config, base);
  ASSERT_TRUE(uninterrupted.ok());

  chaos::SupervisedChaosOptions interrupted = base;
  interrupted.checkpoint_path = scratch.path;
  interrupted.trip_after_tasks = 4;
  ASSERT_TRUE(chaos::run_chaos_supervised(config, interrupted).ok());

  Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  Result<chaos::ChaosConfig> rederived = chaos::chaos_config_from_json(journal->config_json);
  ASSERT_TRUE(rederived.ok()) << rederived.error().message;
  rederived->jobs = 8;
  chaos::SupervisedChaosOptions resumed = base;
  resumed.checkpoint_path = scratch.path;
  resumed.resume = &journal.value();
  Result<chaos::SupervisedChaosResult> finished =
      chaos::run_chaos_supervised(*rederived, resumed);
  ASSERT_TRUE(finished.ok()) << finished.error().message;
  EXPECT_EQ(chaos::chaos_csv(finished->chaos), chaos::chaos_csv(uninterrupted->chaos));
}

// ------------------------------------------------- degradation & timeouts

TEST(SupervisedStudy, BudgetDegradesWithPartialCoverage) {
  const interop::StudyConfig config = tiny_study();
  interop::SupervisedOptions options;
  options.journal.checkpoint_every = 2;
  options.journal.budget_tasks = 3;
  Result<interop::SupervisedStudyResult> supervised =
      interop::run_study_supervised(config, options);
  ASSERT_TRUE(supervised.ok());
  EXPECT_TRUE(supervised->supervisor.degraded);
  EXPECT_GT(supervised->supervisor.not_admitted, 0u);
  EXPECT_EQ(supervised->supervisor.completed, 4u);  // two admitted blocks
  // The partial fold still counts exactly the admitted tasks' tests: one
  // per client for each completed (server, service) task.
  EXPECT_EQ(supervised->study.total_tests(),
            supervised->supervisor.completed * frameworks::make_clients().size());
}

TEST(SupervisedChaos, DeadlineQuarantineFoldsAsTimedOutOutcome) {
  chaos::ChaosConfig config = tiny_chaos();
  chaos::SupervisedChaosOptions options;
  // Every live chain charges its real virtual milliseconds; 1 ms is
  // impossible, so those tasks deadline-quarantine and their cells fold as
  // kTimedOut. (Services whose chains are all blocked earlier charge zero
  // virtual time and still complete.)
  options.journal.task_deadline_ms = 1;
  options.journal.quarantine_after = 2;
  Result<chaos::SupervisedChaosResult> supervised =
      chaos::run_chaos_supervised(config, options);
  ASSERT_TRUE(supervised.ok());
  EXPECT_GT(supervised->supervisor.quarantined, 0u);
  EXPECT_EQ(supervised->supervisor.quarantined + supervised->supervisor.completed,
            supervised->supervisor.tasks.size());
  std::size_t timed_out_calls = 0;
  for (const chaos::ChaosServerResult& server : supervised->chaos.servers) {
    for (const chaos::ChaosCell& cell : server.cells) {
      timed_out_calls += cell.count(chaos::ChaosOutcome::kTimedOut);
    }
  }
  EXPECT_GT(timed_out_calls, 0u);
  // The new outcome reaches every chaos report surface.
  EXPECT_NE(chaos::chaos_csv(supervised->chaos).find(",timed_out,"), std::string::npos);
  EXPECT_NE(chaos::format_chaos(supervised->chaos).find("timed-out"), std::string::npos);
}

}  // namespace
}  // namespace wsx
