// Concurrency-facing tests for the predict corpus pass: byte-identical
// reports across worker counts, supervised-path equivalence, and
// interrupt/resume through the "predict-corpus" journal. These run in the
// wsx_concurrency_tests binary so the TSan CI job exercises the parallel
// slice merge and the supervisor's worker pool.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/predict.hpp"
#include "analysis/supervised_predict.hpp"
#include "resilience/journal.hpp"

namespace wsx::analysis::predict {
namespace {

PredictOptions tiny_options(bool join) {
  PredictOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 3;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  java.no_default_ctor = 1;
  java.abstract_classes = 1;
  java.interfaces = 1;
  java.generic_types = 1;
  options.java_spec = java;
  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 3;
  dotnet.dataset_plain = 1;
  dotnet.dataset_duplicated = 1;
  dotnet.deep_nesting_clean = 1;
  dotnet.deep_nesting_pathological = 1;
  dotnet.non_serializable = 1;
  options.dotnet_spec = dotnet;
  options.join_study = join;
  options.study_threads = 2;
  return options;
}

/// The full report content, byte-comparable: every per-service record plus
/// the rendered report (which covers the scores when joined).
std::string report_bytes(const PredictReport& report) {
  std::string out;
  for (const ServicePredictionRecord& record : report.services) {
    out += record_json(record);
    out += '\n';
  }
  out += format_predict_report(report);
  return out;
}

struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(testing::TempDir() + "wsx_predict_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

TEST(PredictCorpusConcurrency, ByteIdenticalAcrossWorkerCounts) {
  PredictOptions serial = tiny_options(/*join=*/true);
  serial.jobs = 1;
  serial.study_threads = 1;
  PredictOptions parallel = tiny_options(/*join=*/true);
  parallel.jobs = 8;
  parallel.study_threads = 8;

  const PredictReport a = predict_corpus(serial);
  const PredictReport b = predict_corpus(parallel);
  ASSERT_EQ(a.services.size(), b.services.size());
  EXPECT_EQ(report_bytes(a), report_bytes(b));
  EXPECT_EQ(a.overall.exact_matches, b.overall.exact_matches);
}

TEST(PredictCorpusConcurrency, ConfigFingerprintRoundTrips) {
  PredictOptions options = tiny_options(/*join=*/true);
  options.shape = frameworks::ServiceShape::kCrud;
  const std::string json = predict_config_json(options);
  Result<PredictOptions> parsed = predict_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(predict_config_json(*parsed), json);
  EXPECT_EQ(parsed->shape, frameworks::ServiceShape::kCrud);
  EXPECT_TRUE(parsed->join_study);
  EXPECT_FALSE(predict_config_from_json("{}").ok());
  EXPECT_FALSE(predict_config_from_json("nope").ok());
}

TEST(PredictCorpusConcurrency, SupervisedFullCoverageMatchesStraightRun) {
  const PredictOptions options = tiny_options(/*join=*/true);
  const PredictReport straight = predict_corpus(options);
  Result<SupervisedPredictResult> supervised = predict_corpus_supervised(options, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(report_bytes(supervised->report), report_bytes(straight));
  EXPECT_EQ(supervised->supervisor.completed, supervised->supervisor.tasks.size());
  EXPECT_FALSE(supervised->supervisor.degraded);
}

TEST(PredictCorpusConcurrency, InterruptedRunResumesByteIdentically) {
  PredictOptions options = tiny_options(/*join=*/false);
  options.jobs = 2;
  const std::string want = report_bytes(predict_corpus(options));

  for (const std::size_t resume_jobs : {std::size_t{1}, std::size_t{8}}) {
    ScratchJournal scratch("j" + std::to_string(resume_jobs));
    SupervisedPredictOptions interrupted;
    interrupted.journal.checkpoint_every = 3;
    interrupted.checkpoint_path = scratch.path;
    interrupted.trip_after_tasks = 5;
    Result<SupervisedPredictResult> tripped = predict_corpus_supervised(options, interrupted);
    ASSERT_TRUE(tripped.ok()) << tripped.error().message;
    ASSERT_TRUE(tripped->supervisor.tripped);
    EXPECT_NE(report_bytes(tripped->report), want);  // partial fold ≠ full report

    Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
    ASSERT_TRUE(journal.ok()) << journal.error().message;
    EXPECT_EQ(journal->campaign, "predict-corpus");
    Result<PredictOptions> rederived = predict_config_from_json(journal->config_json);
    ASSERT_TRUE(rederived.ok()) << rederived.error().message;
    rederived->jobs = resume_jobs;

    SupervisedPredictOptions resumed;
    resumed.journal.checkpoint_every = 3;
    resumed.checkpoint_path = scratch.path;
    resumed.resume = &journal.value();
    Result<SupervisedPredictResult> finished = predict_corpus_supervised(*rederived, resumed);
    ASSERT_TRUE(finished.ok()) << finished.error().message;
    EXPECT_FALSE(finished->supervisor.tripped);
    EXPECT_GT(finished->supervisor.resumed, 0u);
    EXPECT_EQ(report_bytes(finished->report), want) << "resume_jobs=" << resume_jobs;
  }
}

}  // namespace
}  // namespace wsx::analysis::predict
