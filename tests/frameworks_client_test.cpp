// Unit tests for the client framework models (src/frameworks/*_client.*):
// each tool's tolerance profile, exercised through real served WSDL text.
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"

namespace wsx::frameworks {
namespace {

using catalog::Trait;

// Indices into make_clients(), Table II order.
enum : std::size_t {
  kMetro = 0,
  kAxis1,
  kAxis2,
  kCxf,
  kJBoss,
  kCSharp,
  kVb,
  kJScript,
  kGsoap,
  kZend,
  kSuds,
};

class ClientFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    java_ = new catalog::TypeCatalog(catalog::make_java_catalog());
    dotnet_ = new catalog::TypeCatalog(catalog::make_dotnet_catalog());
    servers_ = new std::vector<std::unique_ptr<ServerFramework>>(make_servers());
    clients_ = new std::vector<std::unique_ptr<ClientFramework>>(make_clients());
  }
  static void TearDownTestSuite() {
    delete java_;
    delete dotnet_;
    delete servers_;
    delete clients_;
    java_ = nullptr;
    dotnet_ = nullptr;
    servers_ = nullptr;
    clients_ = nullptr;
  }

  static const ServerFramework& metro_server() { return *(*servers_)[0]; }
  static const ServerFramework& jbossws_server() { return *(*servers_)[1]; }
  static const ServerFramework& wcf_server() { return *(*servers_)[2]; }
  static const ClientFramework& client(std::size_t index) { return *(*clients_)[index]; }

  static std::string served(const ServerFramework& server, std::string_view type_name) {
    const catalog::TypeCatalog& types =
        server.language() == "C#" ? *dotnet_ : *java_;
    const catalog::TypeInfo* type = types.find(type_name);
    EXPECT_NE(type, nullptr) << type_name;
    Result<DeployedService> service = server.deploy(ServiceSpec{type});
    EXPECT_TRUE(service.ok()) << type_name;
    return service->wsdl_text;
  }

  static std::string served_with_trait(const ServerFramework& server, Trait trait,
                                       std::uint64_t exclude_mask = 0) {
    const catalog::TypeCatalog& types =
        server.language() == "C#" ? *dotnet_ : *java_;
    for (const catalog::TypeInfo& type : types.types()) {
      if (!type.has(trait) || (type.traits & exclude_mask) != 0) continue;
      Result<DeployedService> service = server.deploy(ServiceSpec{&type});
      EXPECT_TRUE(service.ok());
      return service->wsdl_text;
    }
    ADD_FAILURE() << "no type with requested trait";
    return {};
  }

  static catalog::TypeCatalog* java_;
  static catalog::TypeCatalog* dotnet_;
  static std::vector<std::unique_ptr<ServerFramework>>* servers_;
  static std::vector<std::unique_ptr<ClientFramework>>* clients_;
};

catalog::TypeCatalog* ClientFixture::java_ = nullptr;
catalog::TypeCatalog* ClientFixture::dotnet_ = nullptr;
std::vector<std::unique_ptr<ServerFramework>>* ClientFixture::servers_ = nullptr;
std::vector<std::unique_ptr<ClientFramework>>* ClientFixture::clients_ = nullptr;

TEST_F(ClientFixture, AllClientsRejectMalformedWsdl) {
  for (std::size_t i = 0; i < 11; ++i) {
    GenerationResult result = client(i).generate("<not-wsdl");
    EXPECT_TRUE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_FALSE(result.produced_artifacts()) << client(i).name();
  }
}

TEST_F(ClientFixture, PlainServiceGeneratesEverywhere) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kXmlGregorianCalendar);
  for (std::size_t i = 0; i < 11; ++i) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_TRUE(result.produced_artifacts()) << client(i).name();
  }
}

// --- Metro server, W3CEndpointReference (issue 'a'): everyone except
// gSOAP and Zend errors. ---
TEST_F(ClientFixture, MetroW3CEprErrorProfile) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kW3CEndpointReference);
  for (std::size_t i : {kMetro, kAxis1, kAxis2, kCxf, kJBoss, kCSharp, kVb, kJScript, kSuds}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kGsoap, kZend}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

// --- Metro server, SimpleDateFormat (issue 'b'): only the .NET languages
// and gSOAP error (dangling attributeGroup). ---
TEST_F(ClientFixture, MetroSimpleDateFormatErrorProfile) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kSimpleDateFormat);
  for (std::size_t i : {kCSharp, kVb, kJScript, kGsoap}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kMetro, kAxis1, kAxis2, kCxf, kJBoss, kZend, kSuds}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

// --- JBossWS server, W3CEndpointReference (issue 'd'): the attribute-ref
// variant — Axis2 now tolerates it, unlike on Metro. ---
TEST_F(ClientFixture, JBossW3CEprErrorProfile) {
  const std::string wsdl =
      served(jbossws_server(), catalog::java_names::kW3CEndpointReference);
  for (std::size_t i : {kMetro, kAxis1, kCxf, kJBoss, kCSharp, kVb, kJScript, kSuds}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kAxis2, kGsoap, kZend}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

// --- JBossWS server, SimpleDateFormat (issue 'e'): dual type declaration.
// Metro warns; the .NET languages error; everyone else is silent. ---
TEST_F(ClientFixture, JBossSimpleDateFormatProfile) {
  const std::string wsdl = served(jbossws_server(), catalog::java_names::kSimpleDateFormat);
  GenerationResult metro_result = client(kMetro).generate(wsdl);
  EXPECT_FALSE(metro_result.diagnostics.has_errors());
  EXPECT_TRUE(metro_result.diagnostics.has_warnings());
  for (std::size_t i : {kCSharp, kVb, kJScript}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kAxis1, kAxis2, kCxf, kJBoss, kGsoap, kZend, kSuds}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

// --- JBossWS server, operation-less Future WSDL (issue 'c'). ---
TEST_F(ClientFixture, ZeroOperationProfile) {
  const std::string wsdl = served(jbossws_server(), catalog::java_names::kFuture);
  // Errors: Metro, Axis2, all three .NET languages.
  for (std::size_t i : {kMetro, kAxis2, kCSharp, kVb, kJScript}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  // Silent acceptance — the §IV.B.1 "not the right behavior" trio.
  for (std::size_t i : {kAxis1, kCxf, kJBoss}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_FALSE(result.diagnostics.has_warnings()) << client(i).name();
    EXPECT_TRUE(result.produced_artifacts()) << client(i).name();
  }
  // Warnings: gSOAP, Zend, suds (clients without methods).
  for (std::size_t i : {kGsoap, kZend, kSuds}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_TRUE(result.diagnostics.has_warnings()) << client(i).name();
  }
}

// --- WCF server, DataSet idiom (issue 'f'). ---
TEST_F(ClientFixture, DataSetIdiomProfile) {
  const std::uint64_t sub_shapes = static_cast<std::uint64_t>(Trait::kDataSetDuplicated) |
                                   static_cast<std::uint64_t>(Trait::kDataSetNested) |
                                   static_cast<std::uint64_t>(Trait::kDataSetArray);
  const std::string wsdl =
      served_with_trait(wcf_server(), Trait::kDataSetSchema, sub_shapes);
  for (std::size_t i : {kMetro, kCxf, kJBoss}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kAxis1, kAxis2, kCSharp, kVb, kJScript, kGsoap, kZend, kSuds}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

TEST_F(ClientFixture, DataSetDuplicatedBreaksGsoapStage2) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kDataSetDuplicated);
  GenerationResult result = client(kGsoap).generate(wsdl);
  ASSERT_TRUE(result.diagnostics.has_errors());
  EXPECT_EQ(result.diagnostics.diagnostics().front().code, "soapcpp2.duplicate-typedef");
  // Axis2 deduplicates the opaque member and survives.
  GenerationResult axis2_result = client(kAxis2).generate(wsdl);
  ASSERT_TRUE(axis2_result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJava)->compile(*axis2_result.artifacts);
  EXPECT_FALSE(sink.has_errors());
}

TEST_F(ClientFixture, DataSetNestedBreaksAxis1) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kDataSetNested);
  EXPECT_TRUE(client(kAxis1).generate(wsdl).diagnostics.has_errors());
  // The plain idiom does not.
  const std::uint64_t sub_shapes = static_cast<std::uint64_t>(Trait::kDataSetDuplicated) |
                                   static_cast<std::uint64_t>(Trait::kDataSetNested) |
                                   static_cast<std::uint64_t>(Trait::kDataSetArray);
  const std::string plain = served_with_trait(wcf_server(), Trait::kDataSetSchema, sub_shapes);
  EXPECT_FALSE(client(kAxis1).generate(plain).diagnostics.has_errors());
}

TEST_F(ClientFixture, DataSetArrayBreaksSuds) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kDataSetArray);
  EXPECT_TRUE(client(kSuds).generate(wsdl).diagnostics.has_errors());
}

TEST_F(ClientFixture, EncodedBindingWarnsDotNetAndSuds) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kSoapEncodedBinding);
  for (std::size_t i : {kCSharp, kVb, kJScript, kSuds}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_TRUE(result.diagnostics.has_warnings()) << client(i).name();
  }
  for (std::size_t i : {kMetro, kAxis1, kAxis2, kCxf, kJBoss, kGsoap, kZend}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_FALSE(result.diagnostics.has_warnings()) << client(i).name();
  }
}

TEST_F(ClientFixture, MissingSoapActionIsToleratedByAll) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kMissingSoapAction);
  for (std::size_t i = 0; i < 11; ++i) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_FALSE(result.diagnostics.has_warnings()) << client(i).name();
  }
}

// --- WCF server, wildcard-only content (issue 'g'). ---
TEST_F(ClientFixture, WildcardContentBreaksJavaStacks) {
  const std::string wsdl = served(wcf_server(), catalog::dotnet_names::kDataTable);
  for (std::size_t i : {kMetro, kCxf, kJBoss}) {
    EXPECT_TRUE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
  for (std::size_t i : {kAxis1, kAxis2, kCSharp, kVb, kJScript, kGsoap, kZend, kSuds}) {
    EXPECT_FALSE(client(i).generate(wsdl).diagnostics.has_errors()) << client(i).name();
  }
}

TEST_F(ClientFixture, DoubleWildcardBreaksAxis2Compile) {
  const std::string wsdl = served(wcf_server(), catalog::dotnet_names::kDataTable);
  GenerationResult result = client(kAxis2).generate(wsdl);
  ASSERT_TRUE(result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJava)->compile(*result.artifacts);
  ASSERT_TRUE(sink.has_errors());
  // Single wildcard (DataView) compiles.
  const std::string single = served(wcf_server(), catalog::dotnet_names::kDataView);
  GenerationResult view_result = client(kAxis2).generate(single);
  ASSERT_TRUE(view_result.produced_artifacts());
  EXPECT_FALSE(compilers::make_compiler(code::Language::kJava)
                   ->compile(*view_result.artifacts)
                   .has_errors());
}

TEST_F(ClientFixture, EnumWrapperBreaksAxis2CompileOnly) {
  const std::string wsdl = served(wcf_server(), catalog::dotnet_names::kSocketError);
  GenerationResult axis2_result = client(kAxis2).generate(wsdl);
  ASSERT_TRUE(axis2_result.produced_artifacts());
  EXPECT_TRUE(compilers::make_compiler(code::Language::kJava)
                  ->compile(*axis2_result.artifacts)
                  .has_errors());
  GenerationResult axis1_result = client(kAxis1).generate(wsdl);
  ASSERT_TRUE(axis1_result.produced_artifacts());
  const DiagnosticSink axis1_sink =
      compilers::make_compiler(code::Language::kJava)->compile(*axis1_result.artifacts);
  EXPECT_FALSE(axis1_sink.has_errors());
}

// --- Compilation-stage defects on Java servers. ---
TEST_F(ClientFixture, Axis1ThrowableWrapperFailsCompile) {
  std::string wsdl;
  for (const catalog::TypeInfo& type : java_->types()) {
    if (type.has(Trait::kThrowableDerived) && !type.has(Trait::kRawGenericApi)) {
      wsdl = served(metro_server(), type.qualified_name());
      break;
    }
  }
  GenerationResult result = client(kAxis1).generate(wsdl);
  ASSERT_TRUE(result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJava)->compile(*result.artifacts);
  EXPECT_TRUE(sink.has_errors());
  EXPECT_TRUE(sink.has_warnings());  // plus the unchecked-operations warning
  // Metro's own artifacts for the same service compile clean.
  GenerationResult metro_result = client(kMetro).generate(wsdl);
  ASSERT_TRUE(metro_result.produced_artifacts());
  EXPECT_TRUE(compilers::make_compiler(code::Language::kJava)
                  ->compile(*metro_result.artifacts)
                  .empty());
}

TEST_F(ClientFixture, Axis2GregorianSuffixFailsCompile) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kXmlGregorianCalendar);
  GenerationResult result = client(kAxis2).generate(wsdl);
  ASSERT_TRUE(result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJava)->compile(*result.artifacts);
  ASSERT_TRUE(sink.has_errors());
  bool found = false;
  for (const Diagnostic& diagnostic : sink.diagnostics()) {
    if (diagnostic.message.find("localgregorian") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ClientFixture, VbCollidesOnCaseOnlyFields) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kNameValuePair);
  GenerationResult vb_result = client(kVb).generate(wsdl);
  ASSERT_TRUE(vb_result.produced_artifacts());
  EXPECT_TRUE(compilers::make_compiler(code::Language::kVisualBasic)
                  ->compile(*vb_result.artifacts)
                  .has_errors());
  GenerationResult cs_result = client(kCSharp).generate(wsdl);
  ASSERT_TRUE(cs_result.produced_artifacts());
  EXPECT_FALSE(compilers::make_compiler(code::Language::kCSharp)
                   ->compile(*cs_result.artifacts)
                   .has_errors());
}

TEST_F(ClientFixture, JScriptWarnsOnEveryJavaDescription) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kXmlGregorianCalendar);
  GenerationResult result = client(kJScript).generate(wsdl);
  EXPECT_TRUE(result.diagnostics.has_warnings());
  // Not on WCF descriptions.
  const std::string wcf_wsdl = served(wcf_server(), catalog::dotnet_names::kDataView);
  EXPECT_FALSE(client(kJScript).generate(wcf_wsdl).diagnostics.has_warnings());
}

TEST_F(ClientFixture, JScriptMissingBodiesOnAnyTypeArrays) {
  const std::string wsdl = served_with_trait(metro_server(), Trait::kAnyTypeArrayField);
  GenerationResult result = client(kJScript).generate(wsdl);
  ASSERT_TRUE(result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJScript)->compile(*result.artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().code, "jsc.missing-body");
}

TEST_F(ClientFixture, JScriptCrashesOnPathologicalNesting) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kCompilerPathological);
  GenerationResult result = client(kJScript).generate(wsdl);
  ASSERT_TRUE(result.produced_artifacts());
  const DiagnosticSink sink =
      compilers::make_compiler(code::Language::kJScript)->compile(*result.artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().message, "131 INTERNAL COMPILER CRASH");
}

TEST_F(ClientFixture, JScriptGeneratorCrashesOnSelfRecursiveTypes) {
  const std::string wsdl = served_with_trait(wcf_server(), Trait::kGeneratorCrash);
  GenerationResult result = client(kJScript).generate(wsdl);
  EXPECT_TRUE(result.diagnostics.has_errors());
  EXPECT_FALSE(result.produced_artifacts());
  EXPECT_EQ(result.diagnostics.count(Severity::kCrash), 1u);
}

TEST_F(ClientFixture, AxisArtifactsAlwaysWarnUnchecked) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kXmlGregorianCalendar);
  for (std::size_t i : {kAxis1, kAxis2}) {
    GenerationResult result = client(i).generate(wsdl);
    ASSERT_TRUE(result.produced_artifacts());
    const DiagnosticSink sink =
        compilers::make_compiler(code::Language::kJava)->compile(*result.artifacts);
    EXPECT_TRUE(sink.has_warnings()) << client(i).name();
  }
  // The strict tools' artifacts compile without warnings.
  for (std::size_t i : {kMetro, kCxf, kJBoss}) {
    GenerationResult result = client(i).generate(wsdl);
    ASSERT_TRUE(result.produced_artifacts());
    EXPECT_TRUE(compilers::make_compiler(code::Language::kJava)
                    ->compile(*result.artifacts)
                    .empty())
        << client(i).name();
  }
}

TEST_F(ClientFixture, ErraticAxisToolsLeaveArtifactsBehindOnError) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kW3CEndpointReference);
  for (std::size_t i : {kAxis1, kAxis2}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_TRUE(result.diagnostics.has_errors()) << client(i).name();
    EXPECT_TRUE(result.produced_artifacts()) << client(i).name();
  }
  // The strict tools do not.
  for (std::size_t i : {kMetro, kCxf, kJBoss, kCSharp}) {
    GenerationResult result = client(i).generate(wsdl);
    EXPECT_FALSE(result.produced_artifacts()) << client(i).name();
  }
}

TEST_F(ClientFixture, ZendNotesUncommonStructureWithoutFailing) {
  const std::string wsdl = served(metro_server(), catalog::java_names::kW3CEndpointReference);
  GenerationResult result = client(kZend).generate(wsdl);
  EXPECT_FALSE(result.diagnostics.has_errors());
  EXPECT_FALSE(result.diagnostics.has_warnings());
  EXPECT_EQ(result.diagnostics.count(Severity::kNote), 1u);
  EXPECT_TRUE(result.produced_artifacts());
}

TEST_F(ClientFixture, TableIIMetadataIsCorrect) {
  EXPECT_EQ(client(kMetro).tool(), "wsimport");
  EXPECT_EQ(client(kAxis1).tool(), "wsdl2java");
  EXPECT_EQ(client(kJBoss).tool(), "wsconsume");
  EXPECT_EQ(client(kCSharp).tool(), "wsdl.exe");
  EXPECT_EQ(client(kGsoap).tool(), "wsdl2h.exe and soapcpp2.exe");
  EXPECT_FALSE(client(kZend).requires_compilation());
  EXPECT_FALSE(client(kSuds).requires_compilation());
  EXPECT_TRUE(client(kGsoap).requires_compilation());
  EXPECT_EQ(client(kVb).language(), code::Language::kVisualBasic);
}

}  // namespace
}  // namespace wsx::frameworks
