// stream_campaign_equivalence_test — the streaming envelope path must be
// invisible in every campaign output, exactly like the parse cache: the
// communication study and the chaos campaign run with streaming on
// (default) and off (--no-stream), at jobs 1 and jobs 8, and must produce
// byte-identical artefacts. Campaign-level complement to the per-envelope
// differential pack in stream_equivalence_test.cpp; registered in the slow
// tier next to cache_equivalence_test.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "chaos/campaign.hpp"
#include "interop/communication.hpp"
#include "interop/report_formats.hpp"
#include "soap/envelope.hpp"

namespace wsx {
namespace {

struct StreamingGuard {
  ~StreamingGuard() { soap::set_streaming(true); }
};

/// Same sizing rationale as cache_equivalence_test: small, but enough that
/// 8 workers all get non-empty slices.
catalog::JavaCatalogSpec small_java() {
  catalog::JavaCatalogSpec spec;
  spec.plain_beans = 40;
  spec.throwable_clean = 8;
  spec.throwable_raw = 2;
  spec.raw_generic_beans = 4;
  spec.anytype_array_beans = 2;
  spec.no_default_ctor = 12;
  spec.abstract_classes = 6;
  spec.interfaces = 8;
  spec.generic_types = 4;
  return spec;
}

catalog::DotNetCatalogSpec small_dotnet() {
  catalog::DotNetCatalogSpec spec;
  spec.plain_types = 42;
  spec.dataset_plain = 2;
  spec.deep_nesting_clean = 6;
  spec.deep_nesting_pathological = 1;
  spec.non_serializable = 16;
  spec.no_default_ctor = 14;
  spec.generic_types = 8;
  spec.abstract_classes = 5;
  spec.interfaces = 4;
  return spec;
}

struct CommArtifacts {
  std::string csv;
  std::string text;

  bool operator==(const CommArtifacts&) const = default;
};

CommArtifacts run_comm(bool streaming, std::size_t threads) {
  StreamingGuard guard;
  soap::set_streaming(streaming);
  interop::StudyConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.threads = threads;
  const interop::CommunicationResult result = interop::run_communication_study(config);
  CommArtifacts out;
  out.csv = interop::communication_csv(result);
  out.text = interop::format_communication(result);
  return out;
}

TEST(StreamCampaignEquivalence, CommunicationOutputsAreIdentical) {
  const CommArtifacts on1 = run_comm(/*streaming=*/true, /*threads=*/1);
  const CommArtifacts off1 = run_comm(/*streaming=*/false, /*threads=*/1);
  const CommArtifacts on8 = run_comm(/*streaming=*/true, /*threads=*/8);
  const CommArtifacts off8 = run_comm(/*streaming=*/false, /*threads=*/8);
  EXPECT_EQ(on1, off1);
  EXPECT_EQ(on1, on8);
  EXPECT_EQ(on1, off8);
  EXPECT_NE(on1.csv.find(','), std::string::npos);
}

struct ChaosArtifacts {
  std::string csv;
  std::string recovery_json;

  bool operator==(const ChaosArtifacts&) const = default;
};

ChaosArtifacts run_chaos(bool streaming, std::size_t jobs) {
  StreamingGuard guard;
  soap::set_streaming(streaming);
  chaos::ChaosConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.plan.seed = 7;
  config.calls_per_pair = 2;
  config.jobs = jobs;
  const chaos::ChaosResult result = chaos::run_chaos_study(config);
  ChaosArtifacts out;
  out.csv = chaos::chaos_csv(result);
  out.recovery_json = chaos::chaos_recovery_json(result);
  return out;
}

TEST(StreamCampaignEquivalence, ChaosOutputsAreIdentical) {
  // The chaos campaign feeds corrupted bodies straight into the envelope
  // parser, so this also exercises DOM/stream error parity at scale.
  const ChaosArtifacts on1 = run_chaos(/*streaming=*/true, /*jobs=*/1);
  const ChaosArtifacts off1 = run_chaos(/*streaming=*/false, /*jobs=*/1);
  const ChaosArtifacts on8 = run_chaos(/*streaming=*/true, /*jobs=*/8);
  const ChaosArtifacts off8 = run_chaos(/*streaming=*/false, /*jobs=*/8);
  EXPECT_EQ(on1, off1);
  EXPECT_EQ(on1, on8);
  EXPECT_EQ(on1, off8);
  EXPECT_NE(on1.csv.find(','), std::string::npos);
}

}  // namespace
}  // namespace wsx
