// Concurrency-facing tests for the serve daemon, run in the
// wsx_concurrency_tests binary so the TSan CI job covers them: mixed
// traffic hammering one daemon from many threads, budget exhaustion with
// queries in flight (the budget must admit exactly its quota, never a
// race-y few more), the half-open breaker probe racing new lint
// admissions, and the stats control plane staying available under load.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "analysis/corpus.hpp"
#include "analysis/predict.hpp"
#include "serve/daemon.hpp"
#include "serve/oracle.hpp"

namespace wsx::serve {
namespace {

analysis::predict::PredictOptions tiny_predict() {
  analysis::predict::PredictOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 3;
  java.throwable_clean = 1;
  java.raw_generic_beans = 1;
  java.interfaces = 1;
  options.java_spec = java;
  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 2;
  dotnet.dataset_plain = 1;
  options.dotnet_spec = dotnet;
  options.join_study = false;
  options.jobs = 2;
  return options;
}

const Oracle& shared_oracle() {
  static const Oracle* oracle = [] {
    OracleOptions options;
    options.predict = tiny_predict();
    Result<Oracle> loaded = Oracle::load(options);
    if (!loaded.ok()) {
      ADD_FAILURE() << "oracle load failed: " << loaded.error().message;
      std::abort();
    }
    return new Oracle(std::move(loaded.value()));
  }();
  return *oracle;
}

const std::string& valid_wsdl_body() {
  static const std::string* body = [] {
    analysis::predict::PredictReport scratch;
    const std::vector<analysis::LintJob> jobs =
        analysis::predict::build_predict_corpus(tiny_predict(), scratch);
    if (jobs.empty()) {
      ADD_FAILURE() << "tiny corpus produced no jobs";
      std::abort();
    }
    return new std::string(jobs.front().wsdl_text);
  }();
  return *body;
}

Request verdict_request(const Oracle& oracle, std::size_t service_index = 0) {
  Request request;
  request.kind = QueryKind::kVerdict;
  request.client = oracle.clients().front();
  const auto& record = oracle.records()[service_index % oracle.records().size()];
  request.service = record.server + "/" + record.service;
  return request;
}

TEST(ServeConcurrency, MixedTrafficCountsStayConsistent) {
  Daemon daemon(shared_oracle(), DaemonSettings{});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50;
  std::atomic<std::size_t> ok{0}, shed{0}, deadline{0}, not_found{0}, stats_ok{0},
      other{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        Request request = verdict_request(daemon.oracle(), t * kPerThread + i);
        switch (i % 4) {
          case 0:
            break;
          case 1:
            request.kind = QueryKind::kExplain;
            break;
          case 2:
            request.kind = QueryKind::kSubstitute;
            break;
          default:
            request.kind = QueryKind::kStats;
            break;
        }
        // Ties across threads are deliberate: admission must tolerate
        // concurrent arrivals at one instant.
        const Response response = daemon.handle(request, 1 + i);
        if (request.kind == QueryKind::kStats) {
          EXPECT_EQ(response.status, StatusCode::kOk);
          ++stats_ok;
          continue;
        }
        switch (response.status) {
          case StatusCode::kOk:
            ++ok;
            break;
          case StatusCode::kShedded:
            ++shed;
            break;
          case StatusCode::kDeadlineExceeded:
            ++deadline;
            break;
          case StatusCode::kNotFound:  // admitted, then missed the cache
            ++not_found;
            break;
          default:
            ++other;
            break;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(other.load(), 0u);
  EXPECT_EQ(stats_ok.load(), kThreads * (kPerThread / 4));
  const AdmissionSnapshot snapshot = daemon.admission().snapshot();
  EXPECT_EQ(snapshot.admitted, ok.load() + not_found.load());
  EXPECT_EQ(snapshot.shed, shed.load());
  EXPECT_EQ(snapshot.deadline_rejected, deadline.load());
  EXPECT_EQ(ok.load() + shed.load() + deadline.load() + not_found.load(),
            kThreads * kPerThread - stats_ok.load());
}

TEST(ServeConcurrency, BudgetExhaustionWithQueriesInFlightAdmitsExactlyBudget) {
  DaemonSettings settings;
  settings.admission.budget_queries = 10;
  Daemon daemon(shared_oracle(), settings);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 25;
  std::atomic<std::size_t> ok{0}, shed{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const Response response =
            daemon.handle(verdict_request(daemon.oracle()), 1);
        if (response.status == StatusCode::kOk) ++ok;
        if (response.status == StatusCode::kShedded) ++shed;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  // The budget is a hard quota even with all admissions racing: exactly 10
  // queries get through, every other one is shed, none are lost.
  EXPECT_EQ(ok.load(), 10u);
  EXPECT_EQ(shed.load(), kThreads * kPerThread - 10u);
  EXPECT_EQ(daemon.admission().snapshot().admitted, 10u);
}

TEST(ServeConcurrency, HalfOpenProbeRacesNewLintAdmissions) {
  DaemonSettings settings;
  settings.breaker.failure_threshold = 1;
  settings.breaker.open_ms = 10;
  Daemon daemon(shared_oracle(), settings);

  // Trip the breaker with one poison upload.
  Request poison;
  poison.kind = QueryKind::kLint;
  poison.body = "<defin";
  const Response refused = daemon.handle(poison, 1);
  EXPECT_NE(refused.status, StatusCode::kOk);
  ASSERT_EQ(daemon.lint_snapshot().breaker_trips, 1u);

  // Every thread arrives exactly when the breaker turns half-open. The
  // lint mutex guarantees a single probe runs; it succeeds, the breaker
  // closes, and the racing requests all parse normally — no second trip,
  // no torn breaker state.
  constexpr std::size_t kThreads = 8;
  std::atomic<std::size_t> ok{0}, refused_count{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Request lint;
      lint.kind = QueryKind::kLint;
      lint.body = valid_wsdl_body();
      const Response response = daemon.handle(lint, 12);
      if (response.status == StatusCode::kOk) {
        ++ok;
      } else {
        ++refused_count;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(refused_count.load(), 0u);
  EXPECT_EQ(daemon.lint_snapshot().breaker_trips, 1u);
}

TEST(ServeConcurrency, StatsStaysAvailableWhileHammered) {
  DaemonSettings settings;
  settings.admission.budget_queries = 5;  // force shedding almost immediately
  Daemon daemon(shared_oracle(), settings);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> stats_failures{0};
  std::thread observer([&] {
    Request stats;
    stats.kind = QueryKind::kStats;
    while (!done.load()) {
      if (daemon.handle(stats, 1).status != StatusCode::kOk) ++stats_failures;
    }
  });
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (std::size_t i = 0; i < 200; ++i) {
        (void)daemon.handle(verdict_request(daemon.oracle(), i), 1 + i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done = true;
  observer.join();
  EXPECT_EQ(stats_failures.load(), 0u);
  EXPECT_EQ(daemon.admission().snapshot().admitted, 5u);
}

}  // namespace
}  // namespace wsx::serve
