// Tests for SOAP 1.2 support, version negotiation and mustUnderstand
// header processing.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "soap/envelope.hpp"
#include "soap/message.hpp"

namespace wsx::soap {
namespace {

TEST(Soap12, VersionMetadata) {
  EXPECT_STREQ(to_string(SoapVersion::k11), "SOAP 1.1");
  EXPECT_STREQ(to_string(SoapVersion::k12), "SOAP 1.2");
  EXPECT_EQ(envelope_namespace(SoapVersion::k11), xml::ns::kSoapEnvelope);
  EXPECT_EQ(envelope_namespace(SoapVersion::k12), xml::ns::kSoap12Envelope);
}

TEST(Soap12, PayloadRoundTripsInBothVersions) {
  for (SoapVersion version : {SoapVersion::k11, SoapVersion::k12}) {
    xml::Element payload{"m:ping"};
    payload.declare_namespace("m", "urn:x");
    const Envelope envelope{payload, version};
    const std::string wire = write(envelope);
    Result<Envelope> parsed = parse(wire);
    ASSERT_TRUE(parsed.ok()) << to_string(version);
    EXPECT_EQ(parsed->version(), version);
    EXPECT_EQ(parsed->body().local_name(), "ping");
  }
}

TEST(Soap12, FaultShapeDiffersButRoundTrips) {
  const Envelope fault =
      Envelope::make_fault({"soapenv:Sender", "bad call", "details"}, SoapVersion::k12);
  const std::string wire = write(fault);
  // The 1.2 structure uses Code/Value and Reason/Text.
  EXPECT_NE(wire.find("soapenv:Code"), std::string::npos);
  EXPECT_NE(wire.find("soapenv:Reason"), std::string::npos);
  EXPECT_EQ(wire.find("faultcode"), std::string::npos);
  Result<Envelope> parsed = parse(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->is_fault());
  EXPECT_EQ(parsed->fault().fault_code, "soapenv:Sender");
  EXPECT_EQ(parsed->fault().fault_string, "bad call");
  EXPECT_EQ(parsed->fault().detail, "details");
}

TEST(Soap12, UnknownEnvelopeNamespaceIsRejected) {
  Result<Envelope> parsed = parse(
      R"(<e:Envelope xmlns:e="urn:not-soap"><e:Body><x/></e:Body></e:Envelope>)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, "soap.version-mismatch");
}

TEST(Soap12, MustUnderstandHeaderDetection) {
  Envelope envelope{xml::Element{"m:op"}};
  EXPECT_FALSE(envelope.has_must_understand_headers());
  xml::Element transaction{"tx:transaction"};
  transaction.declare_namespace("tx", "urn:tx");
  envelope.add_must_understand_header(transaction);
  EXPECT_TRUE(envelope.has_must_understand_headers());
  // Survives the wire.
  Result<Envelope> parsed = parse(write(envelope));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->has_must_understand_headers());
}

TEST(Soap12, PlainHeadersDoNotDemandUnderstanding) {
  Envelope envelope{xml::Element{"m:op"}};
  xml::Element note{"n:note"};
  note.set_attribute("mustUnderstand", "0");
  envelope.add_header(note);
  EXPECT_FALSE(envelope.has_must_understand_headers());
}

class ServerVersioning : public ::testing::Test {
 protected:
  static const frameworks::DeployedService& service() {
    static const frameworks::DeployedService deployed = [] {
      const catalog::TypeCatalog catalog = catalog::make_java_catalog();
      const auto server = frameworks::make_server("Metro 2.3");
      const catalog::TypeInfo* type =
          catalog.find(catalog::java_names::kXmlGregorianCalendar);
      return std::move(server->deploy(frameworks::ServiceSpec{type}).value());
    }();
    return deployed;
  }
};

TEST_F(ServerVersioning, Soap12RequestGetsVersionMismatchFault) {
  const auto server = frameworks::make_server("Metro 2.3");
  Result<Envelope> request = build_request(service().wsdl, "echo", {{"arg0", "x"}});
  ASSERT_TRUE(request.ok());
  request->set_version(SoapVersion::k12);
  const Envelope response = server->handle_request(service(), *request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().fault_code, "soap:VersionMismatch");
}

TEST_F(ServerVersioning, MustUnderstandHeaderGetsFault) {
  const auto server = frameworks::make_server("Metro 2.3");
  Result<Envelope> request = build_request(service().wsdl, "echo", {{"arg0", "x"}});
  ASSERT_TRUE(request.ok());
  xml::Element security{"sec:Security"};
  security.declare_namespace("sec", "urn:security");
  request->add_must_understand_header(security);
  const Envelope response = server->handle_request(service(), *request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().fault_code, "soap:MustUnderstand");
}

TEST_F(ServerVersioning, PlainHeadersAreIgnored) {
  const auto server = frameworks::make_server("Metro 2.3");
  Result<Envelope> request = build_request(service().wsdl, "echo", {{"arg0", "ok"}});
  ASSERT_TRUE(request.ok());
  xml::Element trace{"t:traceId"};
  trace.declare_namespace("t", "urn:trace");
  trace.add_text("abc");
  request->add_header(trace);
  const Envelope response = server->handle_request(service(), *request);
  EXPECT_FALSE(response.is_fault());
  EXPECT_EQ(response_value(response).value(), "ok");
}

}  // namespace
}  // namespace wsx::soap
