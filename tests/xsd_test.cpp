// Unit tests for the XSD model, writer and reader (src/xsd/).
#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/writer.hpp"
#include "xsd/builtin.hpp"
#include "xsd/reader.hpp"
#include "xsd/writer.hpp"

namespace wsx::xsd {
namespace {

TEST(Builtin, RoundTripsThroughLocalName) {
  for (Builtin type : {Builtin::kString, Builtin::kInt, Builtin::kDateTime,
                       Builtin::kAnyType, Builtin::kUnsignedLong, Builtin::kQNameType}) {
    std::optional<Builtin> reparsed = builtin_from_local_name(local_name(type));
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, type);
  }
}

TEST(Builtin, QNameUsesSchemaNamespace) {
  const xml::QName name = qname(Builtin::kInt);
  EXPECT_EQ(name.namespace_uri(), xml::ns::kXsd);
  EXPECT_EQ(name.local_name(), "int");
}

TEST(Builtin, IsBuiltinRejectsNonSchemaNames) {
  EXPECT_TRUE(is_builtin(xml::QName{std::string(xml::ns::kXsd), "string"}));
  EXPECT_FALSE(is_builtin(xml::QName{std::string(xml::ns::kXsd), "schema"}));
  EXPECT_FALSE(is_builtin(xml::QName{"urn:x", "string"}));
}

ComplexType make_flat_type() {
  ComplexType type;
  type.name = "Point";
  ElementDecl x;
  x.name = "x";
  x.type = qname(Builtin::kInt);
  ElementDecl y;
  y.name = "y";
  y.type = qname(Builtin::kInt);
  type.particles.emplace_back(std::move(x));
  type.particles.emplace_back(std::move(y));
  return type;
}

TEST(Model, ElementsFilterSkipsWildcards) {
  ComplexType type = make_flat_type();
  type.particles.emplace_back(AnyParticle{});
  EXPECT_EQ(type.elements().size(), 2u);
  EXPECT_EQ(type.any_count(), 1u);
}

TEST(Model, NestingDepthCountsInlineTypes) {
  ComplexType flat = make_flat_type();
  EXPECT_EQ(flat.nesting_depth(), 1u);

  ComplexType outer;
  outer.name = "Outer";
  ElementDecl holder;
  holder.name = "inner";
  holder.inline_type = Box<ComplexType>{make_flat_type()};
  outer.particles.emplace_back(std::move(holder));
  EXPECT_EQ(outer.nesting_depth(), 2u);
}

TEST(Model, IsArrayFollowsOccurrence) {
  ElementDecl element;
  EXPECT_FALSE(element.is_array());
  element.max_occurs = kUnbounded;
  EXPECT_TRUE(element.is_array());
  element.max_occurs = 4;
  EXPECT_TRUE(element.is_array());
}

TEST(Model, SchemaLookupHelpers) {
  Schema schema;
  schema.target_namespace = "urn:t";
  schema.complex_types.push_back(make_flat_type());
  SimpleTypeDecl simple;
  simple.name = "Color";
  schema.simple_types.push_back(simple);
  ElementDecl top;
  top.name = "point";
  schema.elements.push_back(top);

  EXPECT_NE(schema.find_complex_type("Point"), nullptr);
  EXPECT_EQ(schema.find_complex_type("Nope"), nullptr);
  EXPECT_NE(schema.find_simple_type("Color"), nullptr);
  EXPECT_NE(schema.find_element("point"), nullptr);
}

Schema make_schema() {
  Schema schema;
  schema.target_namespace = "urn:test";
  schema.complex_types.push_back(make_flat_type());
  ElementDecl wrapper;
  wrapper.name = "echo";
  ComplexType wrapper_type;
  ElementDecl arg;
  arg.name = "arg0";
  arg.type = xml::QName{"urn:test", "Point"};
  wrapper_type.particles.emplace_back(std::move(arg));
  wrapper.inline_type = Box<ComplexType>{std::move(wrapper_type)};
  schema.elements.push_back(std::move(wrapper));
  SimpleTypeDecl color;
  color.name = "Color";
  color.base = qname(Builtin::kString);
  color.enumeration = {"RED", "GREEN"};
  schema.simple_types.push_back(std::move(color));
  return schema;
}

TEST(WriterReader, RoundTripsSchema) {
  const Schema original = make_schema();
  const xml::Element written = to_xml(original);
  const std::string text = xml::write(written);
  Result<xml::Element> reparsed = xml::parse_element(text);
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, original);
}

TEST(WriterReader, RoundTripsOccurrenceBounds) {
  Schema schema;
  schema.target_namespace = "urn:occ";
  ComplexType type;
  type.name = "List";
  ElementDecl items;
  items.name = "items";
  items.type = qname(Builtin::kString);
  items.min_occurs = 0;
  items.max_occurs = kUnbounded;
  type.particles.emplace_back(std::move(items));
  schema.complex_types.push_back(std::move(type));

  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(schema)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  const ElementDecl* element = read_back->complex_types.front().elements().front();
  EXPECT_EQ(element->min_occurs, 0);
  EXPECT_EQ(element->max_occurs, kUnbounded);
}

TEST(WriterReader, RoundTripsRestrictionFacets) {
  Schema schema;
  schema.target_namespace = "urn:facets";
  SimpleTypeDecl sku;
  sku.name = "Sku";
  sku.base = qname(Builtin::kString);
  sku.min_length = 2;
  sku.max_length = 8;
  sku.total_digits = 3;
  sku.pattern = "[A-Z]{2}\\d{3}";
  sku.enumeration = {"AB123", "CD456"};
  schema.simple_types.push_back(sku);

  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(schema)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  ASSERT_EQ(read_back->simple_types.size(), 1u);
  EXPECT_EQ(read_back->simple_types.front(), sku);
  // Absent facets stay absent (no spurious -1 serialization).
  SimpleTypeDecl bare;
  bare.name = "Bare";
  bare.base = qname(Builtin::kInt);
  schema.simple_types = {bare};
  const std::string text = xml::write(to_xml(schema));
  EXPECT_EQ(text.find("minLength"), std::string::npos);
  EXPECT_EQ(text.find("totalDigits"), std::string::npos);
  EXPECT_EQ(text.find("pattern"), std::string::npos);
}

TEST(WriterReader, RoundTripsImportsAndForm) {
  Schema schema;
  schema.target_namespace = "urn:imp";
  schema.element_form_qualified = false;
  schema.imports.push_back({"urn:other", "other.xsd"});
  schema.imports.push_back({std::string(xml::ns::kXmlNs), ""});

  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(schema)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, schema);
}

TEST(WriterReader, RoundTripsWildcards) {
  Schema schema;
  schema.target_namespace = "urn:any";
  ComplexType type;
  type.name = "DataTable";
  AnyParticle any;
  any.min_occurs = 0;
  any.max_occurs = kUnbounded;
  type.particles.emplace_back(any);
  type.particles.emplace_back(AnyParticle{});
  schema.complex_types.push_back(std::move(type));

  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(schema)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back->complex_types.front().any_count(), 2u);
  EXPECT_EQ(*read_back, schema);
}

TEST(WriterReader, PreservesDualTypeDeclaration) {
  Schema schema;
  schema.target_namespace = "urn:dual";
  ComplexType type;
  type.name = "Bad";
  ElementDecl element;
  element.name = "pattern";
  element.type = qname(Builtin::kString);
  ComplexType inline_type;
  ElementDecl raw;
  raw.name = "raw";
  raw.type = qname(Builtin::kString);
  inline_type.particles.emplace_back(std::move(raw));
  element.inline_type = Box<ComplexType>{std::move(inline_type)};
  type.particles.emplace_back(std::move(element));
  schema.complex_types.push_back(std::move(type));

  Result<xml::Element> reparsed = xml::parse_element(xml::write(to_xml(schema)));
  ASSERT_TRUE(reparsed.ok());
  Result<Schema> read_back = from_xml(reparsed.value());
  ASSERT_TRUE(read_back.ok());
  const ElementDecl* element_back = read_back->complex_types.front().elements().front();
  EXPECT_FALSE(element_back->type.empty());
  EXPECT_TRUE(element_back->inline_type.has_value());
}

TEST(WriterReader, SchemaPrefixConventionIsHonoured) {
  SchemaWriteOptions options;
  options.schema_prefix = "s";  // the WCF convention
  const xml::Element written = to_xml(make_schema(), options);
  EXPECT_EQ(written.name(), "s:schema");
  const std::string text = xml::write(written);
  EXPECT_NE(text.find("s:complexType"), std::string::npos);
  // Still parses back identically.
  Result<Schema> read_back = from_xml(xml::parse_element(text).value());
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, make_schema());
}

TEST(WriterReader, UnresolvedPrefixSurvivesAsEmptyNamespace) {
  // A ref with an undeclared prefix must parse into a QName with an empty
  // URI (and keep the prefix) instead of failing — tools meet these in the
  // wild.
  const char* text = R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
        targetNamespace="urn:x">
      <xs:complexType name="T">
        <xs:sequence><xs:element name="a" type="ghost:Type"/></xs:sequence>
      </xs:complexType>
    </xs:schema>)";
  Result<Schema> schema = from_xml(xml::parse_element(text).value());
  ASSERT_TRUE(schema.ok());
  const ElementDecl* element = schema->complex_types.front().elements().front();
  EXPECT_EQ(element->type.namespace_uri(), "");
  EXPECT_EQ(element->type.local_name(), "Type");
  EXPECT_EQ(element->type.prefix(), "ghost");
}

TEST(Reader, RejectsNonSchemaElement) {
  Result<Schema> schema = from_xml(xml::parse_element("<xs:other/>").value());
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.error().code, "xsd.not-a-schema");
}

TEST(Reader, RejectsMalformedOccurs) {
  const char* text = R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="a" maxOccurs="lots"/>
    </xs:schema>)";
  Result<Schema> schema = from_xml(xml::parse_element(text).value());
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.error().code, "xsd.bad-occurs");
}

TEST(Reader, ReadsEnumerationFacets) {
  const char* text = R"(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:simpleType name="SocketError">
        <xs:restriction base="xs:string">
          <xs:enumeration value="Success"/><xs:enumeration value="TimedOut"/>
        </xs:restriction>
      </xs:simpleType>
    </xs:schema>)";
  Result<Schema> schema = from_xml(xml::parse_element(text).value());
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema->simple_types.size(), 1u);
  EXPECT_EQ(schema->simple_types.front().enumeration,
            (std::vector<std::string>{"Success", "TimedOut"}));
  EXPECT_EQ(schema->simple_types.front().base, qname(Builtin::kString));
}

}  // namespace
}  // namespace wsx::xsd
