// obs_determinism_test — the cross-worker-count determinism pack. Each
// campaign (study, chaos, lint-corpus) runs twice with identical inputs at
// --jobs 1 and --jobs 8, under a FixedClock so durations cannot differ,
// and must produce:
//   * byte-identical metric exports in Export::kDeterministic mode, and
//   * an identical canonical span-tree shape.
// This is the executable form of the repo-wide invariant that worker count
// never changes campaign output (fixed slices, slice-order merges).
#include <gtest/gtest.h>

#include <string>

#include "analysis/corpus.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "chaos/campaign.hpp"
#include "interop/study.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wsx {
namespace {

/// A small-but-not-tiny population: enough services that 8 workers all
/// receive non-empty slices.
catalog::JavaCatalogSpec small_java() {
  catalog::JavaCatalogSpec spec;
  spec.plain_beans = 40;
  spec.throwable_clean = 8;
  spec.throwable_raw = 2;
  spec.raw_generic_beans = 4;
  spec.anytype_array_beans = 2;
  spec.no_default_ctor = 12;
  spec.abstract_classes = 6;
  spec.interfaces = 8;
  spec.generic_types = 4;
  return spec;
}

catalog::DotNetCatalogSpec small_dotnet() {
  catalog::DotNetCatalogSpec spec;
  spec.plain_types = 42;
  spec.dataset_plain = 2;
  spec.deep_nesting_clean = 6;
  spec.deep_nesting_pathological = 1;
  spec.non_serializable = 16;
  spec.no_default_ctor = 14;
  spec.generic_types = 8;
  spec.abstract_classes = 5;
  spec.interfaces = 4;
  return spec;
}

/// Deterministic export + canonical shape of one instrumented run.
struct RunSignature {
  std::string metrics;
  std::string shape;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_study_at(std::size_t threads) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  interop::StudyConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.threads = threads;
  config.tracer = &tracer;
  config.metrics = &registry;
  (void)interop::run_study(config);
  return {registry.to_json(obs::Export::kDeterministic), tracer.shape()};
}

RunSignature run_chaos_at(std::size_t jobs) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  chaos::ChaosConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.plan.seed = 7;
  config.calls_per_pair = 2;
  config.jobs = jobs;
  config.tracer = &tracer;
  config.metrics = &registry;
  (void)chaos::run_chaos_study(config);
  return {registry.to_json(obs::Export::kDeterministic), tracer.shape()};
}

RunSignature run_lint_at(std::size_t jobs) {
  const obs::FixedClock frozen;
  obs::Tracer tracer(&frozen);
  obs::Registry registry(&frozen);
  analysis::CorpusOptions options;
  options.java_spec = small_java();
  options.dotnet_spec = small_dotnet();
  options.jobs = jobs;
  options.tracer = &tracer;
  options.metrics = &registry;
  (void)analysis::analyze_corpus(options);
  return {registry.to_json(obs::Export::kDeterministic), tracer.shape()};
}

TEST(ObsDeterminism, StudyExportIsIdenticalAtJobs1And8) {
  const RunSignature serial = run_study_at(1);
  const RunSignature parallel = run_study_at(8);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.shape, parallel.shape);
  // The export is non-trivial: real counters and a real tree.
  EXPECT_NE(serial.metrics.find("study.tests_total"), std::string::npos);
  EXPECT_NE(serial.shape.find("phase:testing"), std::string::npos);
}

TEST(ObsDeterminism, StudyExportIsStableAcrossRepeatedRuns) {
  EXPECT_EQ(run_study_at(8), run_study_at(8));
}

TEST(ObsDeterminism, ChaosExportIsIdenticalAtJobs1And8) {
  const RunSignature serial = run_chaos_at(1);
  const RunSignature parallel = run_chaos_at(8);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.shape, parallel.shape);
  EXPECT_NE(serial.metrics.find("chaos.calls_total"), std::string::npos);
  EXPECT_NE(serial.shape.find("round:"), std::string::npos);
}

TEST(ObsDeterminism, LintCorpusExportIsIdenticalAtJobs1And8) {
  const RunSignature serial = run_lint_at(1);
  const RunSignature parallel = run_lint_at(8);
  EXPECT_EQ(serial.metrics, parallel.metrics);
  EXPECT_EQ(serial.shape, parallel.shape);
  EXPECT_NE(serial.metrics.find("lint.services_total"), std::string::npos);
  EXPECT_NE(serial.shape.find("pass:lint"), std::string::npos);
}

TEST(ObsDeterminism, FrozenClockZeroesEveryDuration) {
  const obs::FixedClock frozen(12345);
  obs::Registry registry(&frozen);
  interop::StudyConfig config;
  config.java_spec = small_java();
  config.dotnet_spec = small_dotnet();
  config.threads = 4;
  config.metrics = &registry;
  (void)interop::run_study(config);
  EXPECT_GT(registry.histogram("study.step.generation_us").count(), 0u);
  EXPECT_EQ(registry.histogram("study.step.generation_us").sum(), 0u);
  EXPECT_EQ(registry.histogram("study.phase.testing_us").sum(), 0u);
}

}  // namespace
}  // namespace wsx
