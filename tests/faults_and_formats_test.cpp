// Tests for the wsdl:fault support, the ablation knobs, and the
// CSV/Markdown report formats.
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/jbossws_server.hpp"
#include "frameworks/registry.hpp"
#include "interop/report_formats.hpp"
#include "interop/study.hpp"
#include "soap/message.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "wsi/profile.hpp"

namespace wsx {
namespace {

/// A Throwable-derived Java type and its served Metro description.
const frameworks::DeployedService& throwable_service() {
  static const frameworks::DeployedService service = [] {
    const catalog::TypeCatalog catalog = catalog::make_java_catalog();
    const auto server = frameworks::make_server("Metro 2.3");
    for (const catalog::TypeInfo& type : catalog.types()) {
      if (type.has(catalog::Trait::kThrowableDerived) &&
          !type.has(catalog::Trait::kRawGenericApi)) {
        return std::move(server->deploy(frameworks::ServiceSpec{&type}).value());
      }
    }
    return frameworks::DeployedService{};
  }();
  return service;
}

TEST(WsdlFaults, ThrowableServicesDeclareAFault) {
  const frameworks::DeployedService& service = throwable_service();
  ASSERT_EQ(service.wsdl.port_types.size(), 1u);
  const wsdl::Operation& operation = service.wsdl.port_types.front().operations.front();
  ASSERT_EQ(operation.faults.size(), 1u);
  EXPECT_NE(service.wsdl.find_message(operation.faults.front().message), nullptr);
  // The binding covers the fault.
  EXPECT_EQ(service.wsdl.bindings.front().operations.front().fault_names.size(), 1u);
}

TEST(WsdlFaults, FaultsSurviveTheWireRoundTrip) {
  const frameworks::DeployedService& service = throwable_service();
  Result<wsdl::Definitions> reparsed = wsdl::parse(service.wsdl_text);
  ASSERT_TRUE(reparsed.ok());
  const wsdl::Operation& operation = reparsed->port_types.front().operations.front();
  ASSERT_EQ(operation.faults.size(), 1u);
  EXPECT_EQ(operation.faults.front(),
            service.wsdl.port_types.front().operations.front().faults.front());
  EXPECT_EQ(reparsed->bindings.front().operations.front().fault_names,
            service.wsdl.bindings.front().operations.front().fault_names);
}

TEST(WsdlFaults, FaultDeclaringDescriptionsStayWsiCompliant) {
  const wsi::ComplianceReport report = wsi::check(throwable_service().wsdl);
  EXPECT_TRUE(report.compliant()) << report.summary();
}

TEST(WsdlFaults, R2723FailsWhenBindingDropsTheFault) {
  wsdl::Definitions defs = throwable_service().wsdl;
  defs.bindings.front().operations.front().fault_names.clear();
  EXPECT_TRUE(wsi::check(defs).failed("R2723"));
}

TEST(WsdlFaults, R2097CatchesDanglingFaultMessage) {
  wsdl::Definitions defs = throwable_service().wsdl;
  defs.port_types.front().operations.front().faults.front().message = "ghost";
  EXPECT_TRUE(wsi::check(defs).failed("R2097"));
}

TEST(WsdlFaults, ClientsGenerateAFaultWrapperClass) {
  const auto client = frameworks::make_client("Apache CXF 2.7.6");
  frameworks::GenerationResult result = client->generate(throwable_service().wsdl_text);
  ASSERT_TRUE(result.produced_artifacts());
  bool found = false;
  for (const code::CompilationUnit& unit : result.artifacts->units) {
    for (const code::Class& cls : unit.classes) {
      if (cls.name.find("Fault") != std::string::npos) found = true;
    }
  }
  EXPECT_TRUE(found);
  // The wrapper compiles cleanly for the strict tools.
  EXPECT_TRUE(compilers::make_compiler(code::Language::kJava)
                  ->compile(*result.artifacts)
                  .empty());
}

TEST(WsdlFaults, ServerRaisesDeclaredFaultOnDemand) {
  const frameworks::DeployedService& service = throwable_service();
  const auto server = frameworks::make_server("Metro 2.3");
  Result<soap::Envelope> request =
      soap::build_request(service.wsdl, "echo", {{"arg0", "!throw"}});
  ASSERT_TRUE(request.ok());
  const soap::Envelope response = server->handle_request(service, *request);
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().fault_code, "soap:Server");
  EXPECT_NE(response.fault().detail.find("Fault"), std::string::npos);
}

TEST(WsdlFaults, WcfServicesDeclareNoFaults) {
  const catalog::TypeCatalog dotnet = catalog::make_dotnet_catalog();
  const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
  const catalog::TypeInfo* type = dotnet.find(catalog::dotnet_names::kDataView);
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(service.ok());
  EXPECT_TRUE(service->wsdl.port_types.front().operations.front().faults.empty());
}

// --- Ablation knobs. ---

interop::StudyConfig tiny_config() {
  interop::StudyConfig config;
  config.java_spec.plain_beans = 10;
  config.java_spec.throwable_clean = 2;
  config.java_spec.throwable_raw = 1;
  config.java_spec.raw_generic_beans = 1;
  config.java_spec.anytype_array_beans = 1;
  config.java_spec.no_default_ctor = 2;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.java_spec.generic_types = 1;
  config.dotnet_spec.plain_types = 10;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 1;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 2;
  config.dotnet_spec.no_default_ctor = 2;
  config.dotnet_spec.generic_types = 1;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;
  return config;
}

TEST(Ablation, WsiGateWithdrawsFlaggedDescriptions) {
  interop::StudyConfig config = tiny_config();
  const interop::StudyResult baseline = interop::run_study(config);
  config.wsi_deploy_gate = true;
  const interop::StudyResult gated = interop::run_study(config);

  std::size_t rejections = 0;
  for (const interop::ServerResult& server : gated.servers) {
    rejections += server.gate_rejections;
    // Nothing flagged remains visible to clients.
    EXPECT_EQ(server.services_deployed + server.gate_rejections,
              baseline.servers[&server - gated.servers.data()].services_deployed);
  }
  EXPECT_EQ(rejections, baseline.total_description_warnings());
  EXPECT_LT(gated.total_interop_errors(), baseline.total_interop_errors());
}

TEST(Ablation, StrictJBossRefusesZeroOperationDeployments) {
  const catalog::TypeCatalog java = catalog::make_java_catalog(tiny_config().java_spec);
  const frameworks::JBossWsServer lenient;
  const frameworks::JBossWsServer strict{true};
  const catalog::TypeInfo* future = java.find(catalog::java_names::kFuture);
  ASSERT_NE(future, nullptr);
  EXPECT_TRUE(lenient.deploy(frameworks::ServiceSpec{future}).ok());
  Result<frameworks::DeployedService> refused =
      strict.deploy(frameworks::ServiceSpec{future});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, "deploy.no-operations");
}

// --- Machine-readable report formats. ---

class Formats : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new interop::StudyResult(interop::run_study(tiny_config()));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static interop::StudyResult* result_;
};

interop::StudyResult* Formats::result_ = nullptr;

TEST_F(Formats, Fig4CsvHasHeaderAndRows) {
  const std::string csv = interop::fig4_csv(*result_);
  EXPECT_EQ(csv.find("server,metric,paper,measured"), 0u);
  // 3 servers × 6 metrics + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 19);
}

TEST_F(Formats, Table3CsvHasOneRowPerCell) {
  const std::string csv = interop::table3_csv(*result_);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 33);
  EXPECT_NE(csv.find("Apache Axis1 1.4"), std::string::npos);
}

TEST_F(Formats, CsvEscapesCommaFields) {
  const std::string csv = interop::table3_csv(*result_);
  // Client names containing commas/quotes would be quoted; ours contain
  // neither, but parenthesized names must pass through unquoted.
  EXPECT_NE(csv.find(".NET Framework 4.0.30319.17929 (C#)"), std::string::npos);
}

TEST_F(Formats, MarkdownTablesRender) {
  const std::string fig4 = interop::fig4_markdown(*result_);
  EXPECT_EQ(fig4.find("| server | metric |"), 0u);
  EXPECT_NE(fig4.find("| Metro 2.3 |"), std::string::npos);
  const std::string table3 = interop::table3_markdown(*result_);
  EXPECT_NE(table3.find("| n/a | n/a |"), std::string::npos);  // dynamic clients
}

}  // namespace
}  // namespace wsx
