// Tests for the corpus-parallel lint driver (src/analysis/corpus.*):
// determinism across worker counts, the §IV.A zero-operation prediction,
// and the failure-prediction join against the interop study.
#include <gtest/gtest.h>

#include <string>

#include "analysis/corpus.hpp"
#include "analysis/sarif.hpp"
#include "common/json.hpp"

namespace wsx::analysis {
namespace {

/// A scaled-down population: a handful of each bucket plus the named
/// special types (which every spec always includes), so the corpus covers
/// zero-operation services, wildcard schemas, and deploy refusals while
/// staying fast enough for a unit test.
CorpusOptions tiny_options() {
  CorpusOptions options;
  catalog::JavaCatalogSpec java;
  java.plain_beans = 2;
  java.throwable_clean = 1;
  java.throwable_raw = 1;
  java.raw_generic_beans = 1;
  java.anytype_array_beans = 1;
  java.async_interfaces = 2;  // Future/Response → zero-operation on JBossWS
  java.no_default_ctor = 1;
  java.abstract_classes = 1;
  java.interfaces = 1;
  java.generic_types = 1;
  options.java_spec = java;

  catalog::DotNetCatalogSpec dotnet;
  dotnet.plain_types = 2;
  dotnet.dataset_plain = 1;
  dotnet.dataset_duplicated = 1;
  dotnet.dataset_nested = 0;
  dotnet.dataset_array = 0;
  dotnet.encoded_binding = 1;
  dotnet.missing_soap_action = 1;
  dotnet.deep_nesting_clean = 1;
  dotnet.deep_nesting_pathological = 0;
  dotnet.generator_crash = 0;
  dotnet.non_serializable = 1;
  dotnet.no_default_ctor = 1;
  dotnet.generic_types = 1;
  dotnet.abstract_classes = 1;
  dotnet.interfaces = 1;
  options.dotnet_spec = dotnet;
  return options;
}

TEST(Corpus, DeterministicAcrossWorkerCounts) {
  CorpusOptions serial = tiny_options();
  serial.jobs = 1;
  CorpusOptions parallel = tiny_options();
  parallel.jobs = 8;

  const CorpusReport a = analyze_corpus(serial);
  const CorpusReport b = analyze_corpus(parallel);

  ASSERT_EQ(a.services.size(), b.services.size());
  for (std::size_t i = 0; i < a.services.size(); ++i) {
    EXPECT_EQ(a.services[i].server, b.services[i].server);
    EXPECT_EQ(a.services[i].service, b.services[i].service);
    EXPECT_EQ(a.services[i].uri, b.services[i].uri);
    EXPECT_EQ(a.services[i].zero_operations, b.services[i].zero_operations);
    EXPECT_EQ(a.services[i].findings, b.services[i].findings) << a.services[i].uri;
  }
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule_id, b.rules[i].rule_id);
    EXPECT_EQ(a.rules[i].findings, b.rules[i].findings);
    EXPECT_EQ(a.rules[i].services_flagged, b.rules[i].services_flagged);
  }
  EXPECT_EQ(a.deploy_refusals, b.deploy_refusals);
  EXPECT_EQ(format_report(a), format_report(b));
}

TEST(Corpus, Wsx1001FlagsExactlyTheZeroOperationServices) {
  CorpusOptions options = tiny_options();
  options.jobs = 2;
  const CorpusReport report = analyze_corpus(options);
  ASSERT_FALSE(report.services.empty());
  bool saw_zero_operations = false;
  for (const ServiceAnalysis& service : report.services) {
    EXPECT_EQ(service.zero_operations, service.flagged_by("WSX1001")) << service.uri;
    saw_zero_operations = saw_zero_operations || service.zero_operations;
  }
  // The JAX-WS async interfaces publish compliant-but-empty descriptions.
  EXPECT_TRUE(saw_zero_operations);
}

TEST(Corpus, ReportShapeAndSarifExport) {
  CorpusOptions options = tiny_options();
  options.jobs = 2;
  const CorpusReport report = analyze_corpus(options);

  EXPECT_EQ(report.servers, 3u);
  EXPECT_NE(report.summary().find("services on 3 servers"), std::string::npos);
  EXPECT_GT(report.deploy_refusals, 0u);  // abstract/interface/generic types

  // Per-rule stats cover the whole registry, in registration order.
  const RuleRegistry& registry = RuleRegistry::builtin();
  ASSERT_EQ(report.rules.size(), registry.rules().size());
  for (std::size_t i = 0; i < report.rules.size(); ++i) {
    EXPECT_EQ(report.rules[i].rule_id, registry.rules()[i]->info().id);
    EXPECT_GE(report.rules[i].findings, report.rules[i].services_flagged);
  }

  std::size_t total = 0;
  for (const ServiceAnalysis& service : report.services) total += service.findings.size();
  EXPECT_EQ(report.all_findings().size(), total);

  // The aggregated findings serialize to parseable SARIF 2.1.0.
  const Result<json::Value> sarif = json::parse(to_sarif(report.all_findings()));
  ASSERT_TRUE(sarif.ok()) << sarif.error().message;
  EXPECT_EQ(sarif->find("version")->as_string(), "2.1.0");
  EXPECT_EQ(sarif->find("runs")->items().front().find("results")->size(), total);
}

TEST(Corpus, RuleConfigDisablesRulesEndToEnd) {
  CorpusOptions options = tiny_options();
  options.jobs = 1;
  options.rules.disabled.insert("WSX1006");
  const CorpusReport report = analyze_corpus(options);
  for (const RuleStats& stats : report.rules) {
    EXPECT_NE(stats.rule_id, "WSX1006");
  }
  for (const ServiceAnalysis& service : report.services) {
    EXPECT_FALSE(service.flagged_by("WSX1006")) << service.uri;
  }
}

TEST(Corpus, StudyJoinComputesConfusionCounts) {
  CorpusOptions options = tiny_options();
  options.jobs = 2;
  options.join_study = true;
  options.study_threads = 2;
  const CorpusReport report = analyze_corpus(options);
  ASSERT_TRUE(report.joined);

  std::size_t errored = 0;
  for (const ServiceAnalysis& service : report.services) {
    if (service.downstream_error) ++errored;
  }
  EXPECT_GT(errored, 0u);  // the corpus reproduces failing descriptions

  for (const RuleStats& stats : report.rules) {
    EXPECT_EQ(stats.true_positives + stats.false_positives, stats.services_flagged);
    EXPECT_EQ(stats.true_positives + stats.false_negatives, errored);
    EXPECT_GE(stats.precision(), 0.0);
    EXPECT_LE(stats.precision(), 1.0);
    EXPECT_GE(stats.recall(), 0.0);
    EXPECT_LE(stats.recall(), 1.0);
  }

  // The joined report prints precision/recall columns.
  EXPECT_NE(format_report(report).find("precision"), std::string::npos);
}

}  // namespace
}  // namespace wsx::analysis
