// Hostile-input bridge for the streaming envelope path: every wire fault
// the chaos layer can inject and every fuzz mutation operator, applied to
// real framework traffic, must be judged identically by the streaming pull
// path and the DOM path — same accept/reject verdict, same error code, no
// crashes. This is the sanitizer workhorse for the tokenizer: the suite
// runs under ASan in CI, so any out-of-bounds scan or dangling view in
// pull.cpp trips here.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "chaos/fault.hpp"
#include "chaos/wire.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/mutation.hpp"
#include "soap/envelope.hpp"
#include "soap/message.hpp"
#include "soap/version.hpp"
#include "xml/pull.hpp"
#include "xml/qname.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

struct StreamingGuard {
  ~StreamingGuard() { soap::set_streaming(true); }
};

/// ok + error code of soap::parse under the given path.
std::string verdict_with(bool streaming, const std::string& text) {
  StreamingGuard guard;
  soap::set_streaming(streaming);
  Result<soap::Envelope> envelope = soap::parse(text);
  return envelope.ok() ? std::string("ok") : envelope.error().code;
}

/// Both paths, plus a raw tokenizer drain (which must never crash and must
/// agree with the DOM about well-formedness).
void expect_same_verdict(const std::string& text, const std::string& label) {
  const std::string stream = verdict_with(true, text);
  const std::string dom = verdict_with(false, text);
  EXPECT_EQ(stream, dom) << label << "\ninput:\n" << text;

  xml::pull::Tokenizer tok{text};
  Result<bool> wf = xml::pull::drain(tok);
  if (dom.rfind("xml.", 0) == 0) {
    ASSERT_FALSE(wf.ok()) << label;
    EXPECT_EQ(wf.error().code, dom) << label;
  } else {
    EXPECT_TRUE(wf.ok()) << label << " (envelope-level verdict: " << dom << ")";
  }
}

/// Same document fed one byte at a time: the incremental scanner must
/// reach the same verdict as the one-shot scan.
void expect_same_verdict_incremental(const std::string& text, const std::string& label) {
  xml::pull::Tokenizer one_shot{text};
  const Result<bool> whole = xml::pull::drain(one_shot);

  xml::pull::Tokenizer tok{xml::pull::TokenizerOptions{}};
  std::size_t fed = 0;
  std::string code = "ok";
  for (;;) {
    const xml::pull::Token& token = tok.next();
    if (token.kind == xml::pull::TokenKind::kNeedMore) {
      if (fed < text.size()) {
        tok.feed(text.substr(fed, 1));
        ++fed;
      } else {
        tok.finish();
      }
      continue;
    }
    if (token.kind == xml::pull::TokenKind::kEndDocument) break;
    if (token.kind == xml::pull::TokenKind::kError) {
      code = tok.error().code;
      break;
    }
  }
  EXPECT_EQ(code, whole.ok() ? "ok" : whole.error().code) << label;
}

const std::string& clean_body() {
  static const std::string body = [] {
    const frameworks::DeployedService service = wsx::testing::deploy_one(
        "Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
    const auto server = frameworks::make_server("Metro 2.3");
    Result<soap::Envelope> request =
        soap::build_request(service.wsdl, "echo", {{"arg0", "bridge-payload"}});
    const soap::HttpResponse response = server->handle_http(
        service,
        soap::make_soap_request("http://localhost/echo", "", soap::write(*request)));
    return response.body;
  }();
  return body;
}

/// Mixed-version corpus: a genuine SOAP 1.2 envelope, the two hybrid
/// 1.1-with-1.2-era-header profiles, and the raw namespace rewrite the
/// soap12-rewrite chaos fault performs in transit.
std::vector<std::pair<std::string, std::string>> mixed_version_corpus() {
  std::vector<std::pair<std::string, std::string>> corpus;
  Result<soap::Envelope> base = soap::parse(clean_body());
  if (!base.ok()) return corpus;

  soap::Envelope soap12 = *base;
  soap12.set_version(soap::SoapVersion::k12);
  corpus.emplace_back("soap 1.2", soap::write(soap12));

  for (const soap::HybridProfile profile :
       {soap::HybridProfile::kAddressing, soap::HybridProfile::kSecured}) {
    soap::Envelope hybrid = *base;
    soap::apply_hybrid_profile(hybrid, profile, "echo");
    corpus.emplace_back(std::string("hybrid ") + soap::to_string(profile),
                        soap::write(hybrid));
  }

  // The in-transit rewrite (wire.cpp's soap12-rewrite): textual namespace
  // replacement, which unlike set_version leaves everything else 1.1.
  std::string rewritten = clean_body();
  const std::string from(xml::ns::kSoapEnvelope);
  const std::string to(xml::ns::kSoap12Envelope);
  for (std::size_t at = rewritten.find(from); at != std::string::npos;
       at = rewritten.find(from, at + to.size())) {
    rewritten.replace(at, from.size(), to);
  }
  corpus.emplace_back("rewritten namespace", std::move(rewritten));
  return corpus;
}

TEST(StreamFuzzBridge, MixedVersionEnvelopesAgree) {
  const auto corpus = mixed_version_corpus();
  ASSERT_EQ(corpus.size(), 4u);
  for (const auto& [label, body] : corpus) {
    expect_same_verdict(body, label);
    expect_same_verdict_incremental(body, label);
    EXPECT_EQ(verdict_with(true, body), "ok") << label;
  }
}

TEST(StreamFuzzBridge, DamagedMixedVersionEnvelopesAgree) {
  // Every fault kind (the version-skew kinds included — apply_body_fault
  // passes them through unchanged, which both paths must tolerate) and a
  // truncation sweep over each mixed-version shape.
  for (const auto& [label, body] : mixed_version_corpus()) {
    for (chaos::FaultKind kind : chaos::all_fault_kinds()) {
      for (std::uint64_t salt : {2, 17}) {
        expect_same_verdict(chaos::apply_body_fault(kind, body, salt),
                            label + " under " + chaos::to_string(kind));
      }
    }
    for (std::size_t cut = 0; cut <= body.size(); cut += 11) {
      expect_same_verdict(body.substr(0, cut),
                          label + " cut at " + std::to_string(cut));
    }
  }
}

TEST(StreamFuzzBridge, CleanTrafficAgrees) {
  ASSERT_FALSE(clean_body().empty());
  expect_same_verdict(clean_body(), "clean");
  EXPECT_EQ(verdict_with(true, clean_body()), "ok");
}

TEST(StreamFuzzBridge, EveryChaosFaultKindAgrees) {
  for (chaos::FaultKind kind : chaos::all_fault_kinds()) {
    for (std::uint64_t salt = 0; salt < 25; ++salt) {
      const std::string damaged = chaos::apply_body_fault(kind, clean_body(), salt);
      expect_same_verdict(damaged, "fault kind " +
                                       std::to_string(static_cast<int>(kind)) +
                                       " salt " + std::to_string(salt));
    }
  }
}

TEST(StreamFuzzBridge, EveryFuzzMutantAgrees) {
  // mutate_all applies every applicable MutationKind (including the
  // text-level operators: entity corruption, mismatched end tag,
  // truncation, duplicated attribute) to the envelope text.
  const std::vector<fuzz::Mutant> mutants = fuzz::mutate_all(clean_body());
  ASSERT_FALSE(mutants.empty());
  for (const fuzz::Mutant& mutant : mutants) {
    expect_same_verdict(mutant.wsdl_text, "mutant " + mutant.description);
    expect_same_verdict_incremental(mutant.wsdl_text, "mutant " + mutant.description);
  }
}

TEST(StreamFuzzBridge, TruncationAtEveryByteAgrees) {
  // Every prefix of a real envelope: the scanner sees unterminated
  // constructs of every flavour, and both paths must classify each one
  // identically (several short prefixes are valid XML fragments that then
  // fail SOAP framing — those must agree too).
  const std::string& body = clean_body();
  for (std::size_t cut = 0; cut <= body.size(); ++cut) {
    expect_same_verdict(body.substr(0, cut), "cut at " + std::to_string(cut));
  }
}

TEST(StreamFuzzBridge, TruncationSweepIncremental) {
  const std::string& body = clean_body();
  // Byte-at-a-time feeding across the sweep is quadratic; stride keeps the
  // test fast while still crossing every construct boundary in the text.
  for (std::size_t cut = 0; cut <= body.size(); cut += 7) {
    expect_same_verdict_incremental(body.substr(0, cut),
                                    "cut at " + std::to_string(cut));
  }
}

TEST(StreamFuzzBridge, StackedCorruptionsAgree) {
  // Chaos corruption on top of a fuzz mutant — doubly damaged documents.
  const std::vector<fuzz::Mutant> mutants = fuzz::mutate_all(clean_body());
  for (const fuzz::Mutant& mutant : mutants) {
    for (std::uint64_t salt : {1, 9, 33}) {
      const std::string damaged = chaos::apply_body_fault(
          chaos::FaultKind::kCorruptedByte, mutant.wsdl_text, salt);
      expect_same_verdict(damaged, "stacked " + mutant.description);
    }
  }
}

TEST(StreamFuzzBridge, PathologicalHandWrittenInputs) {
  const std::vector<std::string> inputs = {
      std::string(1, '\0'),
      std::string(200, '<'),
      std::string(200, '&'),
      "<a " + std::string(500, 'x') + "=\"v\"/>",
      "<" + std::string(5000, 'n') + "/>",
      "<a>" + std::string(5000, 't') + "</a>",
      "<a><![CDATA[" + std::string(1000, ']') + "]]></a>",
      "<a>&#xFFFFFFFFFFFFFFFFFF;</a>",
      "<a>&#0;</a>",
      "<a\xFF\xFE/>",
      "\xEF\xBB\xBF\xEF\xBB\xBF<a/>",
      "<?xml?><a/>",
      "<?xml version=\"1.0\" encoding=\"\"?><a/>",
      "<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a/>",
  };
  for (const std::string& text : inputs) {
    expect_same_verdict(text, "pathological");
    expect_same_verdict_incremental(text, "pathological");
  }
}

}  // namespace
}  // namespace wsx
