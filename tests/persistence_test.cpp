// Tests for campaign snapshotting and run diffing (src/interop/persistence.*).
#include <gtest/gtest.h>

#include "interop/persistence.hpp"

namespace wsx::interop {
namespace {

StudyConfig tiny() {
  StudyConfig config;
  config.java_spec.plain_beans = 6;
  config.java_spec.throwable_clean = 1;
  config.java_spec.throwable_raw = 1;
  config.java_spec.raw_generic_beans = 1;
  config.java_spec.anytype_array_beans = 1;
  config.java_spec.no_default_ctor = 1;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.java_spec.generic_types = 1;
  config.dotnet_spec.plain_types = 6;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 1;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 1;
  config.dotnet_spec.no_default_ctor = 1;
  config.dotnet_spec.generic_types = 1;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;
  return config;
}

TEST(Persistence, SnapshotRoundTrips) {
  const StudyResult run = run_study(tiny());
  const std::string csv = to_snapshot_csv(run);
  Result<std::vector<SnapshotCell>> cells = parse_snapshot_csv(csv);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 33u);  // 3 servers × 11 clients
  // Spot-check one cell against the in-memory result.
  const ServerResult& metro = run.servers.front();
  const SnapshotCell& first = cells->front();
  EXPECT_EQ(first.server, metro.server);
  EXPECT_EQ(first.client, metro.cells.front().client);
  EXPECT_EQ(first.tests, metro.cells.front().tests);
  EXPECT_EQ(first.generation, metro.cells.front().generation);
  EXPECT_EQ(first.compilation, metro.cells.front().compilation);
}

TEST(Persistence, IdenticalRunsDiffEmpty) {
  const StudyResult run = run_study(tiny());
  Result<std::vector<SnapshotCell>> before = parse_snapshot_csv(to_snapshot_csv(run));
  Result<std::vector<SnapshotCell>> after = parse_snapshot_csv(to_snapshot_csv(run));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(diff_snapshots(*before, *after).empty());
  EXPECT_NE(format_diff({}).find("no behavioural changes"), std::string::npos);
}

TEST(Persistence, ChangedCellsAreReported) {
  std::vector<SnapshotCell> before = {
      {"S", "A", 100, {0, 1}, {10, 2}},
      {"S", "B", 100, {0, 0}, {0, 0}},
  };
  std::vector<SnapshotCell> after = before;
  after[0].generation.errors = 5;
  after[1].compilation.warnings = 7;
  const std::vector<CellDiff> diff = diff_snapshots(before, after);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].metric, "generation_errors");
  EXPECT_EQ(diff[0].before, 1u);
  EXPECT_EQ(diff[0].after, 5u);
  EXPECT_EQ(diff[1].metric, "compilation_warnings");
  const std::string text = format_diff(diff);
  EXPECT_NE(text.find("generation_errors 1 -> 5"), std::string::npos);
}

TEST(Persistence, MissingCellsDiffAgainstZero) {
  std::vector<SnapshotCell> before = {{"S", "A", 10, {1, 1}, {1, 1}}};
  std::vector<SnapshotCell> after;  // tool removed from the roster
  const std::vector<CellDiff> diff = diff_snapshots(before, after);
  EXPECT_EQ(diff.size(), 5u);  // every metric dropped to 0
  // And the reverse: a new tool appears.
  const std::vector<CellDiff> reverse = diff_snapshots(after, before);
  EXPECT_EQ(reverse.size(), 5u);
  EXPECT_EQ(reverse.front().before, 0u);
}

TEST(Persistence, RejectsMalformedSnapshots) {
  EXPECT_FALSE(parse_snapshot_csv("").ok());
  EXPECT_FALSE(parse_snapshot_csv("nonsense header\n1,2,3").ok());
  EXPECT_EQ(parse_snapshot_csv("server,client,tests,a,b,c,d\nS,A,1,2,3").error().code,
            "snapshot.bad-record");
  EXPECT_EQ(
      parse_snapshot_csv("server,client,tests,a,b,c,d\nS,A,one,2,3,4,5").error().code,
      "snapshot.bad-number");
}

TEST(Persistence, QuotedFieldsParse) {
  const char* csv =
      "server,client,tests,gw,ge,cw,ce\n\"Server, with comma\",\"He said \"\"hi\"\"\",1,2,3,4,5\n";
  Result<std::vector<SnapshotCell>> cells = parse_snapshot_csv(csv);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->front().server, "Server, with comma");
  EXPECT_EQ(cells->front().client, "He said \"hi\"");
}

}  // namespace
}  // namespace wsx::interop
