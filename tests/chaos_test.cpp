// Tests for the wire-fault chaos subsystem (src/chaos/*): the fault plan,
// the resilience policies, the circuit breaker, and the campaign's core
// guarantees — determinism across worker counts, zero-fault equivalence
// with the communication study, and emergent per-client profiles.
#include <gtest/gtest.h>

#include <set>

#include "chaos/campaign.hpp"
#include "chaos/fault.hpp"
#include "chaos/policy.hpp"
#include "chaos/wire.hpp"
#include "interop/communication.hpp"
#include "test_helpers.hpp"

namespace wsx::chaos {
namespace {

// ---------------------------------------------------------------- fault plan

TEST(FaultPlan, ScheduleIsDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  const CallSchedule a = plan_call(plan, "Metro 2.3|EchoFoo|Zend|0");
  const CallSchedule b = plan_call(plan, "Metro 2.3|EchoFoo|Zend|0");
  EXPECT_EQ(a.faulted(), b.faulted());
  EXPECT_EQ(a.burst(), b.burst());
  EXPECT_EQ(a.salt(), b.salt());
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(a.fault_for_attempt(attempt), b.fault_for_attempt(attempt));
  }
}

TEST(FaultPlan, SeedChangesTheSchedule) {
  FaultPlan a;
  a.seed = 1;
  FaultPlan b;
  b.seed = 2;
  // Over many calls the two seeds must diverge somewhere.
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    const std::string id = "s|svc" + std::to_string(i) + "|c|0";
    const CallSchedule sa = plan_call(a, id);
    const CallSchedule sb = plan_call(b, id);
    diverged = sa.faulted() != sb.faulted() ||
               sa.fault_for_attempt(0) != sb.fault_for_attempt(0);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultPlan, RateZeroMeansCleanWire) {
  FaultPlan plan;
  plan.rate_percent = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan_call(plan, "id" + std::to_string(i)).faulted());
  }
}

TEST(FaultPlan, RateHundredFaultsEveryCall) {
  FaultPlan plan;
  plan.rate_percent = 100;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan_call(plan, "id" + std::to_string(i)).faulted());
  }
}

TEST(FaultPlan, RespectsEnabledKinds) {
  FaultPlan plan;
  plan.rate_percent = 100;
  plan.kinds = {FaultKind::kHttp503};
  for (int i = 0; i < 20; ++i) {
    const CallSchedule schedule = plan_call(plan, "id" + std::to_string(i));
    EXPECT_EQ(schedule.fault_for_attempt(0), FaultKind::kHttp503);
  }
}

TEST(FaultPlan, BurstEndsAndLaterAttemptsAreClean) {
  FaultPlan plan;
  plan.rate_percent = 100;
  plan.max_burst = 2;
  const CallSchedule schedule = plan_call(plan, "some-call");
  ASSERT_TRUE(schedule.faulted());
  ASSERT_GE(schedule.burst(), 1u);
  ASSERT_LE(schedule.burst(), 2u);
  EXPECT_TRUE(schedule.fault_for_attempt(schedule.burst() - 1).has_value());
  EXPECT_FALSE(schedule.fault_for_attempt(schedule.burst()).has_value());
}

TEST(FaultKindMeta, NamesRoundTripThroughTheParser) {
  for (const FaultKind kind : all_fault_kinds()) {
    const std::optional<FaultKind> parsed = parse_fault_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_fault_kind("nope").has_value());
  EXPECT_EQ(all_fault_kinds().size(), kFaultKindCount);
}

// -------------------------------------------------------------------- policy

TEST(Policy, EveryRosterClientHasACalibration) {
  // All eleven client tools resolve to a non-default policy or an explicit
  // conservative one; at least three materially different profiles exist.
  const ResiliencePolicy metro = policy_for("Oracle Metro 2.3");
  const ResiliencePolicy gsoap = policy_for("gSOAP Toolkit 2.8.16");
  const ResiliencePolicy suds = policy_for("suds Python 0.4");
  EXPECT_GT(metro.max_retries, 0u);
  EXPECT_TRUE(metro.retry_on_reset);
  EXPECT_TRUE(gsoap.abort_on_first_wire_fault);
  EXPECT_EQ(suds.max_retries, 0u);
  EXPECT_EQ(suds.attempt_timeout_ms, suds.call_budget_ms);  // the hang profile
}

TEST(Policy, IdempotencyGateIsCalibratedPerStack) {
  EXPECT_FALSE(policy_for("Apache CXF 2.7.6").retransmit_after_server_execution);
  EXPECT_FALSE(
      policy_for(".NET Framework 4.0.30319.17929 (C#)").retransmit_after_server_execution);
  EXPECT_TRUE(policy_for("Oracle Metro 2.3").retransmit_after_server_execution);
}

TEST(Policy, BackoffGrowsAndStaysCappedAndDeterministic) {
  const ResiliencePolicy dotnet = policy_for(".NET Framework 4.0.30319.17929 (C#)");
  const std::uint64_t b0 = dotnet.backoff_before(0, 99);
  const std::uint64_t b1 = dotnet.backoff_before(1, 99);
  const std::uint64_t b5 = dotnet.backoff_before(5, 99);
  EXPECT_GE(b0, dotnet.base_backoff_ms);
  EXPECT_GE(b1, 2 * dotnet.base_backoff_ms);
  EXPECT_LE(b5, dotnet.max_backoff_ms + dotnet.jitter_ms);
  EXPECT_EQ(dotnet.backoff_before(1, 99), b1);  // same salt, same delay
}

TEST(Policy, UnknownClientGetsConservativeDefault) {
  const ResiliencePolicy policy = policy_for("Some Unknown Stack 1.0");
  EXPECT_EQ(policy.max_retries, 0u);
  EXPECT_FALSE(policy.retry_on_reset);
}

TEST(Policy, TableRendersEveryFamily) {
  const std::string table = format_policy_table();
  EXPECT_NE(table.find("Oracle Metro"), std::string::npos);
  EXPECT_NE(table.find("gSOAP"), std::string::npos);
  EXPECT_NE(table.find("suds"), std::string::npos);
}

// ------------------------------------------------------------ circuit breaker

TEST(Breaker, OpensAfterConsecutiveFailuresAndCoolsDown) {
  BreakerSettings settings;
  settings.failure_threshold = 3;
  settings.open_ms = 1000;
  CircuitBreaker breaker(settings);
  EXPECT_TRUE(breaker.allows(0));
  breaker.record_failure(10);
  breaker.record_failure(20);
  EXPECT_TRUE(breaker.allows(25));  // below threshold, still closed
  breaker.record_failure(30);
  EXPECT_EQ(breaker.state(31), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allows(31));
  EXPECT_EQ(breaker.trips(), 1u);
  // After the cooldown the breaker admits a probe.
  EXPECT_EQ(breaker.state(1030), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allows(1030));
}

TEST(Breaker, HalfOpenProbeDecidesTheNextState) {
  BreakerSettings settings;
  settings.failure_threshold = 1;
  settings.open_ms = 100;
  CircuitBreaker failed(settings);
  failed.record_failure(0);
  ASSERT_EQ(failed.state(100), CircuitBreaker::State::kHalfOpen);
  failed.record_failure(100);  // probe failed → re-open, counted as a trip
  EXPECT_EQ(failed.state(150), CircuitBreaker::State::kOpen);
  EXPECT_EQ(failed.trips(), 2u);

  CircuitBreaker recovered(settings);
  recovered.record_failure(0);
  recovered.record_success(100);  // probe succeeded → closed again
  EXPECT_EQ(recovered.state(101), CircuitBreaker::State::kClosed);
}

TEST(Breaker, SuccessResetsTheFailureStreak) {
  BreakerSettings settings;
  settings.failure_threshold = 2;
  CircuitBreaker breaker(settings);
  breaker.record_failure(0);
  breaker.record_success(1);
  breaker.record_failure(2);
  EXPECT_EQ(breaker.state(3), CircuitBreaker::State::kClosed);
}

// ------------------------------------------------------------------ campaign

/// Small population: enough services for differentiated counts, fast
/// enough for a unit test (shared with the propcheck suite).
ChaosConfig scaled_config() {
  ChaosConfig config;
  config.java_spec = wsx::testing::small_java_spec();
  config.dotnet_spec = wsx::testing::small_dotnet_spec();
  return config;
}

class ChaosStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ChaosConfig config = scaled_config();
    config.plan.rate_percent = 60;  // plenty of challenged calls
    config.calls_per_pair = 2;
    config.jobs = 2;
    result_ = new ChaosResult(run_chaos_study(config));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const ChaosResult& result() { return *result_; }
  static ChaosResult* result_;

  /// The cell of the first server whose client starts with `prefix`,
  /// aggregated over all servers.
  static ChaosCell aggregate(std::string_view prefix) {
    ChaosCell total;
    for (const ChaosServerResult& server : result().servers) {
      for (const ChaosCell& cell : server.cells) {
        if (cell.client.rfind(prefix, 0) != 0) continue;
        total.client = cell.client;
        for (std::size_t i = 0; i < kChaosOutcomeCount; ++i) {
          total.outcomes[i] += cell.outcomes[i];
        }
        total.retransmits += cell.retransmits;
        total.challenged += cell.challenged;
        total.challenged_ok += cell.challenged_ok;
      }
    }
    return total;
  }
};

ChaosResult* ChaosStudy::result_ = nullptr;

TEST_F(ChaosStudy, FaultsActuallyChallengeCalls) {
  EXPECT_GT(result().total_attempted(), 0u);
  EXPECT_GT(result().total_challenged(), 0u);
  EXPECT_GT(result().total_challenged_ok(), 0u);
}

TEST_F(ChaosStudy, ClientProfilesDiverge) {
  // At least three materially different resilience profiles must emerge
  // from the same fault plan: a retrier that recovers, an aborter that
  // fails fast without a single retransmit, and a stack that hangs.
  const ChaosCell metro = aggregate("Oracle Metro");
  const ChaosCell gsoap = aggregate("gSOAP");
  const ChaosCell suds = aggregate("suds");
  EXPECT_GT(metro.count(ChaosOutcome::kRecovered), 0u);
  EXPECT_GT(metro.retransmits, 0u);
  EXPECT_EQ(gsoap.count(ChaosOutcome::kRecovered), 0u);
  EXPECT_EQ(gsoap.retransmits, 0u);
  EXPECT_GT(gsoap.count(ChaosOutcome::kFailedFast), 0u);
  EXPECT_GT(suds.count(ChaosOutcome::kHung), 0u);
  EXPECT_EQ(suds.retransmits, 0u);
}

TEST_F(ChaosStudy, RecoveryRatesDiffer) {
  // Resilience is a spectrum, not a constant: the best and worst stacks
  // must be separated by their recovery rate.
  std::set<long> rates;
  for (const char* prefix : {"Oracle Metro", "Apache CXF", "gSOAP", "Zend", "suds"}) {
    rates.insert(static_cast<long>(aggregate(prefix).recovery_rate()));
  }
  EXPECT_GE(rates.size(), 3u);
}

TEST_F(ChaosStudy, IdempotencyGateShowsInDotNet) {
  // .NET retries resets but refuses to retransmit once the server executed;
  // Metro retransmits blindly and therefore records degraded successes.
  const ChaosCell metro = aggregate("Oracle Metro");
  EXPECT_GT(metro.count(ChaosOutcome::kDegradedOk), 0u);
}

TEST_F(ChaosStudy, AttemptedPlusBlockedCoversAllCalls) {
  for (const ChaosServerResult& server : result().servers) {
    for (const ChaosCell& cell : server.cells) {
      EXPECT_EQ(cell.attempted() + cell.count(ChaosOutcome::kBlockedEarlier),
                server.services_deployed * result().calls_per_pair)
          << server.server << " / " << cell.client;
    }
  }
}

TEST_F(ChaosStudy, ChallengedBoundsHold) {
  for (const ChaosServerResult& server : result().servers) {
    for (const ChaosCell& cell : server.cells) {
      EXPECT_LE(cell.challenged_ok, cell.challenged);
      EXPECT_LE(cell.challenged, cell.attempted());
      EXPECT_LE(cell.challenged, cell.faulted_attempts);
    }
  }
}

TEST_F(ChaosStudy, RendersCoverEveryClient) {
  const std::string text = format_chaos(result());
  const std::string markdown = chaos_markdown(result());
  const std::string csv = chaos_csv(result());
  for (const char* name : {"Oracle Metro", "gSOAP", "suds", "Zend"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(markdown.find(name), std::string::npos) << name;
    EXPECT_NE(csv.find(name), std::string::npos) << name;
  }
  EXPECT_EQ(csv.find("server,client,blocked,ok,recovered"), 0u);
  EXPECT_NE(chaos_recovery_json(result()).find("\"recovery_rate\""), std::string::npos);
}

TEST(ChaosDeterminism, WorkerCountDoesNotChangeTheResult) {
  ChaosConfig config = scaled_config();
  config.plan.seed = 7;
  config.calls_per_pair = 2;
  config.jobs = 1;
  const std::string serial = chaos_csv(run_chaos_study(config));
  config.jobs = 8;
  const std::string parallel = chaos_csv(run_chaos_study(config));
  EXPECT_EQ(serial, parallel);  // byte-identical, not just equal counts
}

TEST(ChaosEquivalence, ZeroFaultRateMatchesTheCommunicationStudy) {
  // With a clean wire the campaign must degenerate to the communication
  // study: same success counts per (server, client) cell, no resilience
  // machinery engaged anywhere.
  ChaosConfig chaos_config = scaled_config();
  chaos_config.plan.rate_percent = 0;
  chaos_config.calls_per_pair = 1;
  const ChaosResult chaos = run_chaos_study(chaos_config);

  interop::StudyConfig comm_config;
  comm_config.java_spec = chaos_config.java_spec;
  comm_config.dotnet_spec = chaos_config.dotnet_spec;
  const interop::CommunicationResult comm = run_communication_study(comm_config);

  ASSERT_EQ(chaos.servers.size(), comm.servers.size());
  for (std::size_t s = 0; s < chaos.servers.size(); ++s) {
    ASSERT_EQ(chaos.servers[s].cells.size(), comm.servers[s].cells.size());
    for (std::size_t c = 0; c < chaos.servers[s].cells.size(); ++c) {
      const ChaosCell& chaos_cell = chaos.servers[s].cells[c];
      const interop::CommCell& comm_cell = comm.servers[s].cells[c];
      ASSERT_EQ(chaos_cell.client, comm_cell.client);
      EXPECT_EQ(chaos_cell.count(ChaosOutcome::kOk),
                comm_cell.count(interop::CommOutcome::kOk))
          << chaos.servers[s].server << " / " << chaos_cell.client;
      EXPECT_EQ(chaos_cell.count(ChaosOutcome::kRecovered), 0u);
      EXPECT_EQ(chaos_cell.count(ChaosOutcome::kDegradedOk), 0u);
      EXPECT_EQ(chaos_cell.count(ChaosOutcome::kExhaustedRetries), 0u);
      EXPECT_EQ(chaos_cell.count(ChaosOutcome::kHung), 0u);
      EXPECT_EQ(chaos_cell.retransmits, 0u);
      EXPECT_EQ(chaos_cell.challenged, 0u);
      EXPECT_EQ(chaos_cell.breaker_trips, 0u);
    }
  }
}

TEST(ChaosOutcomeMeta, Names) {
  EXPECT_STREQ(to_string(ChaosOutcome::kOk), "ok");
  EXPECT_STREQ(to_string(ChaosOutcome::kRecovered), "recovered");
  EXPECT_STREQ(to_string(ChaosOutcome::kHung), "hung");
  EXPECT_STREQ(to_string(ChaosOutcome::kFailedFast), "failed fast");
}

}  // namespace
}  // namespace wsx::chaos
