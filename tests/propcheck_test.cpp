// Tests for the propcheck campaign (src/gen/campaign.*, supervised.*,
// bridge.*): the validity and stability properties on a clean corpus, the
// injected schema-violation bug being found and shrunk to a minimal
// counterexample (the ISSUE's acceptance criterion), the config
// fingerprint round-trip, supervised trip/resume byte-identity, deadline
// quarantine folding, and the rate-0 wire transparency bridge to chaos.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/fault.hpp"
#include "chaos/wire.hpp"
#include "compilers/compiler.hpp"
#include "gen/bridge.hpp"
#include "gen/campaign.hpp"
#include "common/json.hpp"
#include "gen/supervised.hpp"
#include "resilience/journal.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

/// A deliberately tiny population: the campaign runs several times below.
gen::GenConfig tiny_gen() {
  gen::GenConfig config;
  config.java_spec.plain_beans = 4;
  config.java_spec.throwable_clean = 1;
  config.java_spec.no_default_ctor = 1;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.dotnet_spec.plain_types = 4;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.non_serializable = 1;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;
  config.corpus.cases_per_operation = 2;
  config.jobs = 2;
  return config;
}

struct ScratchJournal {
  std::string path;
  explicit ScratchJournal(const std::string& name)
      : path(::testing::TempDir() + "wsx_propcheck_" + name + ".journal") {
    std::remove(path.c_str());
  }
  ~ScratchJournal() { std::remove(path.c_str()); }
  std::string read() const {
    std::ifstream file(path);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return buffer.str();
  }
};

// -------------------------------------------------------------- properties

TEST(Propcheck, ValidModeUpholdsBothProperties) {
  // The acceptance property: every generated request passes XSD validation
  // and classifies exactly like the pair's baseline.
  const gen::PropcheckResult result = gen::run_propcheck(tiny_gen());
  EXPECT_GT(result.total(gen::PropOutcome::kPass), 0u);
  EXPECT_EQ(result.total(gen::PropOutcome::kInvalidValue), 0u);
  EXPECT_EQ(result.total(gen::PropOutcome::kMismatch), 0u);
  EXPECT_EQ(result.total_failures(), 0u);
}

TEST(Propcheck, SabotageModeFindsAndShrinksTheInjectedBug) {
  // The injected schema-violation bug: sabotage draws values outside the
  // contract, the validity property must catch every detectable one, and
  // the shrinker must hand back a counterexample no larger than the
  // original failing payload.
  gen::GenConfig config = tiny_gen();
  config.corpus.sabotage = true;
  const gen::PropcheckResult result = gen::run_propcheck(config);
  EXPECT_GT(result.total(gen::PropOutcome::kInvalidValue), 0u);
  ASSERT_GT(result.total_failures(), 0u);
  bool shrunk_one = false;
  for (const gen::PropServerResult& server : result.servers) {
    for (const gen::PropCell& cell : server.cells) {
      for (const gen::PropFailure& failure : cell.failures) {
        EXPECT_EQ(failure.kind, "invalid-value");
        EXPECT_FALSE(failure.detail.empty());
        EXPECT_FALSE(failure.payload.empty());
        if (!failure.shrunk.empty()) {
          EXPECT_LE(failure.shrunk.size(), failure.payload.size());
          shrunk_one = true;
        }
      }
    }
  }
  EXPECT_TRUE(shrunk_one);
}

TEST(Propcheck, ReportsSurfaceTheCounterexamples) {
  gen::GenConfig config = tiny_gen();
  config.corpus.sabotage = true;
  const gen::PropcheckResult result = gen::run_propcheck(config);
  const std::string text = gen::format_propcheck(result, /*with_shrink=*/true);
  EXPECT_NE(text.find("Counterexamples"), std::string::npos);
  EXPECT_NE(text.find("replay:"), std::string::npos);
  EXPECT_NE(text.find(gen::replay_command(config.corpus)), std::string::npos);
  Result<json::Value> parsed = json::parse(gen::propcheck_json(result));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_TRUE(parsed->find("servers") != nullptr);
}

TEST(Propcheck, WorkerCountDoesNotChangeTheResult) {
  gen::GenConfig config = tiny_gen();
  config.jobs = 1;
  const std::string single = gen::propcheck_json(gen::run_propcheck(config));
  config.jobs = 8;
  const std::string parallel = gen::propcheck_json(gen::run_propcheck(config));
  EXPECT_EQ(single, parallel);
}

// ------------------------------------------------------ config fingerprint

TEST(ConfigFingerprint, GenRoundTrips) {
  gen::GenConfig config = tiny_gen();
  config.corpus.seed = 99;
  config.corpus.max_depth = 3;
  config.corpus.sabotage = true;
  config.shrink = false;
  config.parse_cache = false;
  const std::string json = gen::gen_config_json(config);
  Result<gen::GenConfig> parsed = gen::gen_config_from_json(json);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(gen::gen_config_json(*parsed), json);
  EXPECT_FALSE(gen::gen_config_from_json("not json").ok());
}

// --------------------------------------------------------------- supervised

TEST(SupervisedPropcheck, FullCoverageMatchesLegacyReport) {
  const gen::GenConfig config = tiny_gen();
  const gen::PropcheckResult legacy = gen::run_propcheck(config);
  Result<gen::SupervisedGenResult> supervised = gen::run_propcheck_supervised(config, {});
  ASSERT_TRUE(supervised.ok()) << supervised.error().message;
  EXPECT_EQ(gen::propcheck_json(supervised->propcheck), gen::propcheck_json(legacy));
}

TEST(SupervisedPropcheck, InterruptedRunResumesByteIdentically) {
  const gen::GenConfig config = tiny_gen();
  ScratchJournal scratch("resume");
  gen::SupervisedGenOptions base;
  base.journal.checkpoint_every = 3;

  Result<gen::SupervisedGenResult> uninterrupted =
      gen::run_propcheck_supervised(config, base);
  ASSERT_TRUE(uninterrupted.ok());

  gen::SupervisedGenOptions interrupted = base;
  interrupted.checkpoint_path = scratch.path;
  interrupted.trip_after_tasks = 4;
  ASSERT_TRUE(gen::run_propcheck_supervised(config, interrupted).ok());

  Result<resilience::Journal> journal = resilience::Journal::parse(scratch.read());
  ASSERT_TRUE(journal.ok()) << journal.error().message;
  EXPECT_EQ(journal->campaign, "propcheck");
  Result<gen::GenConfig> rederived = gen::gen_config_from_json(journal->config_json);
  ASSERT_TRUE(rederived.ok()) << rederived.error().message;
  rederived->jobs = 8;  // resume at a different worker count
  gen::SupervisedGenOptions resumed = base;
  resumed.checkpoint_path = scratch.path;
  resumed.resume = &journal.value();
  Result<gen::SupervisedGenResult> finished =
      gen::run_propcheck_supervised(*rederived, resumed);
  ASSERT_TRUE(finished.ok()) << finished.error().message;
  EXPECT_EQ(gen::propcheck_json(finished->propcheck),
            gen::propcheck_json(uninterrupted->propcheck));
}

TEST(SupervisedPropcheck, DeadlineQuarantineFoldsAsTimedOutOutcome) {
  const gen::GenConfig config = tiny_gen();
  gen::SupervisedGenOptions options;
  // Live pairs charge kCaseCostMs per wire call; a 1 ms deadline is
  // impossible, so those services quarantine and fold as kTimedOut for
  // their whole corpus.
  options.journal.task_deadline_ms = 1;
  options.journal.quarantine_after = 2;
  Result<gen::SupervisedGenResult> supervised =
      gen::run_propcheck_supervised(config, options);
  ASSERT_TRUE(supervised.ok());
  EXPECT_GT(supervised->supervisor.quarantined, 0u);
  EXPECT_GT(supervised->propcheck.total(gen::PropOutcome::kTimedOut), 0u);
  EXPECT_NE(gen::format_propcheck(supervised->propcheck, false).find("timed-out"),
            std::string::npos);
}

// ------------------------------------------------------------------ bridge

TEST(PropcheckBridge, RateZeroWireIsTransparentToTheCorpus) {
  // A schema-valid corpus replayed over a clean FaultyWire must classify
  // byte-for-byte like the direct communication path.
  const auto server = frameworks::make_server("Metro 2.3");
  chaos::FaultPlan clean;
  clean.rate_percent = 0;
  const chaos::FaultyWire wire(*server, clean);
  const auto compiler = compilers::make_compiler(code::Language::kJava);
  const auto clients = frameworks::make_clients();
  const frameworks::ClientFramework& client = *clients.front();

  std::size_t compared = 0;
  gen::CorpusOptions options;
  options.cases_per_operation = 2;
  const catalog::TypeCatalog catalog =
      catalog::make_java_catalog(wsx::testing::small_java_spec());
  for (const wsx::testing::SeededService& seeded :
       wsx::testing::seeded_corpus(*server, catalog, options)) {
    for (const gen::GeneratedCase& generated : seeded.corpus) {
      const frameworks::PreparedCall call = frameworks::prepare_call(
          seeded.service, seeded.description, client, compiler.get(),
          &generated.payload);
      if (call.status != frameworks::PreparedCall::Status::kReady) continue;
      const gen::WireEquivalence equivalence = gen::check_wire_equivalence(
          wire, *server, seeded.service, call, generated.case_id);
      ASSERT_TRUE(equivalence.delivered) << generated.case_id;
      EXPECT_TRUE(equivalence.identical) << generated.case_id;
      ++compared;
    }
  }
  EXPECT_GT(compared, 20u);
}

TEST(PropcheckBridge, LayeredFaultBreaksAValidRequest) {
  // Wire faults layered on a schema-valid generated request: the fault-free
  // classification is kOk, the corrupted one is not — the chaos study's
  // adversarial surface now starts from generated inputs.
  const auto server = frameworks::make_server("Metro 2.3");
  const frameworks::DeployedService service = wsx::testing::deploy_one(
      "Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
  const frameworks::SharedDescription description =
      frameworks::SharedDescription::from_deployed(service, /*with_wsi=*/false);
  const auto compiler = compilers::make_compiler(code::Language::kJava);
  const auto clients = frameworks::make_clients();
  const frameworks::ClientFramework& client = *clients.front();

  gen::CorpusOptions options;
  options.cases_per_operation = 1;
  const std::vector<gen::GeneratedCase> corpus = gen::generate_corpus(service, options);
  ASSERT_FALSE(corpus.empty());
  const frameworks::PreparedCall call = frameworks::prepare_call(
      service, description, client, compiler.get(), &corpus.front().payload);
  ASSERT_EQ(call.status, frameworks::PreparedCall::Status::kReady);

  const frameworks::EchoClassification direct = frameworks::classify_echo_response(
      server->handle_http(service, call.request), call.payload);
  EXPECT_EQ(direct.outcome, frameworks::EchoOutcome::kOk);

  const soap::HttpRequest corrupted = gen::corrupt_request_body(
      call.request, chaos::FaultKind::kTruncatedBody, /*salt=*/1);
  const frameworks::EchoClassification broken = frameworks::classify_echo_response(
      server->handle_http(service, corrupted), call.payload);
  EXPECT_NE(broken.outcome, frameworks::EchoOutcome::kOk);
}

}  // namespace
}  // namespace wsx
