// Differential tests: the streaming SOAP envelope path (pull tokenizer,
// soap/stream_frame.hpp) against the DOM path (--no-stream). The two are
// one scanner with two consumers, and these tests pin the contract that
// makes the escape hatch safe: identical envelope models, identical
// errors, identical validation verdicts on every input.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/java_catalog.hpp"
#include "frameworks/invocation.hpp"
#include "frameworks/registry.hpp"
#include "soap/envelope.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"
#include "soap/version.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

/// Restores the default (streaming on) no matter how a test exits.
struct StreamingGuard {
  ~StreamingGuard() { soap::set_streaming(true); }
};

/// Owning, comparable digest of a parse outcome. Serialization covers the
/// whole model (headers, body, fault rebuild), so two equal snapshots mean
/// the two paths produced the same envelope.
struct Snapshot {
  bool ok = false;
  std::string error_code;
  std::string error_message;
  std::string version;
  std::size_t header_count = 0;
  bool is_fault = false;
  soap::Fault fault;
  bool must_understand = false;
  std::string serialized;

  bool operator==(const Snapshot& other) const = default;
};

Snapshot parse_with(bool streaming, std::string_view text) {
  StreamingGuard guard;
  soap::set_streaming(streaming);
  Result<soap::Envelope> envelope = soap::parse(text);
  Snapshot snap;
  snap.ok = envelope.ok();
  if (!envelope.ok()) {
    snap.error_code = envelope.error().code;
    snap.error_message = envelope.error().message;
    return snap;
  }
  snap.version = to_string(envelope->version());
  snap.header_count = envelope->header_entries().size();
  snap.is_fault = envelope->is_fault();
  if (envelope->is_fault()) snap.fault = envelope->fault();
  snap.must_understand = envelope->has_must_understand_headers();
  snap.serialized = soap::write(*envelope);
  return snap;
}

/// Asserts DOM/stream equivalence and returns the streaming outcome for
/// further, input-specific assertions.
Snapshot expect_equivalent(const std::string& text) {
  const Snapshot stream = parse_with(true, text);
  const Snapshot dom = parse_with(false, text);
  EXPECT_EQ(stream, dom) << "input:\n" << text;
  return stream;
}

const char* kSoap11 = "http://schemas.xmlsoap.org/soap/envelope/";
const char* kSoap12 = "http://www.w3.org/2003/05/soap-envelope";

std::string envelope_text(const std::string& ns, const std::string& inner) {
  return "<soapenv:Envelope xmlns:soapenv=\"" + ns + "\">" + inner +
         "</soapenv:Envelope>";
}

TEST(StreamEquivalence, MinimalRequestEnvelope) {
  const Snapshot snap = expect_equivalent(
      envelope_text(kSoap11, "<soapenv:Body><echo xmlns=\"urn:echo\">"
                             "<arg0>hi</arg0></echo></soapenv:Body>"));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_EQ(snap.version, "SOAP 1.1");
  EXPECT_FALSE(snap.is_fault);
}

TEST(StreamEquivalence, Soap12Envelope) {
  const Snapshot snap = expect_equivalent(
      envelope_text(kSoap12, "<soapenv:Body><ping/></soapenv:Body>"));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_EQ(snap.version, "SOAP 1.2");
}

TEST(StreamEquivalence, HeaderEntriesSurviveInOrder) {
  const Snapshot snap = expect_equivalent(envelope_text(
      kSoap11,
      "<soapenv:Header><h:first xmlns:h=\"urn:h\" soapenv:mustUnderstand=\"1\">"
      "<h:inner>x</h:inner></h:first><h:second xmlns:h=\"urn:h\"/>"
      "</soapenv:Header><soapenv:Body><op/></soapenv:Body>"));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_EQ(snap.header_count, 2u);
  EXPECT_TRUE(snap.must_understand);
}

TEST(StreamEquivalence, BodyBeforeHeaderStillFindsBoth) {
  const Snapshot snap = expect_equivalent(envelope_text(
      kSoap11, "<soapenv:Body><op/></soapenv:Body>"
               "<soapenv:Header><h xmlns=\"urn:h\"/></soapenv:Header>"));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_EQ(snap.header_count, 1u);
}

TEST(StreamEquivalence, OnlyFirstBodyPayloadIsKept) {
  const Snapshot snap = expect_equivalent(envelope_text(
      kSoap11, "<soapenv:Body><first><in>1</in></first><second/><third/>"
               "</soapenv:Body>"));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_NE(snap.serialized.find("first"), std::string::npos);
  EXPECT_EQ(snap.serialized.find("second"), std::string::npos);
}

TEST(StreamEquivalence, DuplicateHeaderAndBodyElements) {
  expect_equivalent(envelope_text(
      kSoap11, "<soapenv:Header><a/></soapenv:Header>"
               "<soapenv:Header><b/></soapenv:Header>"
               "<soapenv:Body><op/></soapenv:Body>"
               "<soapenv:Body><other/></soapenv:Body>"));
}

TEST(StreamEquivalence, UnprefixedEnvelopeWithDefaultNamespace) {
  expect_equivalent("<Envelope xmlns=\"" + std::string(kSoap11) +
                    "\"><Body><op/></Body></Envelope>");
}

TEST(StreamEquivalence, UnusualPrefixesAndMixedContent) {
  expect_equivalent(
      "<?xml version=\"1.0\"?><!--lead--><e:Envelope xmlns:e=\"" +
      std::string(kSoap11) +
      "\">\n  <!--x--><?pi data?><e:Body> text <pay:load xmlns:pay=\"urn:p\">"
      "<![CDATA[raw & <unescaped>]]>and &amp; entities</pay:load> tail "
      "</e:Body>\n</e:Envelope><!--trail-->");
}

TEST(StreamEquivalence, FaultEnvelopesRebuildIdentically) {
  for (soap::SoapVersion version : {soap::SoapVersion::k11, soap::SoapVersion::k12}) {
    const soap::Envelope fault = soap::Envelope::make_fault(
        soap::Fault{"soap:Client", "bad things & worse", "detail <text>"}, version);
    const Snapshot snap = expect_equivalent(soap::write(fault));
    ASSERT_TRUE(snap.ok) << snap.error_message;
    EXPECT_TRUE(snap.is_fault);
    // The 1.2 shape renames the code (Client → Sender) and qualifies it.
    EXPECT_EQ(snap.fault.fault_code,
              version == soap::SoapVersion::k11 ? "soap:Client" : "soapenv:Sender");
    EXPECT_EQ(snap.fault.fault_string, "bad things & worse");
    EXPECT_EQ(snap.fault.detail, "detail <text>");
  }
}

TEST(StreamEquivalence, HybridEnvelopesRebuildIdentically) {
  // The mixed-version axis shapes (docs/VERSIONS.md): a 1.1 envelope in
  // each hybrid profile must round-trip through both paths to the same
  // model — same header count, same mustUnderstand verdict, same bytes —
  // and the rebuilt envelope must inspect to the same coherence summary.
  soap::Envelope base(xml::Element("pay:echo"), soap::SoapVersion::k11);
  for (const soap::HybridProfile profile :
       {soap::HybridProfile::kPure11, soap::HybridProfile::kAddressing,
        soap::HybridProfile::kSecured}) {
    soap::Envelope hybrid = base;
    soap::apply_hybrid_profile(hybrid, profile, "echo");
    const Snapshot snap = expect_equivalent(soap::write(hybrid));
    ASSERT_TRUE(snap.ok) << snap.error_message;
    EXPECT_EQ(snap.header_count, hybrid.header_entries().size());
    EXPECT_EQ(snap.must_understand, profile == soap::HybridProfile::kSecured);

    StreamingGuard guard;
    for (const bool streaming : {true, false}) {
      soap::set_streaming(streaming);
      Result<soap::Envelope> reparsed = soap::parse(soap::write(hybrid));
      ASSERT_TRUE(reparsed.ok());
      const soap::VersionCoherence coherence = soap::inspect_coherence(*reparsed);
      EXPECT_EQ(coherence.has_12_era_headers, profile != soap::HybridProfile::kPure11);
      EXPECT_EQ(coherence.has_12_era_mu_headers,
                profile == soap::HybridProfile::kSecured);
      EXPECT_FALSE(coherence.has_unknown_mu_headers);
    }
  }
}

TEST(StreamEquivalence, Soap12EnvelopeWithHeadersRebuildsIdentically) {
  soap::Envelope envelope(xml::Element("pay:echo"), soap::SoapVersion::k12);
  soap::apply_hybrid_profile(envelope, soap::HybridProfile::kAddressing, "echo");
  const Snapshot snap = expect_equivalent(soap::write(envelope));
  ASSERT_TRUE(snap.ok) << snap.error_message;
  EXPECT_EQ(snap.version, "SOAP 1.2");
  EXPECT_EQ(snap.header_count, envelope.header_entries().size());
}

TEST(StreamEquivalence, SemanticErrorsMatch) {
  // One input per soap.* verdict, plus assorted near-misses.
  const Snapshot not_envelope = expect_equivalent("<root/>");
  EXPECT_EQ(not_envelope.error_code, "soap.not-an-envelope");
  const Snapshot bad_ns = expect_equivalent(
      envelope_text("urn:not-soap", "<soapenv:Body><op/></soapenv:Body>"));
  EXPECT_EQ(bad_ns.error_code, "soap.version-mismatch");
  const Snapshot no_body = expect_equivalent(
      envelope_text(kSoap11, "<soapenv:Header><h/></soapenv:Header>"));
  EXPECT_EQ(no_body.error_code, "soap.missing-body");
  const Snapshot empty_body = expect_equivalent(
      envelope_text(kSoap11, "<soapenv:Body> just text </soapenv:Body>"));
  EXPECT_EQ(empty_body.error_code, "soap.empty-body");
  // An Envelope local name under no namespace at all.
  expect_equivalent("<Envelope><Body><op/></Body></Envelope>");
}

TEST(StreamEquivalence, XmlErrorsOutrankSemanticOnes) {
  // The malformed tail sits after a complete-looking frame; both paths
  // must still report the xml.* error, not a soap.* verdict.
  const Snapshot snap = expect_equivalent(
      envelope_text(kSoap11, "<soapenv:Body><op/></soapenv:Body><bad>"));
  EXPECT_EQ(snap.error_code, "xml.mismatched-tag");
  const Snapshot truncated = expect_equivalent(
      "<soapenv:Envelope xmlns:soapenv=\"" + std::string(kSoap11) +
      "\"><soapenv:Body><op/></soapenv:Body>");
  EXPECT_EQ(truncated.error_code, "xml.unterminated-element");
  const Snapshot garbage = expect_equivalent("not xml at all");
  EXPECT_EQ(garbage.error_code, "xml.expected-element");
}

TEST(StreamEquivalence, RealFrameworkTrafficRoundTrips) {
  const frameworks::DeployedService& service = wsx::testing::deploy_one(
      "Metro 2.3", catalog::java_names::kXmlGregorianCalendar);
  const auto server = frameworks::make_server("Metro 2.3");
  for (const std::string payload : {"ping", "with & entity", "<angle>", ""}) {
    Result<soap::Envelope> request =
        soap::build_request(service.wsdl, "echo", {{"arg0", payload}});
    ASSERT_TRUE(request.ok());
    const std::string request_text = soap::write(*request);
    expect_equivalent(request_text);
    const soap::HttpResponse response = server->handle_http(
        service, soap::make_soap_request("http://localhost/echo", "", request_text));
    expect_equivalent(response.body);
  }
}

// --- validate_request_text: the zero-DOM sniffer ------------------------

/// Comparable digest of the sniffer outcome.
struct VerdictSnapshot {
  bool ok = false;
  std::string error_code;
  std::vector<soap::ValidationIssue> issues;

  bool operator==(const VerdictSnapshot& other) const = default;
};

VerdictSnapshot sniff_with(bool streaming, const wsdl::Definitions& defs,
                           const std::string& text) {
  StreamingGuard guard;
  soap::set_streaming(streaming);
  Result<std::vector<soap::ValidationIssue>> issues =
      soap::validate_request_text(defs, text);
  VerdictSnapshot snap;
  snap.ok = issues.ok();
  if (issues.ok()) {
    snap.issues = issues.value();
  } else {
    snap.error_code = issues.error().code;
  }
  return snap;
}

/// The historical reference: parse the DOM, then validate the model.
VerdictSnapshot parse_then_validate(const wsdl::Definitions& defs,
                                    const std::string& text) {
  StreamingGuard guard;
  soap::set_streaming(false);
  Result<soap::Envelope> envelope = soap::parse(text);
  VerdictSnapshot snap;
  snap.ok = envelope.ok();
  if (!envelope.ok()) {
    snap.error_code = envelope.error().code;
    return snap;
  }
  snap.issues = soap::validate_request(defs, *envelope);
  return snap;
}

VerdictSnapshot expect_sniffer_equivalent(const wsdl::Definitions& defs,
                                          const std::string& text) {
  const VerdictSnapshot stream = sniff_with(true, defs, text);
  const VerdictSnapshot fallback = sniff_with(false, defs, text);
  const VerdictSnapshot reference = parse_then_validate(defs, text);
  EXPECT_EQ(stream, reference) << "input:\n" << text;
  EXPECT_EQ(fallback, reference) << "input:\n" << text;
  return stream;
}

std::string echo_request(const std::string& body_inner) {
  return envelope_text(kSoap11, "<soapenv:Body>" + body_inner + "</soapenv:Body>");
}

TEST(StreamEquivalence, SnifferAcceptsAValidRequest) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot snap = expect_sniffer_equivalent(
      defs, echo_request("<e:echo xmlns:e=\"urn:echo\"><arg0>v</arg0></e:echo>"));
  ASSERT_TRUE(snap.ok);
  EXPECT_TRUE(snap.issues.empty());
}

TEST(StreamEquivalence, SnifferFlagsUnknownOperation) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot snap = expect_sniffer_equivalent(
      defs, echo_request("<nope xmlns=\"urn:echo\"/>"));
  ASSERT_TRUE(snap.ok);
  ASSERT_EQ(snap.issues.size(), 1u);
  EXPECT_EQ(snap.issues[0].code, "msg.unknown-operation");
}

TEST(StreamEquivalence, SnifferFlagsUnexpectedAndMissingArguments) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot snap = expect_sniffer_equivalent(
      defs,
      echo_request("<e:echo xmlns:e=\"urn:echo\"><bogus>1</bogus></e:echo>"));
  ASSERT_TRUE(snap.ok);
  std::vector<std::string> codes;
  for (const soap::ValidationIssue& issue : snap.issues) codes.push_back(issue.code);
  EXPECT_EQ(codes, (std::vector<std::string>{"msg.unexpected-argument",
                                             "msg.missing-argument"}));
}

TEST(StreamEquivalence, SnifferFlagsFaultRequests) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot snap = expect_sniffer_equivalent(
      defs, soap::write(soap::Envelope::make_fault(
                soap::Fault{"soap:Server", "boom", ""})));
  ASSERT_TRUE(snap.ok);
  ASSERT_EQ(snap.issues.size(), 1u);
  EXPECT_EQ(snap.issues[0].code, "msg.fault-request");
}

TEST(StreamEquivalence, SnifferPropagatesParseErrors) {
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot malformed = expect_sniffer_equivalent(
      defs, echo_request("<e:echo xmlns:e=\"urn:echo\"><arg0></e:echo>"));
  EXPECT_FALSE(malformed.ok);
  EXPECT_EQ(malformed.error_code, "xml.mismatched-tag");
  const VerdictSnapshot not_soap = expect_sniffer_equivalent(defs, "<just-xml/>");
  EXPECT_FALSE(not_soap.ok);
  EXPECT_EQ(not_soap.error_code, "soap.not-an-envelope");
}

TEST(StreamEquivalence, SnifferIgnoresHeadersAndNestedPayloadContent) {
  // Header entries and sub-child levels must not influence the verdict on
  // either path: only the payload's direct children are validated.
  const wsdl::Definitions defs = wsx::testing::compliant_echo_definitions();
  const VerdictSnapshot snap = expect_sniffer_equivalent(
      defs,
      envelope_text(kSoap11,
                    "<soapenv:Header><e:echo xmlns:e=\"urn:echo\"><wrong/>"
                    "</e:echo></soapenv:Header><soapenv:Body>"
                    "<e:echo xmlns:e=\"urn:echo\"><arg0><deep><deeper/></deep>"
                    "</arg0></e:echo></soapenv:Body>"));
  ASSERT_TRUE(snap.ok);
  EXPECT_TRUE(snap.issues.empty());
}

TEST(StreamEquivalence, SeededCorpusTrafficIsEquivalentOnBothPaths) {
  // Generated request corpora for a whole small catalog: every request and
  // every server response parses identically with streaming on and off.
  const auto server = frameworks::make_server("Metro 2.3");
  const catalog::TypeCatalog catalog =
      catalog::make_java_catalog(wsx::testing::small_java_spec());
  gen::CorpusOptions options;
  options.cases_per_operation = 2;
  std::size_t checked = 0;
  for (const wsx::testing::SeededService& seeded :
       wsx::testing::seeded_corpus(*server, catalog, options)) {
    for (const gen::GeneratedCase& generated : seeded.corpus) {
      Result<soap::Envelope> request =
          generated.payload.fields.empty()
              ? soap::build_request(seeded.service.wsdl, generated.operation,
                                    {{"arg0", generated.payload.value}})
              : soap::build_structured_request(seeded.service.wsdl,
                                               generated.operation,
                                               generated.payload.fields);
      if (!request.ok()) continue;
      const std::string request_text = soap::write(*request);
      expect_equivalent(request_text);
      const soap::HttpResponse response = server->handle_http(
          seeded.service,
          soap::make_soap_request("http://localhost/echo", "", request_text));
      expect_equivalent(response.body);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

}  // namespace
}  // namespace wsx
