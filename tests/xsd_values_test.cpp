// Tests for lexical value validation (src/xsd/values.*) and the typed
// unmarshalling path in the execution step.
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "frameworks/registry.hpp"
#include "soap/message.hpp"
#include "xsd/values.hpp"

namespace wsx::xsd {
namespace {

TEST(Values, StringAcceptsAnything) {
  EXPECT_TRUE(is_valid_value(Builtin::kString, ""));
  EXPECT_TRUE(is_valid_value(Builtin::kString, "any <text> at all"));
  EXPECT_TRUE(is_valid_value(Builtin::kAnyType, "likewise"));
}

TEST(Values, BooleanLexicalSpace) {
  for (const char* good : {"true", "false", "1", "0"}) {
    EXPECT_TRUE(is_valid_value(Builtin::kBoolean, good)) << good;
  }
  for (const char* bad : {"TRUE", "yes", "", "2"}) {
    EXPECT_FALSE(is_valid_value(Builtin::kBoolean, bad)) << bad;
  }
}

TEST(Values, IntRangeIsEnforced) {
  EXPECT_TRUE(is_valid_value(Builtin::kInt, "2147483647"));
  EXPECT_TRUE(is_valid_value(Builtin::kInt, "-2147483648"));
  EXPECT_TRUE(is_valid_value(Builtin::kInt, "+42"));
  EXPECT_FALSE(is_valid_value(Builtin::kInt, "2147483648"));
  EXPECT_FALSE(is_valid_value(Builtin::kInt, "12.5"));
  EXPECT_FALSE(is_valid_value(Builtin::kInt, "twelve"));
  EXPECT_FALSE(is_valid_value(Builtin::kInt, ""));
}

TEST(Values, NarrowIntegerTypes) {
  EXPECT_TRUE(is_valid_value(Builtin::kByte, "-128"));
  EXPECT_FALSE(is_valid_value(Builtin::kByte, "128"));
  EXPECT_TRUE(is_valid_value(Builtin::kShort, "32767"));
  EXPECT_FALSE(is_valid_value(Builtin::kShort, "40000"));
  EXPECT_TRUE(is_valid_value(Builtin::kUnsignedByte, "255"));
  EXPECT_FALSE(is_valid_value(Builtin::kUnsignedByte, "-1"));
  EXPECT_TRUE(is_valid_value(Builtin::kUnsignedLong, "18446744073709551615"));
  EXPECT_FALSE(is_valid_value(Builtin::kUnsignedLong, "18446744073709551616"));
}

TEST(Values, UnboundedIntegerType) {
  EXPECT_TRUE(is_valid_value(Builtin::kInteger, "99999999999999999999999999"));
  EXPECT_FALSE(is_valid_value(Builtin::kInteger, "1e3"));
}

TEST(Values, FloatLexicalSpace) {
  for (const char* good : {"1", "-1.5", "+0.25", "1e10", "2.5E-3", "NaN", "INF", "-INF"}) {
    EXPECT_TRUE(is_valid_value(Builtin::kFloat, good)) << good;
  }
  for (const char* bad : {"", ".", "1e", "e5", "1.2.3", "inf"}) {
    EXPECT_FALSE(is_valid_value(Builtin::kDouble, bad)) << bad;
  }
}

TEST(Values, DecimalExcludesExponentAndSpecials) {
  EXPECT_TRUE(is_valid_value(Builtin::kDecimal, "-12.34"));
  EXPECT_FALSE(is_valid_value(Builtin::kDecimal, "1e5"));
  EXPECT_FALSE(is_valid_value(Builtin::kDecimal, "NaN"));
}

TEST(Values, DateTimeLexicalSpace) {
  EXPECT_TRUE(is_valid_value(Builtin::kDate, "2014-06-23"));
  EXPECT_FALSE(is_valid_value(Builtin::kDate, "2014-13-01"));
  EXPECT_FALSE(is_valid_value(Builtin::kDate, "23-06-2014"));
  EXPECT_TRUE(is_valid_value(Builtin::kTime, "09:30:00"));
  EXPECT_TRUE(is_valid_value(Builtin::kTime, "09:30:00.125"));
  EXPECT_FALSE(is_valid_value(Builtin::kTime, "25:00:00"));
  EXPECT_TRUE(is_valid_value(Builtin::kDateTime, "2014-06-23T09:30:00"));
  EXPECT_TRUE(is_valid_value(Builtin::kDateTime, "2014-06-23T09:30:00Z"));
  EXPECT_FALSE(is_valid_value(Builtin::kDateTime, "2014-06-23 09:30:00"));
}

TEST(Values, BinaryLexicalSpaces) {
  EXPECT_TRUE(is_valid_value(Builtin::kBase64Binary, "SGVsbG8="));
  EXPECT_TRUE(is_valid_value(Builtin::kBase64Binary, "AAAA"));
  EXPECT_FALSE(is_valid_value(Builtin::kBase64Binary, "SGV!bG8="));
  EXPECT_FALSE(is_valid_value(Builtin::kBase64Binary, "AAA"));
  EXPECT_TRUE(is_valid_value(Builtin::kHexBinary, "DEADbeef"));
  EXPECT_FALSE(is_valid_value(Builtin::kHexBinary, "DEADBEE"));
  EXPECT_FALSE(is_valid_value(Builtin::kHexBinary, "XY"));
}

TEST(Values, DurationAndQName) {
  EXPECT_TRUE(is_valid_value(Builtin::kDuration, "P1DT2H"));
  EXPECT_TRUE(is_valid_value(Builtin::kDuration, "-P3M"));
  EXPECT_FALSE(is_valid_value(Builtin::kDuration, "1D"));
  EXPECT_TRUE(is_valid_value(Builtin::kQNameType, "tns:Point"));
  EXPECT_FALSE(is_valid_value(Builtin::kQNameType, "has space"));
}

TEST(Values, EnumerationFacet) {
  SimpleTypeDecl color;
  color.base = qname(Builtin::kString);
  color.enumeration = {"RED", "GREEN"};
  EXPECT_TRUE(is_valid_value(color, "RED"));
  EXPECT_FALSE(is_valid_value(color, "BLUE"));
  // Base lexical check applies first.
  SimpleTypeDecl level;
  level.base = qname(Builtin::kInt);
  level.enumeration = {"1", "2"};
  EXPECT_TRUE(is_valid_value(level, "1"));
  EXPECT_FALSE(is_valid_value(level, "one"));
}

TEST(Values, LengthFacets) {
  SimpleTypeDecl code;
  code.base = qname(Builtin::kString);
  code.min_length = 2;
  code.max_length = 4;
  EXPECT_FALSE(is_valid_value(code, "a"));
  EXPECT_TRUE(is_valid_value(code, "ab"));
  EXPECT_TRUE(is_valid_value(code, "abcd"));
  EXPECT_FALSE(is_valid_value(code, "abcde"));
}

TEST(Values, TotalDigitsFacet) {
  SimpleTypeDecl pin;
  pin.base = qname(Builtin::kInt);
  pin.total_digits = 3;
  EXPECT_TRUE(is_valid_value(pin, "999"));
  EXPECT_TRUE(is_valid_value(pin, "-42"));
  EXPECT_FALSE(is_valid_value(pin, "1000"));
}

TEST(Values, PatternFacet) {
  SimpleTypeDecl sku;
  sku.base = qname(Builtin::kString);
  sku.pattern = "[A-Z]{2}\\d{3}";
  EXPECT_TRUE(is_valid_value(sku, "AB123"));
  EXPECT_FALSE(is_valid_value(sku, "ab123"));
  EXPECT_FALSE(is_valid_value(sku, "AB1234"));
  // Patterns outside the pattern-lite subset are skipped, not misapplied —
  // the lenient-binder behaviour documented in xsd/values.cpp.
  SimpleTypeDecl lenient;
  lenient.base = qname(Builtin::kString);
  lenient.pattern = "(a|b)+";
  EXPECT_TRUE(is_valid_value(lenient, "anything"));
}

TEST(Values, FacetsComposeWithEnumeration) {
  // All declared facets must hold together: base space, length, pattern,
  // then enumeration membership.
  SimpleTypeDecl state;
  state.base = qname(Builtin::kString);
  state.min_length = 2;
  state.max_length = 2;
  state.pattern = "[A-Z]+";
  state.enumeration = {"CA", "NY", "toolong"};
  EXPECT_TRUE(is_valid_value(state, "CA"));
  EXPECT_FALSE(is_valid_value(state, "WA"));       // off-enumeration
  EXPECT_FALSE(is_valid_value(state, "toolong"));  // enum member, facet-invalid
}

TEST(Values, StatusVariantCarriesMessage) {
  const Status ok = validate_value(Builtin::kInt, "7");
  EXPECT_TRUE(ok.ok());
  const Status bad = validate_value(Builtin::kInt, "x");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "xsd.invalid-value");
  EXPECT_NE(bad.error().message.find("xsd:int"), std::string::npos);
}

TEST(Execution, EnumServiceRejectsOutOfSpaceValues) {
  const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
  const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
  const catalog::TypeInfo* type = catalog.find(catalog::dotnet_names::kSocketError);
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(service.ok());

  Result<soap::Envelope> bad =
      soap::build_request(service->wsdl, "echo", {{"arg0", "NotAnEnumValue"}});
  const soap::Envelope rejected = server->handle_request(*service, *bad);
  ASSERT_TRUE(rejected.is_fault());
  EXPECT_NE(rejected.fault().fault_string.find("unmarshalling error"), std::string::npos);

  Result<soap::Envelope> good =
      soap::build_request(service->wsdl, "echo", {{"arg0", type->enum_values.front()}});
  const soap::Envelope accepted = server->handle_request(*service, *good);
  EXPECT_FALSE(accepted.is_fault());
}

}  // namespace
}  // namespace wsx::xsd
