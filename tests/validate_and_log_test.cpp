// Tests for the message-conformance sniffer (soap/validate.*), the JSON
// emitter (common/json.*) and the per-test observer/log facility.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "interop/study.hpp"
#include "soap/message.hpp"
#include "soap/validate.hpp"
#include "test_helpers.hpp"

namespace wsx {
namespace {

using testing::compliant_echo_definitions;

TEST(Validate, ConformingRequestIsClean) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  Result<soap::Envelope> request = soap::build_request(defs, "echo", {{"arg0", "x"}});
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(soap::validate_request(defs, *request).empty());
}

TEST(Validate, UnknownOperationIsFlagged) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  soap::Envelope bogus{xml::Element{"m:transfer"}};
  const std::vector<soap::ValidationIssue> issues = soap::validate_request(defs, bogus);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().code, "msg.unknown-operation");
}

TEST(Validate, UnexpectedArgumentIsFlagged) {
  // The Zend "uncommon data structure" marshalling: a child element the
  // wrapper never declared.
  const wsdl::Definitions defs = compliant_echo_definitions();
  Result<soap::Envelope> request =
      soap::build_request(defs, "echo", {{"arg0Struct", "x"}});
  ASSERT_TRUE(request.ok());
  const std::vector<soap::ValidationIssue> issues = soap::validate_request(defs, *request);
  ASSERT_EQ(issues.size(), 2u);  // unexpected arg0Struct + missing arg0
  EXPECT_EQ(issues[0].code, "msg.unexpected-argument");
  EXPECT_EQ(issues[1].code, "msg.missing-argument");
}

TEST(Validate, FaultRequestIsFlagged) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  const soap::Envelope fault = soap::Envelope::make_fault({"soap:Client", "x", ""});
  const std::vector<soap::ValidationIssue> issues = soap::validate_request(defs, fault);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().code, "msg.fault-request");
}

TEST(Validate, ConformingResponseIsClean) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  Result<soap::Envelope> response = soap::build_response(defs, "echo", "pong");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(soap::validate_response(defs, "echo", *response).empty());
}

TEST(Validate, WrongResponseWrapperIsFlagged) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  soap::Envelope bogus{xml::Element{"m:otherResponse"}};
  const std::vector<soap::ValidationIssue> issues =
      soap::validate_response(defs, "echo", bogus);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues.front().code, "msg.wrong-response-wrapper");
}

TEST(Validate, FaultResponseIsAlwaysPermitted) {
  const wsdl::Definitions defs = compliant_echo_definitions();
  const soap::Envelope fault = soap::Envelope::make_fault({"soap:Server", "x", ""});
  EXPECT_TRUE(soap::validate_response(defs, "echo", fault).empty());
}

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, ObjectWriterBuildsValidObjects) {
  const std::string object = json::ObjectWriter{}
                                 .field("name", "Echo\"Svc\"")
                                 .field("count", std::size_t{42})
                                 .field("ok", true)
                                 .field("ratio", 0.5)
                                 .raw_field("nested", "{\"a\":1}")
                                 .str();
  EXPECT_EQ(object,
            "{\"name\":\"Echo\\\"Svc\\\"\",\"count\":42,\"ok\":true,"
            "\"ratio\":0.5,\"nested\":{\"a\":1}}");
}

TEST(Json, EmptyObject) { EXPECT_EQ(json::ObjectWriter{}.str(), "{}"); }

TEST(TestLog, RecordsRenderAsJsonLines) {
  interop::TestRecord record;
  record.server = "Metro 2.3";
  record.client = "gSOAP Toolkit 2.8.16";
  record.service = "EchoSimpleDateFormat";
  record.type_name = "java.text.SimpleDateFormat";
  record.description_flagged = true;
  record.generation_error = true;
  const std::string line = interop::to_json_line(record);
  EXPECT_NE(line.find("\"server\":\"Metro 2.3\""), std::string::npos);
  EXPECT_NE(line.find("\"generation_error\":true"), std::string::npos);
  EXPECT_NE(line.find("\"compilation_error\":false"), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

TEST(TestLog, ObserverSeesEveryTest) {
  interop::StudyConfig config;
  config.java_spec.plain_beans = 5;
  config.java_spec.throwable_clean = 1;
  config.java_spec.throwable_raw = 1;
  config.java_spec.raw_generic_beans = 1;
  config.java_spec.anytype_array_beans = 1;
  config.java_spec.no_default_ctor = 1;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.java_spec.generic_types = 1;
  config.dotnet_spec.plain_types = 5;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 1;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 1;
  config.dotnet_spec.no_default_ctor = 1;
  config.dotnet_spec.generic_types = 1;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;

  std::size_t seen = 0;
  std::size_t errors_seen = 0;
  config.observer = [&](const interop::TestRecord& record) {
    ++seen;
    if (record.generation_error || record.compilation_error) ++errors_seen;
    EXPECT_FALSE(record.server.empty());
    EXPECT_FALSE(record.client.empty());
    EXPECT_FALSE(record.service.empty());
  };
  const interop::StudyResult result = interop::run_study(config);
  EXPECT_EQ(seen, result.total_tests());
  EXPECT_GT(errors_seen, 0u);
}

}  // namespace
}  // namespace wsx
