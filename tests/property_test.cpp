// Property-based and parameterized sweeps (TEST_P) over the library's
// invariants: XML round-tripping on generated documents, catalog quota
// invariance across seeds, WSDL round-trips for every special type on
// every server, and campaign invariants across population scales.
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "catalog/name_pool.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/campaign.hpp"
#include "interop/study.hpp"
#include "soap/envelope.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace wsx {
namespace {

// ---------------------------------------------------------------------------
// XML round-trip property: for any generated tree, write → parse == identity.
// ---------------------------------------------------------------------------

class XmlRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

xml::Element random_tree(catalog::Rng& rng, std::size_t depth) {
  static const char* kNames[] = {"alpha", "beta", "gamma", "p:delta", "epsilon"};
  static const char* kValues[] = {"plain", "with <angle>", "amp & co", "quote\"d",
                                  "tab\tand newline\n", "unicode \xC3\xA9"};
  xml::Element element{kNames[rng.below(5)]};
  if (element.prefix() == "p") element.declare_namespace("p", "urn:prop");
  const std::size_t attribute_count = rng.below(3);
  for (std::size_t i = 0; i < attribute_count; ++i) {
    element.set_attribute("a" + std::to_string(i), kValues[rng.below(6)]);
  }
  const std::size_t child_count = depth == 0 ? 0 : rng.below(4);
  for (std::size_t i = 0; i < child_count; ++i) {
    switch (rng.below(3)) {
      case 0:
        element.add_child(random_tree(rng, depth - 1));
        break;
      case 1:
        element.add_text(kValues[rng.below(6)]);
        break;
      default:
        element.add_comment("note");
        break;
    }
  }
  return element;
}

TEST_P(XmlRoundTripProperty, WriteParseIsIdentity) {
  catalog::Rng rng{GetParam()};
  const xml::Element original = random_tree(rng, 4);
  // Compact form: pretty-printing inserts indentation that is part of the
  // text content in mixed-content elements, so identity holds for the
  // compact serialization (which is also the wire form).
  xml::WriteOptions options;
  options.pretty = false;
  const std::string text = xml::write(original, options);
  Result<xml::Element> reparsed = xml::parse_element(text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(xml::write(reparsed.value(), options), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// Catalog properties across seeds: quotas and uniqueness are seed-invariant.
// ---------------------------------------------------------------------------

class CatalogSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CatalogSeedProperty, JavaQuotasAreSeedInvariant) {
  catalog::JavaCatalogSpec spec;
  spec.seed = GetParam();
  const catalog::TypeCatalog catalog = catalog::make_java_catalog(spec);
  EXPECT_EQ(catalog.size(), 3971u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kThrowableDerived), 477u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kRawGenericApi), 243u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kAnyTypeArrayField), 50u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kAsyncApi), 2u);
}

TEST_P(CatalogSeedProperty, DeployabilityCountsAreSeedInvariant) {
  catalog::JavaCatalogSpec spec;
  spec.seed = GetParam();
  const catalog::TypeCatalog catalog = catalog::make_java_catalog(spec);
  const auto servers = frameworks::make_servers();
  std::size_t metro_count = 0;
  std::size_t jboss_count = 0;
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (servers[0]->can_deploy(type)) ++metro_count;
    if (servers[1]->can_deploy(type)) ++jboss_count;
  }
  EXPECT_EQ(metro_count, 2489u);
  EXPECT_EQ(jboss_count, 2248u);
}

TEST_P(CatalogSeedProperty, DotNetQuotasAreSeedInvariant) {
  catalog::DotNetCatalogSpec spec;
  spec.seed = GetParam();
  const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog(spec);
  EXPECT_EQ(catalog.size(), 14082u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kDataSetSchema), 76u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kDeepNesting), 301u);
  EXPECT_EQ(catalog.count_with_trait(catalog::Trait::kCaseCollidingFields), 4u);
  const auto servers = frameworks::make_servers();
  std::size_t wcf_count = 0;
  for (const catalog::TypeInfo& type : catalog.types()) {
    if (servers[2]->can_deploy(type)) ++wcf_count;
  }
  EXPECT_EQ(wcf_count, 2502u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogSeedProperty,
                         ::testing::Values(1u, 7u, 42u, 0xABCDEFu, 0xFFFFFFFFFFFFFFFFull));

// ---------------------------------------------------------------------------
// Fuzzing determinism: the same corpus yields the same report.
// ---------------------------------------------------------------------------

TEST(FuzzDeterminism, RepeatedCampaignsAreIdentical) {
  fuzz::FuzzConfig config;
  config.corpus_per_server = 1;
  const fuzz::FuzzReport a = fuzz::run_fuzz_campaign(config);
  const fuzz::FuzzReport b = fuzz::run_fuzz_campaign(config);
  ASSERT_EQ(a.mutant_count, b.mutant_count);
  for (std::size_t i = 0; i < a.tools.size(); ++i) {
    EXPECT_EQ(a.tools[i].counts, b.tools[i].counts) << a.tools[i].client;
  }
  EXPECT_EQ(a.wsi_detected, b.wsi_detected);
}

// ---------------------------------------------------------------------------
// Envelope round-trip sweep across versions and payload shapes.
// ---------------------------------------------------------------------------

class EnvelopeProperty
    : public ::testing::TestWithParam<std::tuple<soap::SoapVersion, int>> {};

TEST_P(EnvelopeProperty, WireRoundTripPreservesEverything) {
  const auto [version, payload_children] = GetParam();
  xml::Element payload{"m:op"};
  payload.declare_namespace("m", "urn:prop");
  for (int i = 0; i < payload_children; ++i) {
    payload.add_element("m:f" + std::to_string(i)).add_text("v" + std::to_string(i));
  }
  soap::Envelope envelope{payload, version};
  xml::Element header{"h:context"};
  header.declare_namespace("h", "urn:h");
  envelope.add_header(header);

  Result<soap::Envelope> reparsed = soap::parse(soap::write(envelope));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->version(), version);
  EXPECT_EQ(reparsed->header_entries().size(), 1u);
  EXPECT_EQ(reparsed->body().child_elements().size(),
            static_cast<std::size_t>(payload_children));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EnvelopeProperty,
    ::testing::Combine(::testing::Values(soap::SoapVersion::k11, soap::SoapVersion::k12),
                       ::testing::Values(0, 1, 5)));

// ---------------------------------------------------------------------------
// WSDL round-trip for every special type on every compatible server.
// ---------------------------------------------------------------------------

struct SpecialCase {
  const char* server;
  const char* type_name;
};

class SpecialTypeWsdlProperty : public ::testing::TestWithParam<SpecialCase> {};

TEST_P(SpecialTypeWsdlProperty, ServedTextReparsesAndReserializesStably) {
  const SpecialCase param = GetParam();
  const auto server = frameworks::make_server(param.server);
  ASSERT_NE(server, nullptr);
  const bool is_dotnet = server->language() == "C#";
  const catalog::TypeCatalog catalog =
      is_dotnet ? catalog::make_dotnet_catalog() : catalog::make_java_catalog();
  const catalog::TypeInfo* type = catalog.find(param.type_name);
  ASSERT_NE(type, nullptr);
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  ASSERT_TRUE(service.ok());

  Result<wsdl::Definitions> first = wsdl::parse(service->wsdl_text);
  ASSERT_TRUE(first.ok());
  // Reserialize with default options and parse again: the model must be a
  // fixed point (stable schemas, messages, operations).
  Result<wsdl::Definitions> second = wsdl::parse(wsdl::to_string(*first));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->schemas, first->schemas);
  EXPECT_EQ(second->messages, first->messages);
  EXPECT_EQ(second->port_types, first->port_types);
  EXPECT_EQ(second->bindings, first->bindings);
}

INSTANTIATE_TEST_SUITE_P(
    Specials, SpecialTypeWsdlProperty,
    ::testing::Values(
        SpecialCase{"Metro 2.3", "javax.xml.ws.wsaddressing.W3CEndpointReference"},
        SpecialCase{"Metro 2.3", "java.text.SimpleDateFormat"},
        SpecialCase{"Metro 2.3", "javax.xml.datatype.XMLGregorianCalendar"},
        SpecialCase{"Metro 2.3", "org.omg.CORBA.NameValuePair"},
        SpecialCase{"JBossWS CXF 4.2.3", "javax.xml.ws.wsaddressing.W3CEndpointReference"},
        SpecialCase{"JBossWS CXF 4.2.3", "java.text.SimpleDateFormat"},
        SpecialCase{"JBossWS CXF 4.2.3", "java.util.concurrent.Future"},
        SpecialCase{"JBossWS CXF 4.2.3", "javax.xml.ws.Response"},
        SpecialCase{"WCF .NET 4.0.30319.17929", "System.Data.DataTable"},
        SpecialCase{"WCF .NET 4.0.30319.17929", "System.Data.DataTableCollection"},
        SpecialCase{"WCF .NET 4.0.30319.17929", "System.Data.DataView"},
        SpecialCase{"WCF .NET 4.0.30319.17929", "System.Net.Sockets.SocketError"},
        SpecialCase{"WCF .NET 4.0.30319.17929", "System.Web.UI.WebControls.Label"}),
    [](const ::testing::TestParamInfo<SpecialCase>& info) {
      std::string name = std::string(info.param.server) + "_" + info.param.type_name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Campaign invariants across population scales.
// ---------------------------------------------------------------------------

class CampaignScaleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CampaignScaleProperty, StructuralInvariantsHoldAtEveryScale) {
  const std::size_t scale = GetParam();
  interop::StudyConfig config;
  config.java_spec.plain_beans = 10 * scale;
  config.java_spec.throwable_clean = 2 * scale;
  config.java_spec.throwable_raw = scale;
  config.java_spec.raw_generic_beans = scale;
  config.java_spec.anytype_array_beans = scale;
  config.java_spec.no_default_ctor = 2 * scale;
  config.java_spec.abstract_classes = scale;
  config.java_spec.interfaces = scale;
  config.java_spec.generic_types = scale;
  config.dotnet_spec.plain_types = 12 * scale;
  config.dotnet_spec.dataset_plain = scale;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = scale;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 3 * scale;
  config.dotnet_spec.no_default_ctor = 2 * scale;
  config.dotnet_spec.generic_types = scale;
  config.dotnet_spec.abstract_classes = scale;
  config.dotnet_spec.interfaces = scale;

  const interop::StudyResult result = interop::run_study(config);

  // Invariant: tests = 11 × deployed services.
  std::size_t deployed = 0;
  for (const interop::ServerResult& server : result.servers) {
    deployed += server.services_deployed;
  }
  EXPECT_EQ(result.total_tests(), 11u * deployed);

  for (const interop::ServerResult& server : result.servers) {
    // Invariant: the description step never errors.
    EXPECT_EQ(server.description_errors, 0u);
    // Invariant: compile warnings are exactly 2×deployed (Axis1 + Axis2).
    EXPECT_EQ(server.compilation_totals().warnings, 2u * server.services_deployed);
    // Invariant: errors never exceed tests.
    for (const interop::CellResult& cell : server.cells) {
      EXPECT_LE(cell.generation.errors, cell.tests);
      EXPECT_LE(cell.compilation.errors, cell.tests);
    }
  }

  // Invariant: the WS-I-flagged services that error downstream can never
  // exceed the flagged population.
  EXPECT_LE(result.flagged_services_with_downstream_error, result.flagged_services);

  // Invariant: Metro deploys exactly the bean population; JBossWS trades
  // raw-generic beans for the two async interfaces.
  const std::size_t java_beans = 10 * scale + 2 * scale + scale + scale + scale + 4;
  EXPECT_EQ(result.servers[0].services_deployed, java_beans);
  EXPECT_EQ(result.servers[1].services_deployed, java_beans - 2 * scale + 2);
}

INSTANTIATE_TEST_SUITE_P(Scales, CampaignScaleProperty, ::testing::Values(1u, 3u, 8u));

// ---------------------------------------------------------------------------
// Rng / NamePool determinism properties.
// ---------------------------------------------------------------------------

class RngProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngProperty, StreamsAreDeterministicAndSeedSensitive) {
  catalog::Rng a{GetParam()};
  catalog::Rng b{GetParam()};
  catalog::Rng c{GetParam() + 1};
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST_P(RngProperty, BelowStaysInRange) {
  catalog::Rng rng{GetParam()};
  for (int i = 0; i < 256; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST_P(RngProperty, NamePoolNamesAreUnique) {
  catalog::NamePool pool{GetParam()};
  std::set<std::string> names;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(names.insert(pool.next_class_name()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty, ::testing::Values(0u, 1u, 99u, 1u << 20));

}  // namespace
}  // namespace wsx
