// Unit tests for the server framework models (src/frameworks/*_server.*,
// wsdl_builder.*).
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/features.hpp"
#include "frameworks/registry.hpp"
#include "soap/message.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

namespace wsx::frameworks {
namespace {

using catalog::Trait;

const catalog::TypeCatalog& java() {
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  return catalog;
}

const catalog::TypeCatalog& dotnet() {
  static const catalog::TypeCatalog catalog = catalog::make_dotnet_catalog();
  return catalog;
}

std::unique_ptr<ServerFramework> metro() { return make_server("Metro 2.3"); }
std::unique_ptr<ServerFramework> jbossws() { return make_server("JBossWS CXF 4.2.3"); }
std::unique_ptr<ServerFramework> wcf() { return make_server("WCF .NET 4.0.30319.17929"); }

DeployedService deploy(const ServerFramework& server, std::string_view type_name,
                       const catalog::TypeCatalog& types) {
  const catalog::TypeInfo* type = types.find(type_name);
  EXPECT_NE(type, nullptr) << type_name;
  Result<DeployedService> service = server.deploy(ServiceSpec{type});
  EXPECT_TRUE(service.ok()) << type_name;
  return std::move(service.value());
}

TEST(Registry, ProvidesThreeServersAndElevenClients) {
  EXPECT_EQ(make_servers().size(), 3u);
  EXPECT_EQ(make_clients().size(), 11u);
  EXPECT_EQ(make_server("nope"), nullptr);
  EXPECT_EQ(make_client("nope"), nullptr);
}

TEST(Deployability, MetroDeploys2489JavaServices) {
  std::size_t deployable = 0;
  const auto server = metro();
  for (const catalog::TypeInfo& type : java().types()) {
    if (server->can_deploy(type)) ++deployable;
  }
  EXPECT_EQ(deployable, 2489u);
}

TEST(Deployability, JBossWsDeploys2248JavaServices) {
  std::size_t deployable = 0;
  const auto server = jbossws();
  for (const catalog::TypeInfo& type : java().types()) {
    if (server->can_deploy(type)) ++deployable;
  }
  EXPECT_EQ(deployable, 2248u);
}

TEST(Deployability, WcfDeploys2502DotNetServices) {
  std::size_t deployable = 0;
  const auto server = wcf();
  for (const catalog::TypeInfo& type : dotnet().types()) {
    if (server->can_deploy(type)) ++deployable;
  }
  EXPECT_EQ(deployable, 2502u);
}

TEST(Deployability, MetroRefusesAsyncInterfacesJBossAccepts) {
  const catalog::TypeInfo* future = java().find(catalog::java_names::kFuture);
  ASSERT_NE(future, nullptr);
  EXPECT_FALSE(metro()->can_deploy(*future));
  EXPECT_TRUE(jbossws()->can_deploy(*future));
  Result<DeployedService> refused = metro()->deploy(ServiceSpec{future});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, "deploy.unbindable");
}

TEST(Deployability, JBossRejectsRawGenericTypes) {
  const auto server = jbossws();
  for (const catalog::TypeInfo* type : java().with_trait(Trait::kRawGenericApi)) {
    EXPECT_FALSE(server->can_deploy(*type)) << type->qualified_name();
  }
}

TEST(Description, PlainServicePassesWsiOnAllServers) {
  const auto check_one = [](const ServerFramework& server, const catalog::TypeCatalog& types) {
    for (const catalog::TypeInfo& type : types.types()) {
      const bool special = type.traits != (static_cast<std::uint64_t>(Trait::kDefaultCtor) |
                                           static_cast<std::uint64_t>(Trait::kSerializable));
      if (special || !server.can_deploy(type)) continue;
      Result<DeployedService> service = server.deploy(ServiceSpec{&type});
      ASSERT_TRUE(service.ok());
      EXPECT_TRUE(wsi::check(service->wsdl).compliant()) << type.qualified_name();
      return;  // one plain representative per server
    }
    FAIL() << "no plain deployable type found for " << server.name();
  };
  check_one(*metro(), java());
  check_one(*jbossws(), java());
  check_one(*wcf(), dotnet());
}

TEST(Description, ServedTextParsesBackIdentically) {
  const DeployedService service =
      deploy(*metro(), catalog::java_names::kXmlGregorianCalendar, java());
  Result<wsdl::Definitions> reparsed = wsdl::parse(service.wsdl_text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->target_namespace, service.wsdl.target_namespace);
  EXPECT_EQ(reparsed->operation_count(), 1u);
}

TEST(Description, MetroW3CEndpointReferenceFailsWsiViaTypeRef) {
  const DeployedService service =
      deploy(*metro(), catalog::java_names::kW3CEndpointReference, java());
  EXPECT_TRUE(wsi::check(service.wsdl).failed("R2102"));
  const WsdlFeatures features = analyze(wsdl::parse(service.wsdl_text).value());
  EXPECT_TRUE(features.unresolved_foreign_type_ref);
  EXPECT_FALSE(features.unresolved_foreign_attr_ref);
}

TEST(Description, JBossW3CEndpointReferenceFailsWsiViaAttrRef) {
  const DeployedService service =
      deploy(*jbossws(), catalog::java_names::kW3CEndpointReference, java());
  EXPECT_TRUE(wsi::check(service.wsdl).failed("R2102"));
  const WsdlFeatures features = analyze(wsdl::parse(service.wsdl_text).value());
  EXPECT_TRUE(features.unresolved_foreign_attr_ref);
  EXPECT_FALSE(features.unresolved_foreign_type_ref);
}

TEST(Description, MetroSimpleDateFormatDanglesAttributeGroup) {
  const DeployedService service =
      deploy(*metro(), catalog::java_names::kSimpleDateFormat, java());
  EXPECT_TRUE(wsi::check(service.wsdl).failed("R2102"));
  const WsdlFeatures features = analyze(wsdl::parse(service.wsdl_text).value());
  EXPECT_TRUE(features.unresolved_attr_group);
}

TEST(Description, JBossSimpleDateFormatHasDualTypeDeclaration) {
  const DeployedService service =
      deploy(*jbossws(), catalog::java_names::kSimpleDateFormat, java());
  EXPECT_TRUE(wsi::check(service.wsdl).failed("R2800"));
  const WsdlFeatures features = analyze(wsdl::parse(service.wsdl_text).value());
  EXPECT_TRUE(features.dual_type_declaration);
}

TEST(Description, JBossPublishesZeroOperationWsdlForAsyncApi) {
  const DeployedService service = deploy(*jbossws(), catalog::java_names::kFuture, java());
  EXPECT_EQ(service.wsdl.operation_count(), 0u);
  const wsi::ComplianceReport report = wsi::check(service.wsdl);
  EXPECT_TRUE(report.compliant());  // passes WS-I, yet unusable (§IV.B.1)
  EXPECT_EQ(report.warnings().size(), 1u);
}

TEST(Description, WcfDataSetIdiomUsesSPrefix) {
  const catalog::TypeInfo* dataset = nullptr;
  for (const catalog::TypeInfo& type : dotnet().types()) {
    if (type.has(Trait::kDataSetSchema) && !type.has(Trait::kDataSetNested) &&
        !type.has(Trait::kDataSetDuplicated) && !type.has(Trait::kDataSetArray)) {
      dataset = &type;
      break;
    }
  }
  ASSERT_NE(dataset, nullptr);
  Result<DeployedService> service = wcf()->deploy(ServiceSpec{dataset});
  ASSERT_TRUE(service.ok());
  EXPECT_NE(service->wsdl_text.find("ref=\"s:schema\""), std::string::npos);
  EXPECT_NE(service->wsdl_text.find("ref=\"s:lang\""), std::string::npos);
  EXPECT_TRUE(wsi::check(service->wsdl).failed("R2102"));
  const WsdlFeatures features = analyze(wsdl::parse(service->wsdl_text).value());
  EXPECT_TRUE(features.schema_element_ref);
  EXPECT_TRUE(features.xsd_attr_ref);
  EXPECT_FALSE(features.schema_element_ref_nested);
  EXPECT_FALSE(features.schema_element_ref_duplicated);
}

TEST(Description, WcfDataSetSubShapesSurfaceAsFeatures) {
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kDataSetDuplicated)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(analyze(wsdl::parse(service->wsdl_text).value()).schema_element_ref_duplicated);
    break;
  }
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kDataSetNested)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(analyze(wsdl::parse(service->wsdl_text).value()).schema_element_ref_nested);
    break;
  }
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kDataSetArray)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(analyze(wsdl::parse(service->wsdl_text).value()).schema_element_ref_array);
    break;
  }
}

TEST(Description, WcfEncodedAndMissingActionFailWsi) {
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kSoapEncodedBinding)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(wsi::check(service->wsdl).failed("R2706"));
  }
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kMissingSoapAction)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(wsi::check(service->wsdl).failed("R2744"));
  }
}

TEST(Description, WcfWildcardTypesAreCompliant) {
  const DeployedService service = deploy(*wcf(), catalog::dotnet_names::kDataTable, dotnet());
  EXPECT_TRUE(wsi::check(service.wsdl).compliant());
  const WsdlFeatures features = analyze(wsdl::parse(service.wsdl_text).value());
  EXPECT_TRUE(features.wildcard_only_content);
  EXPECT_EQ(features.max_wildcards_per_type, 2u);
}

TEST(Description, WcfEnumBecomesSimpleType) {
  const DeployedService service =
      deploy(*wcf(), catalog::dotnet_names::kSocketError, dotnet());
  ASSERT_EQ(service.wsdl.schemas.front().simple_types.size(), 1u);
  EXPECT_FALSE(service.wsdl.schemas.front().simple_types.front().enumeration.empty());
  EXPECT_TRUE(wsi::check(service.wsdl).compliant());
}

TEST(Description, DeepNestingDepthsDifferentiatePathological) {
  const catalog::TypeInfo* clean = nullptr;
  const catalog::TypeInfo* pathological = nullptr;
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kDeepNesting)) {
    if (type->has(Trait::kCompilerPathological)) {
      pathological = type;
    } else {
      clean = type;
    }
    if (clean != nullptr && pathological != nullptr) break;
  }
  ASSERT_NE(clean, nullptr);
  ASSERT_NE(pathological, nullptr);
  const auto server = wcf();
  const WsdlFeatures clean_features =
      analyze(wsdl::parse(server->deploy(ServiceSpec{clean})->wsdl_text).value());
  const WsdlFeatures pathological_features =
      analyze(wsdl::parse(server->deploy(ServiceSpec{pathological})->wsdl_text).value());
  EXPECT_EQ(clean_features.max_inline_depth, 3u);
  EXPECT_EQ(pathological_features.max_inline_depth, 5u);
}

TEST(Description, GeneratorCrashTypesAreSelfRecursive) {
  for (const catalog::TypeInfo* type : dotnet().with_trait(Trait::kGeneratorCrash)) {
    Result<DeployedService> service = wcf()->deploy(ServiceSpec{type});
    ASSERT_TRUE(service.ok());
    EXPECT_TRUE(analyze(wsdl::parse(service->wsdl_text).value()).self_recursive_type);
  }
}

TEST(Description, JavaServersAttachJaxwsExtension) {
  const DeployedService metro_service =
      deploy(*metro(), catalog::java_names::kXmlGregorianCalendar, java());
  EXPECT_TRUE(analyze(wsdl::parse(metro_service.wsdl_text).value()).unknown_extension_elements);
  const catalog::TypeInfo* plain_dotnet = nullptr;
  for (const catalog::TypeInfo& type : dotnet().types()) {
    if (wcf()->can_deploy(type)) {
      plain_dotnet = &type;
      break;
    }
  }
  Result<DeployedService> wcf_service = wcf()->deploy(ServiceSpec{plain_dotnet});
  ASSERT_TRUE(wcf_service.ok());
  EXPECT_FALSE(
      analyze(wsdl::parse(wcf_service->wsdl_text).value()).unknown_extension_elements);
}

TEST(Execution, EchoRoundTripReturnsArgument) {
  const DeployedService service =
      deploy(*metro(), catalog::java_names::kXmlGregorianCalendar, java());
  Result<soap::Envelope> request =
      soap::build_request(service.wsdl, "echo", {{"arg0", "payload-123"}});
  ASSERT_TRUE(request.ok());
  const soap::Envelope response = metro()->handle_request(service, *request);
  EXPECT_FALSE(response.is_fault());
}

TEST(Execution, UnknownOperationYieldsClientFault) {
  const DeployedService service =
      deploy(*metro(), catalog::java_names::kXmlGregorianCalendar, java());
  soap::Envelope bogus{xml::Element{"m:unknownOp"}};
  const soap::Envelope response = metro()->handle_request(service, bogus);
  ASSERT_TRUE(response.is_fault());
  EXPECT_EQ(response.fault().fault_code, "soap:Client");
}

TEST(Execution, ZeroOperationServiceFaultsOnInvocation) {
  const DeployedService service = deploy(*jbossws(), catalog::java_names::kFuture, java());
  soap::Envelope request{xml::Element{"m:echo"}};
  const soap::Envelope response = jbossws()->handle_request(service, request);
  EXPECT_TRUE(response.is_fault());
}

TEST(ServiceSpec, NamesDeriveFromType) {
  const catalog::TypeInfo* type = java().find(catalog::java_names::kSimpleDateFormat);
  EXPECT_EQ(ServiceSpec{type}.service_name(), "EchoSimpleDateFormat");
  EXPECT_EQ(ServiceSpec::operation_name(), "echo");
}

TEST(ServiceSpec, MakeServicesCoversCatalog) {
  const std::vector<ServiceSpec> services = make_services(java());
  EXPECT_EQ(services.size(), java().size());
  EXPECT_EQ(services.front().type, &java().types().front());
}

}  // namespace
}  // namespace wsx::frameworks
