// Tests for the UDDI-style registry with admission auditing
// (src/registry/) and the CSV exports of the extension studies.
#include <gtest/gtest.h>

#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/campaign.hpp"
#include "interop/communication.hpp"
#include "registry/registry.hpp"

namespace wsx::registry {
namespace {

frameworks::DeployedService deploy(const frameworks::ServerFramework& server,
                                   std::string_view type_name) {
  static const catalog::TypeCatalog java = catalog::make_java_catalog();
  static const catalog::TypeCatalog dotnet = catalog::make_dotnet_catalog();
  const catalog::TypeCatalog& catalog = server.language() == "C#" ? dotnet : java;
  const catalog::TypeInfo* type = catalog.find(type_name);
  EXPECT_NE(type, nullptr) << type_name;
  return std::move(server.deploy(frameworks::ServiceSpec{type}).value());
}

/// A trait-free bean: every tool consumes it (with the usual warnings).
std::string plain_java_type() {
  static const catalog::TypeCatalog java = catalog::make_java_catalog();
  for (const catalog::TypeInfo& type : java.types()) {
    if (type.traits == (static_cast<std::uint64_t>(catalog::Trait::kDefaultCtor) |
                        static_cast<std::uint64_t>(catalog::Trait::kSerializable))) {
      return type.qualified_name();
    }
  }
  return {};
}

TEST(Registry, PlainServiceAuditsYellowDueToAxisWarnings) {
  // Even a clean service cannot audit green across the full roster: the
  // Axis artifacts always compile with unchecked-operations warnings and
  // JScript warns on every Java description — the audit makes the study's
  // background noise visible per service.
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  Result<Audit> verdict = registry.publish(*metro, deploy(*metro, plain_java_type()));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, Audit::kYellow);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, Axis2IncompatibleTypeAuditsRed) {
  // XMLGregorianCalendar looks harmless but Axis2's artifacts fail to
  // compile — the audit catches what the WS-I check cannot.
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  Result<Audit> verdict =
      registry.publish(*metro, deploy(*metro, catalog::java_names::kXmlGregorianCalendar));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, Audit::kRed);
  EXPECT_EQ(registry.find("EchoXMLGregorianCalendar")->failing_clients, 1u);
}

TEST(Registry, WsiOnlyAuditCanBeGreen) {
  RegistryOptions options;
  options.audition_with_clients = false;
  ServiceRegistry registry{options};
  const auto metro = frameworks::make_server("Metro 2.3");
  Result<Audit> verdict =
      registry.publish(*metro, deploy(*metro, catalog::java_names::kXmlGregorianCalendar));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, Audit::kGreen);
}

TEST(Registry, BrokenServiceAuditsRed) {
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  Result<Audit> verdict = registry.publish(
      *metro, deploy(*metro, catalog::java_names::kW3CEndpointReference));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, Audit::kRed);
  const Entry* entry = registry.find("EchoW3CEndpointReference");
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->failing_clients, 0u);
  EXPECT_FALSE(entry->audit_notes.empty());
}

TEST(Registry, ZeroOperationServiceAuditsRed) {
  ServiceRegistry registry;
  const auto jboss = frameworks::make_server("JBossWS CXF 4.2.3");
  Result<Audit> verdict =
      registry.publish(*jboss, deploy(*jboss, catalog::java_names::kFuture));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, Audit::kRed);
}

TEST(Registry, AdmissionGateRefusesRedServices) {
  RegistryOptions options;
  options.reject_red = true;
  ServiceRegistry registry{options};
  const auto metro = frameworks::make_server("Metro 2.3");
  Result<Audit> verdict = registry.publish(
      *metro, deploy(*metro, catalog::java_names::kW3CEndpointReference));
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error().code, "registry.audition-failed");
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Registry, DuplicateKeysAreRejected) {
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  ASSERT_TRUE(registry
                  .publish(*metro,
                           deploy(*metro, catalog::java_names::kXmlGregorianCalendar))
                  .ok());
  Result<Audit> again = registry.publish(
      *metro, deploy(*metro, catalog::java_names::kXmlGregorianCalendar));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, "registry.duplicate-key");
}

TEST(Registry, ConsumableLookupFiltersByVerdict) {
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  ASSERT_TRUE(registry.publish(*metro, deploy(*metro, plain_java_type())).ok());
  ASSERT_TRUE(
      registry.publish(*metro, deploy(*metro, catalog::java_names::kW3CEndpointReference))
          .ok());
  EXPECT_EQ(registry.find_consumable(Audit::kGreen).size(), 0u);
  EXPECT_EQ(registry.find_consumable(Audit::kYellow).size(), 1u);
  EXPECT_EQ(registry.find_consumable(Audit::kRed).size(), 2u);
}

TEST(Registry, TypeLookupMatchesSubstrings) {
  ServiceRegistry registry;
  const auto metro = frameworks::make_server("Metro 2.3");
  ASSERT_TRUE(registry
                  .publish(*metro,
                           deploy(*metro, catalog::java_names::kXmlGregorianCalendar))
                  .ok());
  EXPECT_EQ(registry.find_by_type("GregorianCalendar").size(), 1u);
  EXPECT_EQ(registry.find_by_type("javax.xml").size(), 1u);
  EXPECT_TRUE(registry.find_by_type("System.Data").empty());
}

TEST(Registry, AuditNames) {
  EXPECT_STREQ(to_string(Audit::kGreen), "green");
  EXPECT_STREQ(to_string(Audit::kRed), "red");
  EXPECT_STREQ(to_string(Audit::kNotAudited), "not-audited");
}

TEST(CsvExports, CommunicationCsvHasOneRowPerCell) {
  interop::StudyConfig config;
  config.java_spec.plain_beans = 3;
  config.java_spec.throwable_clean = 1;
  config.java_spec.throwable_raw = 1;
  config.java_spec.raw_generic_beans = 1;
  config.java_spec.anytype_array_beans = 1;
  config.java_spec.no_default_ctor = 1;
  config.java_spec.abstract_classes = 1;
  config.java_spec.interfaces = 1;
  config.java_spec.generic_types = 1;
  config.dotnet_spec.plain_types = 3;
  config.dotnet_spec.dataset_plain = 1;
  config.dotnet_spec.dataset_duplicated = 1;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 1;
  config.dotnet_spec.deep_nesting_pathological = 1;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 1;
  config.dotnet_spec.no_default_ctor = 1;
  config.dotnet_spec.generic_types = 1;
  config.dotnet_spec.abstract_classes = 1;
  config.dotnet_spec.interfaces = 1;
  const std::string csv =
      interop::communication_csv(interop::run_communication_study(config));
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1 + 33);
  EXPECT_EQ(csv.find("server,client,blocked"), 0u);
}

TEST(CsvExports, FuzzCsvCoversToolsTimesKinds) {
  fuzz::FuzzConfig config;
  config.corpus_per_server = 1;
  const fuzz::FuzzReport report = fuzz::run_fuzz_campaign(config);
  const std::string csv = fuzz::fuzz_csv(report);
  // header + 11 tools × 16 mutation kinds
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            1 + 11 * static_cast<long>(fuzz::kMutationKindCount));
  EXPECT_EQ(csv.find("client,mutation,"), 0u);
}

}  // namespace
}  // namespace wsx::registry
