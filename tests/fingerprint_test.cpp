// Property tests for the canonical shape fingerprint
// (src/analysis/fingerprint.*): the digest must be invariant under
// namespace-prefix renaming, insignificant reordering (attributes,
// top-level declarations) and whitespace/formatting, and must change
// whenever the consumed shape changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include "analysis/fingerprint.hpp"
#include "test_helpers.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"

namespace wsx::analysis {
namespace {

Fingerprint fingerprint_of_text(const std::string& text) {
  Result<wsdl::Definitions> defs = wsdl::parse(text);
  EXPECT_TRUE(defs.ok()) << (defs.ok() ? "" : defs.error().message);
  return fingerprint(defs.value());
}

TEST(Fingerprint, StableUnderPrefixRenaming) {
  const wsdl::Definitions defs = testing::compliant_echo_definitions();
  const Fingerprint reference = fingerprint_of_text(wsdl::to_string(defs));

  // A deterministic sweep of prefix vocabularies, including the WCF-style
  // "s" schema prefix and deliberately confusing swapped names.
  const std::vector<wsdl::WsdlWriteOptions> renamings = {
      {"w", "sp", "t", "s"},
      {"definitions", "envelope", "target", "schema"},
      {"soap", "wsdl", "xs", "tns"},  // swapped: lexical chaos, same shape
      {"a", "b", "c", "d"},
  };
  for (const wsdl::WsdlWriteOptions& options : renamings) {
    const std::string text = wsdl::to_string(defs, options);
    EXPECT_EQ(fingerprint_of_text(text), reference)
        << "prefixes " << options.wsdl_prefix << "/" << options.schema_prefix;
  }
}

TEST(Fingerprint, StableUnderInsignificantWhitespace) {
  const wsdl::Definitions defs = testing::compliant_echo_definitions();
  const std::string text = wsdl::to_string(defs);
  const Fingerprint reference = fingerprint_of_text(text);

  // Random inter-element whitespace, seeded for reproducibility.
  std::mt19937 rng(20140623);  // the paper's DSN year + month + day
  for (int round = 0; round < 8; ++round) {
    std::string mangled;
    mangled.reserve(text.size() * 2);
    const std::string fillers[] = {"\n", "  ", "\t", "\r\n", "\n\t "};
    for (std::size_t i = 0; i < text.size(); ++i) {
      mangled.push_back(text[i]);
      if (text[i] == '>' && i + 1 < text.size() && text[i + 1] == '<' &&
          rng() % 2 == 0) {
        mangled += fillers[rng() % 5];
      }
    }
    EXPECT_EQ(fingerprint_of_text(mangled), reference) << "round " << round;
  }
}

TEST(Fingerprint, StableUnderDeclarationReordering) {
  wsdl::Definitions defs = testing::compliant_echo_definitions();
  const Fingerprint reference = fingerprint(defs);

  // Top-level declaration order is insignificant to consumers that resolve
  // by QName: shuffle messages and schema type declarations.
  std::mt19937 rng(42);
  for (int round = 0; round < 8; ++round) {
    wsdl::Definitions shuffled = testing::compliant_echo_definitions();
    std::shuffle(shuffled.messages.begin(), shuffled.messages.end(), rng);
    for (xsd::Schema& schema : shuffled.schemas) {
      std::shuffle(schema.elements.begin(), schema.elements.end(), rng);
      std::shuffle(schema.complex_types.begin(), schema.complex_types.end(), rng);
    }
    EXPECT_EQ(fingerprint(shuffled), reference) << "round " << round;
  }
}

TEST(Fingerprint, StableUnderAttributeReordering) {
  const auto with_attributes = [](bool reversed) {
    wsdl::Definitions defs = testing::compliant_echo_definitions();
    xsd::ComplexType& payload = defs.schemas.front().complex_types.front();
    xsd::AttributeDecl id;
    id.name = "id";
    id.type = xsd::qname(xsd::Builtin::kString);
    xsd::AttributeDecl version;
    version.name = "version";
    version.type = xsd::qname(xsd::Builtin::kString);
    payload.attributes.push_back(reversed ? version : id);
    payload.attributes.push_back(reversed ? id : version);
    return defs;
  };
  EXPECT_EQ(fingerprint(with_attributes(false)), fingerprint(with_attributes(true)));
}

TEST(Fingerprint, ExcludesServiceNameAndEndpointAddress) {
  wsdl::Definitions defs = testing::compliant_echo_definitions();
  const Fingerprint reference = fingerprint(defs);
  defs.name = "RenamedDeployment";
  defs.services.front().ports.front().location = "http://other-host:9999/echo";
  EXPECT_EQ(fingerprint(defs), reference);
}

TEST(Fingerprint, ChangesWhenShapeChanges) {
  const wsdl::Definitions base = testing::compliant_echo_definitions();
  const Fingerprint reference = fingerprint(base);

  // Element rename inside a type.
  wsdl::Definitions renamed_field = testing::compliant_echo_definitions();
  std::get<xsd::ElementDecl>(
      renamed_field.schemas.front().complex_types.front().particles.front())
      .name = "other";
  EXPECT_NE(fingerprint(renamed_field).digest, reference.digest);

  // Sequence particle order is shape-significant: two fields swapped must
  // NOT collapse to the same fingerprint.
  const auto two_fields = [](bool reversed) {
    wsdl::Definitions defs = testing::compliant_echo_definitions();
    xsd::ComplexType& payload = defs.schemas.front().complex_types.front();
    xsd::ElementDecl extra;
    extra.name = "second";
    extra.type = xsd::qname(xsd::Builtin::kInt);
    if (reversed) {
      payload.particles.insert(payload.particles.begin(), extra);
    } else {
      payload.particles.push_back(extra);
    }
    return defs;
  };
  EXPECT_NE(fingerprint(two_fields(false)).digest, fingerprint(two_fields(true)).digest);

  // Cardinality is shape: making the field unbounded changes the digest.
  wsdl::Definitions unbounded = testing::compliant_echo_definitions();
  std::get<xsd::ElementDecl>(
      unbounded.schemas.front().complex_types.front().particles.front())
      .max_occurs = xsd::kUnbounded;
  EXPECT_NE(fingerprint(unbounded).digest, reference.digest);

  // A second operation changes the portType shape.
  wsdl::Definitions extra_op = testing::compliant_echo_definitions();
  extra_op.port_types.front().operations.push_back({"echoTwice", "echo", "echoResponse", {}});
  EXPECT_NE(fingerprint(extra_op).digest, reference.digest);
}

TEST(Fingerprint, HexIsSixteenLowercaseDigits) {
  const Fingerprint print = fingerprint(testing::compliant_echo_definitions());
  EXPECT_EQ(print.hex().size(), 16u);
  EXPECT_EQ(print.hex().find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(print.digest, fnv1a64(print.canonical));
}

}  // namespace
}  // namespace wsx::analysis
