// Unit tests for namespace scoping and tree queries (src/xml/query.*).
#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/query.hpp"

namespace wsx::xml {
namespace {

Element parsed(std::string_view text) {
  Result<Element> root = parse_element(text);
  EXPECT_TRUE(root.ok()) << text;
  return root.value();
}

TEST(NamespaceScope, XmlPrefixIsPredeclared) {
  NamespaceScope scope;
  EXPECT_EQ(scope.resolve_prefix("xml"), std::string(ns::kXmlNs));
}

TEST(NamespaceScope, ResolvesDeclaredPrefix) {
  Element root = parsed(R"(<a xmlns:p="urn:x"/>)");
  NamespaceScope scope;
  scope.push(root);
  EXPECT_EQ(scope.resolve_prefix("p"), "urn:x");
  EXPECT_FALSE(scope.resolve_prefix("q").has_value());
}

TEST(NamespaceScope, InnerDeclarationShadowsOuter) {
  NamespaceScope scope;
  Element outer = parsed(R"(<a xmlns:p="urn:outer"/>)");
  Element inner = parsed(R"(<b xmlns:p="urn:inner"/>)");
  scope.push(outer);
  scope.push(inner);
  EXPECT_EQ(scope.resolve_prefix("p"), "urn:inner");
  scope.pop();
  EXPECT_EQ(scope.resolve_prefix("p"), "urn:outer");
}

TEST(NamespaceScope, DefaultNamespaceAppliesToElementsOnly) {
  Element root = parsed(R"(<a xmlns="urn:default"/>)");
  NamespaceScope scope;
  scope.push(root);
  std::optional<QName> with_default = scope.resolve("name", /*use_default_ns=*/true);
  ASSERT_TRUE(with_default.has_value());
  EXPECT_EQ(with_default->namespace_uri(), "urn:default");
  std::optional<QName> without_default = scope.resolve("name", /*use_default_ns=*/false);
  ASSERT_TRUE(without_default.has_value());
  EXPECT_EQ(without_default->namespace_uri(), "");
}

TEST(NamespaceScope, UndeclaredPrefixYieldsNullopt) {
  NamespaceScope scope;
  EXPECT_FALSE(scope.resolve("wsa:EndpointReference").has_value());
}

TEST(Walk, VisitsEveryElementWithScope) {
  Element root = parsed(R"(<a xmlns:p="urn:x"><p:b/><c><p:d/></c></a>)");
  std::size_t visited = 0;
  std::size_t in_urn_x = 0;
  walk(root, [&](const Element& element, const NamespaceScope& scope) {
    ++visited;
    std::optional<QName> name = scope.resolve(element.name());
    if (name && name->namespace_uri() == "urn:x") ++in_urn_x;
  });
  EXPECT_EQ(visited, 4u);
  EXPECT_EQ(in_urn_x, 2u);
}

TEST(FindAll, MatchesByResolvedQName) {
  Element root = parsed(
      R"(<w:definitions xmlns:w="http://schemas.xmlsoap.org/wsdl/">
           <w:message/><w:message/><other/>
         </w:definitions>)");
  const std::vector<const Element*> messages =
      find_all(root, QName{std::string(ns::kWsdl), "message"});
  EXPECT_EQ(messages.size(), 2u);
}

TEST(FindAll, RespectsRedeclaredPrefixes) {
  Element root = parsed(
      R"(<a xmlns:p="urn:one"><p:x/><b xmlns:p="urn:two"><p:x/></b></a>)");
  EXPECT_EQ(find_all(root, QName{"urn:one", "x"}).size(), 1u);
  EXPECT_EQ(find_all(root, QName{"urn:two", "x"}).size(), 1u);
}

TEST(FindFirst, ReturnsNullWhenAbsent) {
  Element root = parsed("<a/>");
  EXPECT_EQ(find_first(root, QName{"urn:x", "y"}), nullptr);
}

TEST(ResolvedName, ResolvesTargetInContext) {
  Element root = parsed(R"(<a xmlns="urn:d"><b/></a>)");
  const Element* b = root.child("b");
  ASSERT_NE(b, nullptr);
  std::optional<QName> name = resolved_name(root, *b);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->namespace_uri(), "urn:d");
  EXPECT_EQ(name->local_name(), "b");
}

TEST(QNameTest, EqualityIgnoresPrefix) {
  EXPECT_EQ((QName{"urn:x", "a", "p"}), (QName{"urn:x", "a", "q"}));
  EXPECT_NE((QName{"urn:x", "a"}), (QName{"urn:y", "a"}));
  EXPECT_NE((QName{"urn:x", "a"}), (QName{"urn:x", "b"}));
}

TEST(QNameTest, ExpandedAndLexicalForms) {
  const QName name{"urn:x", "local", "p"};
  EXPECT_EQ(name.expanded(), "{urn:x}local");
  EXPECT_EQ(name.lexical(), "p:local");
  EXPECT_EQ((QName{"", "bare"}).expanded(), "bare");
  EXPECT_EQ((QName{"", "bare"}).lexical(), "bare");
}

TEST(QNameTest, HashConsistentWithEquality) {
  const std::hash<QName> hasher;
  EXPECT_EQ(hasher(QName{"urn:x", "a", "p"}), hasher(QName{"urn:x", "a", "q"}));
}

TEST(ElementApi, ChildHelpersMatchLocalNames) {
  Element root = parsed(R"(<a xmlns:p="urn:x"><p:b/><b/><c/></a>)");
  EXPECT_EQ(root.children_named("b").size(), 2u);  // matches prefixed and not
  EXPECT_EQ(root.child_elements().size(), 3u);
  EXPECT_NE(root.child("c"), nullptr);
}

TEST(ElementApi, SetAttributeReplacesExisting) {
  Element element{"a"};
  element.set_attribute("k", "1");
  element.set_attribute("k", "2");
  EXPECT_EQ(element.attributes().size(), 1u);
  EXPECT_EQ(element.attribute("k"), "2");
}

TEST(ElementApi, RemoveChildByLocalName) {
  Element root = parsed("<a><b/><w:b xmlns:w=\"urn:w\"/><c/></a>");
  EXPECT_TRUE(root.remove_child("b"));         // removes the first match
  EXPECT_EQ(root.children_named("b").size(), 1u);
  EXPECT_TRUE(root.remove_child("b"));
  EXPECT_FALSE(root.remove_child("b"));
  EXPECT_NE(root.child("c"), nullptr);
}

TEST(ElementApi, RemoveAttribute) {
  Element element{"a"};
  element.set_attribute("x", "1");
  EXPECT_TRUE(element.remove_attribute("x"));
  EXPECT_FALSE(element.remove_attribute("x"));
  EXPECT_FALSE(element.has_attribute("x"));
}

TEST(ElementApi, PrependChildGoesFirst) {
  Element root = parsed("<a><b/></a>");
  root.prepend_child(Element{"first"});
  EXPECT_EQ(root.child_elements().front()->name(), "first");
}

TEST(FindDescendant, MutableSearchFindsSelfAndDeep) {
  Element root = parsed("<a><b><c target=\"yes\"/></b></a>");
  Element* found = find_descendant(
      root, [](const Element& e) { return e.has_attribute("target"); });
  ASSERT_NE(found, nullptr);
  found->set_attribute("target", "edited");
  EXPECT_NE(find_descendant(root, [](const Element& e) {
              return e.attribute("target") == "edited";
            }),
            nullptr);
  EXPECT_EQ(find_descendant(root, [](const Element& e) { return e.name() == "zzz"; }),
            nullptr);
  // Self is included.
  EXPECT_EQ(find_descendant(root, [](const Element& e) { return e.name() == "a"; }), &root);
}

TEST(ElementApi, LocalNameAndPrefix) {
  Element element{"soap:binding"};
  EXPECT_EQ(element.local_name(), "binding");
  EXPECT_EQ(element.prefix(), "soap");
  Element bare{"binding"};
  EXPECT_EQ(bare.local_name(), "binding");
  EXPECT_EQ(bare.prefix(), "");
}

}  // namespace
}  // namespace wsx::xml
