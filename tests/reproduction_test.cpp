// The reproduction suite: runs the paper's full campaign (22024 services,
// 79629 tests) once and asserts every Fig. 4 bar, every Table III cell and
// every §IV headline aggregate against the values reconstructed from the
// paper (src/interop/paper_reference.hpp, DESIGN.md §3).
#include <gtest/gtest.h>

#include "interop/paper_reference.hpp"
#include "interop/report.hpp"
#include "interop/study.hpp"

namespace wsx::interop {
namespace {

class FullStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { result_ = new StudyResult(run_study()); }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const StudyResult& result() { return *result_; }
  static StudyResult* result_;
};

StudyResult* FullStudy::result_ = nullptr;

TEST_F(FullStudy, TotalTestsExecuted) {
  EXPECT_EQ(result().total_tests(), paper::kTotalTests);  // 79629
}

TEST_F(FullStudy, ServiceCorpus) {
  EXPECT_EQ(result().total_services_created(), paper::kServicesCreated);      // 22024
  EXPECT_EQ(result().total_deployment_refusals(), paper::kWsdlFailures);      // 14785
  EXPECT_EQ(result().total_services_created() - result().total_deployment_refusals(),
            paper::kServicesDeployed);                                        // 7239
}

TEST_F(FullStudy, PerServerDeploymentCounts) {
  ASSERT_EQ(result().servers.size(), 3u);
  EXPECT_EQ(result().servers[0].services_deployed, 2489u);  // GlassFish
  EXPECT_EQ(result().servers[1].services_deployed, 2248u);  // JBoss AS
  EXPECT_EQ(result().servers[2].services_deployed, 2502u);  // IIS
}

TEST_F(FullStudy, Fig4MatchesEveryBar) {
  for (const ServerResult& server : result().servers) {
    const std::string_view short_name = paper::normalize_server_name(server.server);
    const paper::Fig4Row* reference = nullptr;
    for (const paper::Fig4Row& row : paper::kFig4) {
      if (row.server == short_name) reference = &row;
    }
    ASSERT_NE(reference, nullptr) << server.server;
    EXPECT_EQ(server.description_warnings, reference->description_warnings) << server.server;
    EXPECT_EQ(server.description_errors, reference->description_errors) << server.server;
    EXPECT_EQ(server.generation_totals().warnings, reference->generation_warnings)
        << server.server;
    EXPECT_EQ(server.generation_totals().errors, reference->generation_errors)
        << server.server;
    EXPECT_EQ(server.compilation_totals().warnings, reference->compilation_warnings)
        << server.server;
    EXPECT_EQ(server.compilation_totals().errors, reference->compilation_errors)
        << server.server;
  }
}

TEST_F(FullStudy, TableIIIMatchesEveryCell) {
  std::size_t matched = 0;
  for (const ServerResult& server : result().servers) {
    const std::string_view server_short = paper::normalize_server_name(server.server);
    for (const CellResult& cell : server.cells) {
      const std::string_view client_short = paper::normalize_client_name(cell.client);
      for (const paper::Table3Cell& reference : paper::kTable3) {
        if (reference.server != server_short || reference.client != client_short) continue;
        ++matched;
        EXPECT_EQ(cell.generation.warnings, reference.generation_warnings)
            << server.server << " / " << cell.client;
        EXPECT_EQ(cell.generation.errors, reference.generation_errors)
            << server.server << " / " << cell.client;
        EXPECT_EQ(cell.compilation.warnings, reference.compilation_warnings)
            << server.server << " / " << cell.client;
        EXPECT_EQ(cell.compilation.errors, reference.compilation_errors)
            << server.server << " / " << cell.client;
      }
    }
  }
  EXPECT_EQ(matched, paper::kTable3.size());  // all 33 cells compared
}

TEST_F(FullStudy, HeadlineAggregates) {
  EXPECT_EQ(result().total_description_warnings(), paper::kDescriptionWarnings);  // 86
  EXPECT_EQ(result().total_generation().warnings, paper::kGenerationWarnings);
  EXPECT_EQ(result().total_generation().errors, paper::kGenerationErrors);
  EXPECT_EQ(result().total_compilation().warnings, paper::kCompilationWarnings);  // 14478
  EXPECT_EQ(result().total_compilation().errors, paper::kCompilationErrors);      // 1301
  EXPECT_EQ(result().total_interop_errors(), paper::kInteropErrors);
}

TEST_F(FullStudy, SamePlatformFailuresMatchThe307) {
  EXPECT_EQ(result().same_platform_failures, paper::kSamePlatformFailures);  // 307
}

TEST_F(FullStudy, WsIAblationMatchesThe95Point3Percent) {
  EXPECT_EQ(result().flagged_services, paper::kFlaggedServices);  // 86
  EXPECT_EQ(result().flagged_services_with_downstream_error,
            paper::kFlaggedWithDownstreamError);  // 82 -> 95.3%
}

TEST_F(FullStudy, MostGenerationErrorsComeFromFlaggedDescriptions) {
  // Paper: "About 97% of the errors in this step are produced when using
  // WSDL documents that failed the WS-I check."
  const double share =
      100.0 * static_cast<double>(result().generation_errors_on_flagged) /
      static_cast<double>(result().generation_errors_on_flagged +
                          result().generation_errors_on_compliant);
  EXPECT_GT(share, 90.0);
  EXPECT_LE(share, 100.0);
}

TEST_F(FullStudy, AxisCompilationErrorsMatchThe889) {
  // "Axis1 artifacts generated for Metro and JBossWS services resulted in
  // 889 artifact compilation errors."
  std::size_t axis1_java_errors = 0;
  for (const ServerResult& server : result().servers) {
    if (paper::normalize_server_name(server.server) == "WCF .NET") continue;
    for (const CellResult& cell : server.cells) {
      if (cell.client == "Apache Axis1 1.4") axis1_java_errors += cell.compilation.errors;
    }
  }
  EXPECT_EQ(axis1_java_errors, 889u);
}

TEST_F(FullStudy, Axis2HasExactlyFiveCompilationErrors) {
  // "The Axis2 platform shows 5 compilation errors, of which 2 account for
  // the services that use the javax.xml.datatype.XMLGregorianCalendar class."
  std::size_t axis2_errors = 0;
  for (const ServerResult& server : result().servers) {
    for (const CellResult& cell : server.cells) {
      if (cell.client == "Apache Axis2 1.6.2") axis2_errors += cell.compilation.errors;
    }
  }
  EXPECT_EQ(axis2_errors, 5u);
}

TEST_F(FullStudy, FindingsReportShowsNoDivergence) {
  const std::string report = format_findings(result());
  EXPECT_EQ(report.find("DIVERGE"), std::string::npos) << report;
}

TEST_F(FullStudy, Fig4ReportShowsNoDivergence) {
  const std::string report = format_fig4(result());
  EXPECT_EQ(report.find("DIVERGE"), std::string::npos) << report;
}

}  // namespace
}  // namespace wsx::interop
