// Unit tests for the streaming pull tokenizer (src/xml/pull.*) and the
// arena allocator backing its decoded values (src/common/arena.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "xml/parser.hpp"
#include "xml/pull.hpp"

namespace wsx::xml::pull {
namespace {

// An owning snapshot of a token, safe to keep across next()/feed() calls.
struct Event {
  TokenKind kind;
  std::string name;
  std::string value;
  std::vector<std::pair<std::string, std::string>> attrs;
  bool self_closing = false;

  bool operator==(const Event& other) const = default;
};

Event snapshot(const Token& token) {
  Event event;
  event.kind = token.kind;
  event.name = std::string(token.name);
  event.value = std::string(token.value);
  event.self_closing = token.self_closing;
  for (std::size_t i = 0; i < token.attr_count; ++i) {
    event.attrs.emplace_back(std::string(token.attrs[i].name),
                             std::string(token.attrs[i].value));
  }
  return event;
}

struct PullRun {
  std::vector<Event> events;
  std::string error_code;  // empty when the document tokenized cleanly
  std::string error_message;
};

PullRun run_one_shot(std::string_view text) {
  Tokenizer tok{text};
  PullRun run;
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kEndDocument) return run;
    if (token.kind == TokenKind::kError) {
      run.error_code = tok.error().code;
      run.error_message = tok.error().message;
      return run;
    }
    run.events.push_back(snapshot(token));
  }
}

// Feeds the input `chunk_size` bytes at a time; every token must be
// identical to the one-shot scan of the same text.
PullRun run_incremental(std::string_view text, std::size_t chunk_size) {
  Tokenizer tok{TokenizerOptions{}};
  std::size_t fed = 0;
  PullRun run;
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kNeedMore) {
      if (fed < text.size()) {
        const std::size_t take = std::min(chunk_size, text.size() - fed);
        tok.feed(text.substr(fed, take));
        fed += take;
      } else {
        tok.finish();
      }
      continue;
    }
    if (token.kind == TokenKind::kEndDocument) return run;
    if (token.kind == TokenKind::kError) {
      run.error_code = tok.error().code;
      run.error_message = tok.error().message;
      return run;
    }
    run.events.push_back(snapshot(token));
  }
}

TEST(Arena, AllocationsAreStableAcrossGrowth) {
  common::Arena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 500; ++i) {
    originals.push_back("value-" + std::to_string(i) + std::string(i % 37, 'x'));
  }
  for (const std::string& text : originals) views.push_back(arena.copy(text));
  // Growth allocated several blocks; earlier views must still read back.
  EXPECT_GT(arena.reserved(), common::Arena::kFirstBlockBytes);
  for (std::size_t i = 0; i < views.size(); ++i) EXPECT_EQ(views[i], originals[i]);
}

TEST(Arena, ResetKeepsFirstBlock) {
  common::Arena arena;
  arena.copy("hello world");
  const std::size_t reserved = arena.reserved();
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_LE(arena.reserved(), reserved);
  EXPECT_GT(arena.reserved(), 0u);
  EXPECT_EQ(arena.copy("again"), "again");
}

TEST(Arena, LargeAllocationGetsDedicatedBlock) {
  common::Arena arena;
  const std::string big(common::Arena::kMaxBlockBytes + 17, 'b');
  EXPECT_EQ(arena.copy(big), big);
}

TEST(PullTokenizer, EmitsExpectedEventSequence) {
  PullRun run = run_one_shot("<?xml version=\"1.0\"?><a x=\"1\"><b>hi</b><c/></a>");
  ASSERT_TRUE(run.error_code.empty()) << run.error_message;
  std::vector<TokenKind> kinds;
  for (const Event& event : run.events) kinds.push_back(event.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kStartDocument, TokenKind::kStartElement,
                       TokenKind::kStartElement, TokenKind::kText,
                       TokenKind::kEndElement, TokenKind::kStartElement,
                       TokenKind::kEndElement, TokenKind::kEndElement}));
  EXPECT_EQ(run.events[1].name, "a");
  EXPECT_EQ(run.events[1].attrs,
            (std::vector<std::pair<std::string, std::string>>{{"x", "1"}}));
  EXPECT_EQ(run.events[3].value, "hi");
  EXPECT_TRUE(run.events[5].self_closing);
  EXPECT_FALSE(run.events[6].self_closing);
  EXPECT_EQ(run.events[6].name, "c");
}

TEST(PullTokenizer, ReportsPrologVersionAndEncoding) {
  Tokenizer tok{"<?xml version=\"1.1\" encoding=\"ISO-8859-1\"?><a/>"};
  const Token& start = tok.next();
  ASSERT_EQ(start.kind, TokenKind::kStartDocument);
  EXPECT_EQ(start.version, "1.1");
  EXPECT_EQ(start.encoding, "ISO-8859-1");
}

TEST(PullTokenizer, NoPrologLeavesVersionUnset) {
  Tokenizer tok{"<a/>"};
  const Token& start = tok.next();
  ASSERT_EQ(start.kind, TokenKind::kStartDocument);
  EXPECT_EQ(start.version.data(), nullptr);
  EXPECT_EQ(start.encoding.data(), nullptr);
}

TEST(PullTokenizer, TokensAliasTheInputBuffer) {
  const std::string text = "<root attr=\"plain\">payload</root>";
  Tokenizer tok{text};
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kEndDocument) break;
    ASSERT_NE(token.kind, TokenKind::kError);
    if (token.kind == TokenKind::kStartElement) {
      // Zero-copy: no entities anywhere, so every view points into `text`.
      EXPECT_GE(token.name.data(), begin);
      EXPECT_LT(token.name.data(), end);
      for (std::size_t i = 0; i < token.attr_count; ++i) {
        EXPECT_GE(token.attrs[i].value.data(), begin);
        EXPECT_LT(token.attrs[i].value.data(), end);
      }
    }
    if (token.kind == TokenKind::kText) {
      EXPECT_GE(token.value.data(), begin);
      EXPECT_LT(token.value.data(), end);
    }
  }
  EXPECT_EQ(tok.arena().used(), 0u);
}

TEST(PullTokenizer, EntityDecodeCopiesIntoArena) {
  const std::string text = "<a v=\"x &amp; y\">&#65;&lt;b&gt;</a>";
  Tokenizer tok{text};
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  ASSERT_EQ(tok.next().kind, TokenKind::kStartDocument);
  const Token& start = tok.next();
  ASSERT_EQ(start.kind, TokenKind::kStartElement);
  ASSERT_EQ(start.attr_count, 1u);
  EXPECT_EQ(start.attrs[0].value, "x & y");
  EXPECT_TRUE(start.attrs[0].value.data() < begin || start.attrs[0].value.data() >= end);
  const Token& body = tok.next();
  ASSERT_EQ(body.kind, TokenKind::kText);
  EXPECT_EQ(body.value, "A<b>");
  EXPECT_TRUE(body.value.data() < begin || body.value.data() >= end);
  EXPECT_GT(tok.arena().used(), 0u);
}

TEST(PullTokenizer, SynthesizesEndElementAfterSelfClosing) {
  Tokenizer tok{"<a><b/></a>"};
  ASSERT_EQ(tok.next().kind, TokenKind::kStartDocument);
  ASSERT_EQ(tok.next().kind, TokenKind::kStartElement);
  EXPECT_EQ(tok.depth(), 1u);
  const Token& b = tok.next();
  ASSERT_EQ(b.kind, TokenKind::kStartElement);
  EXPECT_TRUE(b.self_closing);
  // The self-closing element is never pushed onto the open stack.
  EXPECT_EQ(tok.depth(), 1u);
  const Token& b_end = tok.next();
  ASSERT_EQ(b_end.kind, TokenKind::kEndElement);
  EXPECT_EQ(b_end.name, "b");
  ASSERT_EQ(tok.next().kind, TokenKind::kEndElement);
  EXPECT_EQ(tok.next().kind, TokenKind::kEndDocument);
}

TEST(PullTokenizer, ReportsCommentsCdataAndPis) {
  PullRun run = run_one_shot("<!--pre--><a><!--in--><![CDATA[<raw>]]><?pi data?></a>");
  ASSERT_TRUE(run.error_code.empty()) << run.error_message;
  EXPECT_EQ(run.events[1].kind, TokenKind::kComment);
  EXPECT_EQ(run.events[1].value, "pre");
  EXPECT_EQ(run.events[3].kind, TokenKind::kComment);
  EXPECT_EQ(run.events[3].value, "in");
  EXPECT_EQ(run.events[4].kind, TokenKind::kCData);
  EXPECT_EQ(run.events[4].value, "<raw>");
  EXPECT_EQ(run.events[5].kind, TokenKind::kPi);
}

TEST(PullTokenizer, EnforcesDepthLimit) {
  TokenizerOptions options;
  options.max_depth = 4;
  std::string deep = "<a><a><a><a><a><a/></a></a></a></a></a>";
  Tokenizer tok{deep, options};
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kError) break;
    ASSERT_NE(token.kind, TokenKind::kEndDocument) << "depth limit not enforced";
  }
  EXPECT_EQ(tok.error().code, "xml.too-deep");
}

TEST(PullTokenizer, ReportsLineAndColumnOnStartElements) {
  Tokenizer tok{"<a>\n  <b/>\n</a>"};
  ASSERT_EQ(tok.next().kind, TokenKind::kStartDocument);
  const Token& a = tok.next();
  EXPECT_EQ(a.line, 1u);
  EXPECT_EQ(a.column, 1u);
  Token b = tok.next();
  if (b.kind == TokenKind::kText) b = tok.next();  // the "\n  " whitespace run
  ASSERT_EQ(b.kind, TokenKind::kStartElement);
  EXPECT_EQ(b.line, 2u);
  EXPECT_EQ(b.column, 3u);
}

TEST(PullTokenizer, DrainReportsWellFormedness) {
  Tokenizer ok{"<a><b>text</b></a>"};
  EXPECT_TRUE(drain(ok).ok());
  Tokenizer bad{"<a><b></a>"};
  Result<bool> verdict = drain(bad);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.error().code, "xml.mismatched-tag");
}

TEST(PullTokenizer, SkipElementConsumesExactlyTheSubtree) {
  Tokenizer tok{"<r><skip><x><y/>deep</x></skip><keep/></r>"};
  ASSERT_EQ(tok.next().kind, TokenKind::kStartDocument);
  ASSERT_EQ(tok.next().kind, TokenKind::kStartElement);  // r
  const Token& skip = tok.next();
  ASSERT_EQ(skip.kind, TokenKind::kStartElement);
  ASSERT_EQ(skip.name, "skip");
  ASSERT_TRUE(skip_element(tok, skip).ok());
  const Token& keep = tok.next();
  ASSERT_EQ(keep.kind, TokenKind::kStartElement);
  EXPECT_EQ(keep.name, "keep");
}

// Error-code parity with the DOM front-end over a table of malformed
// inputs. The DOM parser is a client of this tokenizer, so these assert
// the shared scanner reports the historical codes.
TEST(PullTokenizer, ErrorCodesMatchDomParser) {
  const std::vector<std::string> inputs = {
      "",
      "   ",
      "junk",
      "<",
      "<a",
      "<a x",
      "<a x=",
      "<a x=\"1",
      "<a x=1>",
      "<a x=\"1\" x=\"2\"/>",
      "<a x=\"<\"/>",
      "<a><b></a></b>",
      "<a></b>",
      "<a></a junk>",
      "<a>",
      "<a/><b/>",
      "<a>&nope;</a>",
      "<a>&#xZZ;</a>",
      "<a>&unterminated</a>",
      "<!--never closed",
      "<a><!--never closed",
      "<a><![CDATA[never closed",
      "<a><?pi never closed",
      "<1bad/>",
      "<a/>trailing",
      "<a/><!--unterminated trailer",
      "\xEF\xBB\xBF<a></b>",
      "<!DOCTYPE unterminated",
      "<a><!bogus></a>",
  };
  for (const std::string& text : inputs) {
    Result<Document> dom = parse(text);
    PullRun stream = run_one_shot(text);
    if (dom.ok()) {
      EXPECT_EQ(stream.error_code, "") << "input: " << text;
    } else {
      EXPECT_EQ(stream.error_code, dom.error().code) << "input: " << text;
      EXPECT_EQ(stream.error_message, dom.error().message) << "input: " << text;
    }
  }
}

TEST(PullTokenizer, IncrementalFeedMatchesOneShot) {
  const std::vector<std::string> documents = {
      "<a/>",
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a b=\"1\" c=\"x &amp; y\">"
      "text &lt;here&gt;<child/><!--note--><![CDATA[raw]]></a>",
      "\xEF\xBB\xBF<?xml version=\"1.0\"?><!DOCTYPE a [<!ENTITY x \"y\">]>"
      "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<soap:Body><echo><arg0>&#65;&#x42;</arg0></echo></soap:Body>"
      "</soap:Envelope><!--tail-->",
      "<r>a<b/>c<b x=\"y\">d</b>e</r>",
  };
  for (const std::string& text : documents) {
    const PullRun whole = run_one_shot(text);
    ASSERT_TRUE(whole.error_code.empty()) << text << ": " << whole.error_message;
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      const PullRun fed = run_incremental(text, chunk);
      EXPECT_EQ(fed.error_code, whole.error_code) << text << " chunk=" << chunk;
      EXPECT_EQ(fed.events, whole.events) << text << " chunk=" << chunk;
    }
  }
}

TEST(PullTokenizer, IncrementalFeedMatchesOneShotOnErrors) {
  const std::vector<std::string> inputs = {
      "<a><b></a></b>", "<a x=\"1\" x=\"2\"/>", "<a>&nope;</a>",
      "<a/>trailing",   "<a><b>",               "junk",
  };
  for (const std::string& text : inputs) {
    const PullRun whole = run_one_shot(text);
    const PullRun fed = run_incremental(text, 1);
    EXPECT_EQ(fed.error_code, whole.error_code) << text;
    EXPECT_EQ(fed.error_message, whole.error_message) << text;
  }
}

TEST(PullTokenizer, IncrementalSurvivesBufferReallocation) {
  // Long element names + many attributes force pending-buffer growth while
  // names are held on the open-element stack; the arena copies must keep
  // the end-tag matching correct.
  std::string name(200, 'n');
  std::string text = "<" + name + "><" + name + " a=\"" + std::string(300, 'v') +
                     "\"/>middle</" + name + ">";
  const PullRun whole = run_one_shot(text);
  ASSERT_TRUE(whole.error_code.empty()) << whole.error_message;
  const PullRun fed = run_incremental(text, 1);
  EXPECT_TRUE(fed.error_code.empty()) << fed.error_message;
  EXPECT_EQ(fed.events, whole.events);
}

TEST(PullTokenizer, NeedMoreWithoutFinishThenFinishReportsIncomplete) {
  Tokenizer tok{TokenizerOptions{}};
  tok.feed("<a><b>");
  std::size_t guard = 0;
  for (;;) {
    const Token& token = tok.next();
    if (token.kind == TokenKind::kNeedMore) {
      tok.finish();
      continue;
    }
    if (token.kind == TokenKind::kError) break;
    ASSERT_LT(++guard, 16u) << "tokenizer failed to terminate";
  }
  EXPECT_EQ(tok.error().code, "xml.unterminated-element");
}

TEST(PullTokenizer, ErrorTokenIsSticky) {
  Tokenizer tok{"junk"};
  while (tok.next().kind != TokenKind::kError) {
  }
  EXPECT_EQ(tok.next().kind, TokenKind::kError);
  EXPECT_EQ(tok.next().kind, TokenKind::kError);
  EXPECT_EQ(tok.error().code, "xml.expected-element");
}

TEST(CollectElement, BuildsSubtreeFromTokenizer) {
  Tokenizer tok{"<r><sub x=\"1\"><in>text</in></sub><after/></r>"};
  ASSERT_EQ(tok.next().kind, TokenKind::kStartDocument);
  ASSERT_EQ(tok.next().kind, TokenKind::kStartElement);  // r
  const Token& sub = tok.next();
  ASSERT_EQ(sub.kind, TokenKind::kStartElement);
  Result<Element> tree = collect_element(tok, sub);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->name(), "sub");
  EXPECT_EQ(tree->attribute("x"), "1");
  ASSERT_NE(tree->child("in"), nullptr);
  EXPECT_EQ(tree->child("in")->text(), "text");
  // The cursor resumes exactly after the collected subtree.
  const Token& after = tok.next();
  ASSERT_EQ(after.kind, TokenKind::kStartElement);
  EXPECT_EQ(after.name, "after");
}

}  // namespace
}  // namespace wsx::xml::pull
