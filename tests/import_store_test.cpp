// Tests for multi-document descriptions and import flattening
// (src/wsdl/import_store.*).
#include <gtest/gtest.h>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "wsdl/import_store.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/writer.hpp"
#include "wsi/profile.hpp"

namespace wsx::wsdl {
namespace {

/// Splits a served single-document description into a root document
/// (service + binding + import) and an interface document (everything
/// else), stored under two locations.
struct SplitFixture {
  DocumentStore store;
  Definitions original;
  std::string root_location{"http://host/service.wsdl"};
  std::string interface_location{"http://host/interface.wsdl"};
};

SplitFixture make_split_fixture() {
  SplitFixture fixture;
  static const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const auto server = frameworks::make_server("Metro 2.3");
  const catalog::TypeInfo* type = catalog.find(catalog::java_names::kXmlGregorianCalendar);
  fixture.original = server->deploy(frameworks::ServiceSpec{type})->wsdl;

  Definitions interface_doc;
  interface_doc.name = fixture.original.name + "Interface";
  interface_doc.target_namespace = fixture.original.target_namespace;
  interface_doc.schemas = fixture.original.schemas;
  interface_doc.messages = fixture.original.messages;
  interface_doc.port_types = fixture.original.port_types;

  Definitions root_doc;
  root_doc.name = fixture.original.name;
  root_doc.target_namespace = fixture.original.target_namespace;
  root_doc.bindings = fixture.original.bindings;
  root_doc.services = fixture.original.services;
  root_doc.imports.push_back(
      {fixture.original.target_namespace, fixture.interface_location});

  fixture.store.add(fixture.root_location, to_string(root_doc));
  fixture.store.add(fixture.interface_location, to_string(interface_doc));
  return fixture;
}

TEST(DocumentStoreApi, AddAndGet) {
  DocumentStore store;
  EXPECT_EQ(store.get("x"), nullptr);
  store.add("x", "<a/>");
  ASSERT_NE(store.get("x"), nullptr);
  EXPECT_EQ(*store.get("x"), "<a/>");
  store.add("x", "<b/>");  // replace
  EXPECT_EQ(*store.get("x"), "<b/>");
  EXPECT_EQ(store.size(), 1u);
}

TEST(Flatten, MergesSplitDescription) {
  SplitFixture fixture = make_split_fixture();
  Result<Definitions> flattened = load_flattened(fixture.store, fixture.root_location);
  ASSERT_TRUE(flattened.ok());
  EXPECT_TRUE(flattened->imports.empty());
  EXPECT_EQ(flattened->schemas, fixture.original.schemas);
  EXPECT_EQ(flattened->messages, fixture.original.messages);
  EXPECT_EQ(flattened->port_types, fixture.original.port_types);
  EXPECT_EQ(flattened->bindings, fixture.original.bindings);
  EXPECT_EQ(flattened->services, fixture.original.services);
}

TEST(Flatten, FlattenedDescriptionPassesWsiAndClients) {
  SplitFixture fixture = make_split_fixture();
  Result<Definitions> flattened = load_flattened(fixture.store, fixture.root_location);
  ASSERT_TRUE(flattened.ok());
  EXPECT_TRUE(wsi::check(*flattened).compliant());
  // The split root alone would break strict clients; the flattened text
  // consumes cleanly everywhere.
  const std::string text = to_string(*flattened);
  for (const auto& client : frameworks::make_clients()) {
    EXPECT_FALSE(client->generate(text).diagnostics.has_errors()) << client->name();
  }
}

TEST(Flatten, UnknownRootFails) {
  DocumentStore store;
  Result<Definitions> flattened = load_flattened(store, "http://nowhere/");
  ASSERT_FALSE(flattened.ok());
  EXPECT_EQ(flattened.error().code, "wsdl.unknown-location");
}

TEST(Flatten, UnknownImportLocationFails) {
  SplitFixture fixture = make_split_fixture();
  DocumentStore store;
  store.add(fixture.root_location, *fixture.store.get(fixture.root_location));
  // interface document intentionally missing
  Result<Definitions> flattened = load_flattened(store, fixture.root_location);
  ASSERT_FALSE(flattened.ok());
  EXPECT_EQ(flattened.error().code, "wsdl.unknown-location");
}

TEST(Flatten, LocationlessImportFails) {
  Definitions doc;
  doc.target_namespace = "urn:x";
  doc.imports.push_back({"urn:other", ""});
  DocumentStore store;
  store.add("root", to_string(doc));
  Result<Definitions> flattened = load_flattened(store, "root");
  ASSERT_FALSE(flattened.ok());
  EXPECT_EQ(flattened.error().code, "wsdl.unresolved-import");
}

TEST(Flatten, CyclesAreDetected) {
  Definitions a;
  a.target_namespace = "urn:a";
  a.imports.push_back({"urn:b", "b"});
  Definitions b;
  b.target_namespace = "urn:b";
  b.imports.push_back({"urn:a", "a"});
  DocumentStore store;
  store.add("a", to_string(a));
  store.add("b", to_string(b));
  Result<Definitions> flattened = load_flattened(store, "a");
  ASSERT_FALSE(flattened.ok());
  EXPECT_EQ(flattened.error().code, "wsdl.import-cycle");
}

TEST(Flatten, DiamondImportsMergeOnce) {
  // root imports b and c; both import d — d must merge exactly once.
  Definitions d;
  d.target_namespace = "urn:d";
  d.port_types.push_back({"SharedPort", {}});
  Definitions b;
  b.target_namespace = "urn:b";
  b.imports.push_back({"urn:d", "d"});
  Definitions c;
  c.target_namespace = "urn:c";
  c.imports.push_back({"urn:d", "d"});
  Definitions root;
  root.target_namespace = "urn:root";
  root.imports.push_back({"urn:b", "b"});
  root.imports.push_back({"urn:c", "c"});
  DocumentStore store;
  store.add("b", to_string(b));
  store.add("c", to_string(c));
  store.add("d", to_string(d));
  store.add("root", to_string(root));
  Result<Definitions> flattened = load_flattened(store, "root");
  ASSERT_TRUE(flattened.ok());
  std::size_t shared = 0;
  for (const PortType& port_type : flattened->port_types) {
    if (port_type.name == "SharedPort") ++shared;
  }
  EXPECT_EQ(shared, 1u);
}

TEST(Flatten, MalformedImportedDocumentReportsLocation) {
  Definitions root;
  root.target_namespace = "urn:x";
  root.imports.push_back({"urn:bad", "bad"});
  DocumentStore store;
  store.add("root", to_string(root));
  store.add("bad", "<not-wsdl");
  Result<Definitions> flattened = load_flattened(store, "root");
  ASSERT_FALSE(flattened.ok());
  EXPECT_NE(flattened.error().message.find("'bad'"), std::string::npos);
}

}  // namespace
}  // namespace wsx::wsdl
