// Unit tests for the code model and compiler simulators (src/codemodel/,
// src/compilers/).
#include <gtest/gtest.h>

#include "compilers/compiler.hpp"

namespace wsx::compilers {
namespace {

code::Artifacts clean_artifacts(code::Language language) {
  code::Artifacts artifacts;
  artifacts.language = language;
  code::Class cls;
  cls.name = "Payload";
  cls.fields.push_back({"value", "string", false});
  code::Method method;
  method.name = "describe";
  method.referenced_symbols.push_back("value");
  cls.methods.push_back(std::move(method));
  code::CompilationUnit unit;
  unit.name = "types";
  unit.classes.push_back(std::move(cls));
  artifacts.units.push_back(std::move(unit));
  artifacts.client_operations.push_back("echo");
  return artifacts;
}

TEST(LanguageMeta, Names) {
  EXPECT_STREQ(code::to_string(code::Language::kJava), "Java");
  EXPECT_STREQ(code::to_string(code::Language::kVisualBasic), "Visual Basic .NET");
  EXPECT_STREQ(code::to_string(code::Language::kPhp), "PHP");
}

TEST(LanguageMeta, CompilationRequirementMatchesTableII) {
  EXPECT_TRUE(code::requires_compilation(code::Language::kJava));
  EXPECT_TRUE(code::requires_compilation(code::Language::kCSharp));
  EXPECT_TRUE(code::requires_compilation(code::Language::kVisualBasic));
  EXPECT_TRUE(code::requires_compilation(code::Language::kJScript));
  EXPECT_TRUE(code::requires_compilation(code::Language::kCpp));
  EXPECT_FALSE(code::requires_compilation(code::Language::kPhp));
  EXPECT_FALSE(code::requires_compilation(code::Language::kPython));
}

TEST(Factory, ReturnsCompilerPerCompiledLanguage) {
  for (code::Language language :
       {code::Language::kJava, code::Language::kCSharp, code::Language::kVisualBasic,
        code::Language::kJScript, code::Language::kCpp}) {
    const auto compiler = make_compiler(language);
    ASSERT_NE(compiler, nullptr);
    EXPECT_EQ(compiler->language(), language);
  }
  EXPECT_EQ(make_compiler(code::Language::kPhp), nullptr);
  EXPECT_EQ(make_compiler(code::Language::kPython), nullptr);
}

TEST(AllCompilers, CleanArtifactsCompileClean) {
  for (code::Language language :
       {code::Language::kJava, code::Language::kCSharp, code::Language::kVisualBasic,
        code::Language::kJScript, code::Language::kCpp}) {
    const auto compiler = make_compiler(language);
    const DiagnosticSink sink = compiler->compile(clean_artifacts(language));
    EXPECT_FALSE(sink.has_errors()) << code::to_string(language);
    EXPECT_FALSE(sink.has_warnings()) << code::to_string(language);
  }
}

TEST(JavaCompiler, WarnsOnceOnRawCollections) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  artifacts.units.front().classes.front().fields.push_back(
      {"cache", "java.util.ArrayList", /*raw_collection=*/true});
  const DiagnosticSink sink = make_compiler(code::Language::kJava)->compile(artifacts);
  EXPECT_FALSE(sink.has_errors());
  EXPECT_EQ(sink.count(Severity::kWarning), 1u);
  EXPECT_NE(sink.diagnostics().front().message.find("unchecked or unsafe operations"),
            std::string::npos);
}

TEST(CSharpCompiler, DoesNotWarnOnRawCollections) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kCSharp);
  artifacts.units.front().classes.front().fields.push_back({"cache", "ArrayList", true});
  EXPECT_TRUE(make_compiler(code::Language::kCSharp)->compile(artifacts).empty());
}

TEST(JavaCompiler, ErrorsOnUnresolvedIdentifier) {
  // The Axis1 Exception-wrapper defect: field renamed, reference not.
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  artifacts.units.front().classes.front().fields.front().name = "message1";
  const DiagnosticSink sink = make_compiler(code::Language::kJava)->compile(artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().code, "javac.unresolved-identifier");
}

TEST(JavaCompiler, ResolvesSymbolsAgainstParamsAndLocals) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  code::Method& method = artifacts.units.front().classes.front().methods.front();
  method.referenced_symbols = {"arg", "tmp", "value"};
  method.params.push_back({"arg", "int"});
  method.local_decls.push_back("tmp");
  EXPECT_FALSE(make_compiler(code::Language::kJava)->compile(artifacts).has_errors());
}

TEST(JavaCompiler, ErrorsOnDuplicateFields) {
  // The Axis2 double-wildcard defect: two "extraElement" members.
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  artifacts.units.front().classes.front().fields.push_back({"extraElement", "anyType", false});
  artifacts.units.front().classes.front().fields.push_back({"extraElement", "anyType", false});
  const DiagnosticSink sink = make_compiler(code::Language::kJava)->compile(artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().code, "javac.duplicate-member");
}

TEST(JavaCompiler, ErrorsOnDuplicateParameters) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  code::Method& method = artifacts.units.front().classes.front().methods.front();
  method.params.push_back({"a", "int"});
  method.params.push_back({"a", "int"});
  EXPECT_TRUE(make_compiler(code::Language::kJava)->compile(artifacts).has_errors());
}

TEST(CaseSensitivity, CaseCollidingFieldsPassCSharpFailVb) {
  // The VB.NET mechanism of §IV.B.3: identifiers differing only in case.
  code::Artifacts artifacts = clean_artifacts(code::Language::kCSharp);
  artifacts.units.front().classes.front().fields.push_back({"Value", "string", false});
  EXPECT_FALSE(make_compiler(code::Language::kCSharp)->compile(artifacts).has_errors());
  EXPECT_FALSE(make_compiler(code::Language::kJava)->compile(artifacts).has_errors());
  EXPECT_FALSE(make_compiler(code::Language::kJScript)->compile(artifacts).has_errors());

  const DiagnosticSink vb = make_compiler(code::Language::kVisualBasic)->compile(artifacts);
  ASSERT_TRUE(vb.has_errors());
  EXPECT_EQ(vb.diagnostics().front().code, "vbc.duplicate-member");
}

TEST(VbCompiler, ParameterCollidingWithMethodNameFails) {
  // "a parameter and a method share the same name leading to a collision".
  code::Artifacts artifacts = clean_artifacts(code::Language::kVisualBasic);
  code::Method& method = artifacts.units.front().classes.front().methods.front();
  method.params.push_back({"Describe", "string"});  // collides case-insensitively
  EXPECT_TRUE(make_compiler(code::Language::kVisualBasic)->compile(artifacts).has_errors());
  // C# compares with case: no collision.
  EXPECT_FALSE(make_compiler(code::Language::kCSharp)->compile(artifacts).has_errors());
}

TEST(VbCompiler, ResolvesIdentifiersCaseInsensitively) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kVisualBasic);
  code::Method& method = artifacts.units.front().classes.front().methods.front();
  method.referenced_symbols = {"VALUE"};
  EXPECT_FALSE(make_compiler(code::Language::kVisualBasic)->compile(artifacts).has_errors());
}

TEST(JScriptCompiler, ErrorsOnMissingBody) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJScript);
  artifacts.units.front().classes.front().methods.front().has_body = false;
  const DiagnosticSink sink = make_compiler(code::Language::kJScript)->compile(artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().code, "jsc.missing-body");
}

TEST(JScriptCompiler, CrashesOnPathologicalUnit) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJScript);
  artifacts.units.front().pathological = true;
  const DiagnosticSink sink = make_compiler(code::Language::kJScript)->compile(artifacts);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics().front().severity, Severity::kCrash);
  EXPECT_EQ(sink.diagnostics().front().message, "131 INTERNAL COMPILER CRASH");
}

TEST(JScriptCompiler, CrashAbortsRemainingUnits) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJScript);
  artifacts.units.front().pathological = true;
  code::CompilationUnit broken;
  broken.name = "second";
  code::Class cls;
  cls.name = "X";
  cls.fields.push_back({"dup", "t", false});
  cls.fields.push_back({"dup", "t", false});
  broken.classes.push_back(std::move(cls));
  artifacts.units.push_back(std::move(broken));
  const DiagnosticSink sink = make_compiler(code::Language::kJScript)->compile(artifacts);
  EXPECT_EQ(sink.diagnostics().size(), 1u);  // only the crash is reported
}

TEST(CppCompiler, ErrorsOnDuplicateMembers) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kCpp);
  artifacts.units.front().classes.front().fields.push_back({"value", "string", false});
  EXPECT_TRUE(make_compiler(code::Language::kCpp)->compile(artifacts).has_errors());
}

TEST(Instantiation, CleanClientPasses) {
  EXPECT_TRUE(check_instantiation(clean_artifacts(code::Language::kPython)).empty());
}

TEST(Instantiation, WarnsOnClientWithoutOperations) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kPhp);
  artifacts.client_operations.clear();
  const DiagnosticSink sink = check_instantiation(artifacts);
  EXPECT_FALSE(sink.has_errors());
  ASSERT_TRUE(sink.has_warnings());
  EXPECT_EQ(sink.diagnostics().front().code, "dynamic.no-operations");
}

TEST(Instantiation, ErrorsWhenNothingWasGenerated) {
  code::Artifacts artifacts;
  const DiagnosticSink sink = check_instantiation(artifacts);
  EXPECT_TRUE(sink.has_errors());
}

TEST(ArtifactsModel, ClassCountSpansUnits) {
  code::Artifacts artifacts = clean_artifacts(code::Language::kJava);
  code::CompilationUnit extra;
  extra.classes.push_back(code::Class{});
  extra.classes.push_back(code::Class{});
  artifacts.units.push_back(std::move(extra));
  EXPECT_EQ(artifacts.class_count(), 3u);
}

}  // namespace
}  // namespace wsx::compilers
