// wsinterop — the command-line interoperability assessment tool.
//
// The paper released its harness "so that developers and researchers can
// extend this study"; this binary is that tool for the reproduction:
//
//   wsinterop run [--scale PCT] [--threads N] [--format text|csv|markdown]
//       reruns the campaign and prints Fig.4 + Table III + findings
//   wsinterop lint FILE [--strict]
//       WS-I Basic Profile check of a WSDL file
//   wsinterop describe SERVER TYPE
//       prints the WSDL a server publishes for a native type
//   wsinterop test SERVER TYPE CLIENT
//       drives one (service, client) pair through steps 1-3
//   wsinterop fuzz [--corpus N]
//       WSDL robustness fuzzing across all client tools
//   wsinterop communicate
//       the Communication+Execution extension study
//   wsinterop chaos [--seed N] [--rate PCT] [--faults LIST] [--calls N]
//       wire-fault resilience study over the faulty wire
//   wsinterop propcheck [--seed N] [--cases N] [--shrink] [--sabotage]
//       WSDL-guided property-based test generation over the communication
//       phase, with shrinking of any counterexample to a local minimum
//   wsinterop profile [--scale PCT] [--jobs N]
//       sized-down study with tracing on; prints the phase breakdown
//   wsinterop predict SERVER TYPE | --corpus [--index OUT.json]
//       static compatibility prediction (no generation/compilation run);
//       --corpus scores the predictions against the dynamic study
//   wsinterop substitute --client X --service Y --index FILE [--top K]
//       ranked replacement services from a serialized substitution index
//   wsinterop list
//       available server and client frameworks
//   wsinterop resume JOURNAL [--jobs N] [--format ...]
//       finishes an interrupted supervised campaign from its checkpoint
//       journal; the final report is byte-identical to a straight run
//
// Every campaign verb accepts --trace=FILE.jsonl (canonical span tree,
// one JSON object per line) and --metrics=FILE.json (counter/gauge/
// histogram export); see docs/OBSERVABILITY.md. The six supervised
// campaign verbs (run, communicate, chaos, propcheck, lint --corpus,
// predict --corpus) additionally accept the resilience flags (--checkpoint,
// --checkpoint-every, --task-deadline-ms, --quarantine-after,
// --budget-ms, --budget-tasks); see docs/RESILIENCE.md.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "analysis/baseline.hpp"
#include "analysis/corpus.hpp"
#include "analysis/predict.hpp"
#include "analysis/substitution.hpp"
#include "analysis/supervised_corpus.hpp"
#include "analysis/supervised_predict.hpp"
#include "chaos/campaign.hpp"
#include "chaos/supervised.hpp"
#include "analysis/registry.hpp"
#include "analysis/sarif.hpp"
#include "codemodel/render.hpp"
#include "common/pool.hpp"
#include "compilers/compiler.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/campaign.hpp"
#include "gen/campaign.hpp"
#include "gen/supervised.hpp"
#include "interop/communication.hpp"
#include "soap/envelope.hpp"
#include "interop/persistence.hpp"
#include "interop/report.hpp"
#include "interop/report_formats.hpp"
#include "interop/scorecard.hpp"
#include "interop/study.hpp"
#include "interop/supervised.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resilience/journal.hpp"
#include "resilience/supervisor.hpp"
#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "serve/oracle.hpp"
#include "serve/protocol.hpp"
#include "serve/tcp.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

namespace {

/// Parses a non-negative decimal count. Unlike std::stoul this neither
/// throws on garbage nor accepts trailing junk, so "--jobs abc" is a usage
/// error rather than an abort.
bool parse_count(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

int usage() {
  std::cerr << "usage: wsinterop "
               "<run|lint|describe|test|fuzz|communicate|chaos|propcheck|profile|predict|"
               "substitute|serve|loadgen|scorecard|diff|resume|list> [options]\n"
               "  run         [--scale PCT] [--threads N] [--format text|csv|markdown]\n"
               "              [--log FILE.jsonl] [--snapshot FILE.csv]\n"
               "  diff        BEFORE.csv AFTER.csv\n"
               "  lint        FILE... | --corpus [--scale PCT] [--join-study]\n"
               "              [--strict] [--jobs N] [--sarif OUT.json]\n"
               "              [--baseline FILE] [--write-baseline FILE] [--disable ID,...]\n"
               "  describe    SERVER TYPE\n"
               "  test        SERVER TYPE CLIENT [--dump]\n"
               "  fuzz        [--corpus N]\n"
               "  communicate [--scale PCT] [--threads N] [--versions POLICY,...]\n"
               "  chaos       [--seed N] [--rate PCT] [--faults KIND,...] [--burst N]\n"
               "              [--calls N] [--scale PCT] [--jobs N] [--csv FILE]\n"
               "              [--versions POLICY,...] [--format text|csv|markdown|json]\n"
               "  propcheck   [--seed N] [--cases N] [--max-depth N] [--scale PCT]\n"
               "              [--jobs N] [--shrink] [--no-shrink] [--sabotage]\n"
               "              [--format text|json]\n"
               "              (property-based corpus over the communication phase;\n"
               "              exit 3 when a property violation is found)\n"
               "  profile     [--scale PCT] [--jobs N]\n"
               "  predict     SERVER TYPE | --corpus [--scale PCT] [--jobs N] [--no-join]\n"
               "              [--shape simple-echo|crud] [--index OUT.json]\n"
               "              [--min-precision PCT] [--min-recall PCT]\n"
               "              (exit 3 when a joined corpus run misses an accuracy floor)\n"
               "  substitute  --client NAME --service [SERVER/]SERVICE --index FILE\n"
               "              [--top K]\n"
               "  serve       [--scale PCT] [--shape S] [--jobs N] [--cache FILE.journal]\n"
               "              [--resume] [--trip-after N] [--probe N] [--requests FILE]\n"
               "              [--lanes N] [--queue N] [--tcp PORT --connections N] [--stats]\n"
               "              (oracle daemon; exit 75 when the crash drill trips)\n"
               "  loadgen     [--scale PCT] [--seed N] [--queries N] [--lanes N] [--queue N]\n"
               "              [--cache FILE.journal] [--out BENCH_serve.json]\n"
               "              [--check BASELINE.json] [--tolerance PCT]\n"
               "              (overload drill; exit 3 on invariant or baseline miss)\n"
               "  scorecard   [--chaos] [--jobs N] [--versions POLICY,...]\n"
               "  resume      JOURNAL [--jobs N] [--format ...] [--trip-after N]\n"
               "  list\n"
               "--versions sweeps each server under the named version-validation\n"
               "policies (strict, relaxed, shaded) while clients emit the hybrid\n"
               "1.1-with-1.2-era-header profile their own policy implies; see\n"
               "docs/VERSIONS.md (run accepts the flag but steps 1-3 are wire-free)\n"
               "campaign verbs (run, lint --corpus, communicate, chaos, propcheck,\n"
               "profile, predict --corpus) also accept --trace FILE.jsonl and\n"
               "--metrics FILE.json; run, communicate, chaos, propcheck and profile\n"
               "accept --no-parse-cache to re-parse each WSDL per client instead of\n"
               "sharing one parsed description per service, and --no-stream to parse\n"
               "envelopes via the DOM instead of the streaming pull tokenizer\n"
               "supervised verbs (run, lint --corpus, communicate, chaos, propcheck,\n"
               "predict --corpus) also accept the resilience flags: --checkpoint FILE.journal,\n"
               "--checkpoint-every N, --task-deadline-ms N, --quarantine-after N,\n"
               "--budget-ms N, --budget-tasks N, --trip-after N (exit 75 when the run\n"
               "trips)\n";
  return 2;
}

/// Parses a --jobs/--threads value and enforces the shared worker-count
/// range (0 = auto, explicit counts capped at kMaxWorkers). Out-of-range
/// values are a usage error, not a silent thread explosion.
bool parse_jobs(const std::string& text, std::size_t& out) {
  if (!parse_count(text, out)) return false;
  if (!wsx::valid_worker_count(out)) {
    std::cerr << "wsinterop: worker count " << out << " out of range (max "
              << wsx::kMaxWorkers << ", 0 = auto)\n";
    return false;
  }
  return true;
}

/// Parses a comma-separated --versions list ("strict,relaxed,shaded") into
/// version-validation policies. An unknown spelling is a usage error that
/// lists the valid ones, mirroring --faults.
bool parse_versions(const std::string& text, std::vector<frameworks::VersionPolicy>& out) {
  std::stringstream names(text);
  std::string name;
  while (std::getline(names, name, ',')) {
    const std::optional<frameworks::VersionPolicy> policy =
        frameworks::parse_version_policy(name);
    if (!policy.has_value()) {
      std::cerr << "wsinterop: unknown version policy '" << name << "'; policies are:";
      for (const frameworks::VersionPolicy known : frameworks::all_version_policies()) {
        std::cerr << ' ' << frameworks::to_string(known);
      }
      std::cerr << "\n";
      return false;
    }
    out.push_back(*policy);
  }
  if (out.empty()) {
    std::cerr << "wsinterop: --versions needs at least one policy\n";
    return false;
  }
  return true;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "wsinterop: cannot open " << path << " for writing\n";
    return false;
  }
  file << text;
  return true;
}

/// Observability sinks shared by the campaign verbs: allocated only when
/// the matching flag was given, exported on scope exit by flush().
struct ObsSinks {
  std::string trace_path;
  std::string metrics_path;
  obs::Tracer tracer;
  obs::Registry registry;

  obs::Tracer* tracer_or_null() { return trace_path.empty() ? nullptr : &tracer; }
  obs::Registry* metrics_or_null() { return metrics_path.empty() ? nullptr : &registry; }

  /// Writes the requested export files; true on success.
  bool flush() {
    if (!trace_path.empty() && !write_text_file(trace_path, tracer.to_jsonl())) {
      return false;
    }
    if (!metrics_path.empty() &&
        !write_text_file(metrics_path, registry.to_json() + "\n")) {
      return false;
    }
    return true;
  }

  /// Consumes "--trace FILE" / "--metrics FILE" at args[i]; returns true
  /// and advances i when the argument was one of ours.
  bool consume(const std::vector<std::string>& args, std::size_t& i) {
    if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
      return true;
    }
    if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
      return true;
    }
    return false;
  }
};

/// The resilience supervisor flags shared by the supervised campaign verbs
/// (run, communicate, chaos, lint --corpus). Any one of them switches the
/// verb onto the supervised execution path; verbs without a supervised path
/// never consume them, so they fall through to the usage error there.
struct ResilienceFlags {
  resilience::JournalOptions journal;
  std::string checkpoint_path;
  std::size_t trip_after_tasks = 0;
  bool any = false;   ///< a resilience flag was given
  bool bad = false;   ///< ...but its value was missing or malformed

  bool enabled() const { return any; }

  /// Consumes one resilience flag at args[i]; returns true and advances i
  /// when the argument was one of ours (check `bad` afterwards).
  bool consume(const std::vector<std::string>& args, std::size_t& i) {
    const auto count_value = [&](auto& out) {
      any = true;
      std::size_t value = 0;
      if (i + 1 >= args.size() || !parse_count(args[i + 1], value)) {
        bad = true;
        return;
      }
      ++i;
      out = static_cast<std::remove_reference_t<decltype(out)>>(value);
    };
    if (args[i] == "--checkpoint") {
      any = true;
      if (i + 1 >= args.size()) {
        bad = true;
      } else {
        checkpoint_path = args[++i];
      }
      return true;
    }
    if (args[i] == "--checkpoint-every") {
      count_value(journal.checkpoint_every);
      return true;
    }
    if (args[i] == "--task-deadline-ms") {
      count_value(journal.task_deadline_ms);
      return true;
    }
    if (args[i] == "--quarantine-after") {
      count_value(journal.quarantine_after);
      return true;
    }
    if (args[i] == "--budget-ms") {
      count_value(journal.budget_ms);
      return true;
    }
    if (args[i] == "--budget-tasks") {
      count_value(journal.budget_tasks);
      return true;
    }
    if (args[i] == "--trip-after") {
      count_value(trip_after_tasks);
      return true;
    }
    return false;
  }
};

/// Appends the supervisor section to a supervised campaign's report and
/// maps the outcome to the process exit code: 75 (EX_TEMPFAIL) when the
/// crash-simulation trip fired — the journal has the partial state — and
/// `ok_code` otherwise.
int finish_supervised(const resilience::SupervisorReport& report, const std::string& format,
                      int ok_code) {
  if (format == "csv" || format == "json") {
    std::cout << "\n" << resilience::supervisor_json(report) << "\n";
  } else {
    std::cout << "\n" << resilience::supervisor_markdown(report);
  }
  return report.tripped ? 75 : ok_code;
}

/// Scales both population specs to roughly PCT percent of the paper's.
void apply_scale(catalog::JavaCatalogSpec& java, catalog::DotNetCatalogSpec& dotnet,
                 std::size_t percent) {
  const auto scaled = [percent](std::size_t value) {
    return std::max<std::size_t>(1, value * percent / 100);
  };
  java.plain_beans = scaled(java.plain_beans);
  java.throwable_clean = scaled(java.throwable_clean);
  java.throwable_raw = scaled(java.throwable_raw);
  java.raw_generic_beans = scaled(java.raw_generic_beans);
  java.anytype_array_beans = scaled(java.anytype_array_beans);
  java.no_default_ctor = scaled(java.no_default_ctor);
  java.abstract_classes = scaled(java.abstract_classes);
  java.interfaces = scaled(java.interfaces);
  java.generic_types = scaled(java.generic_types);
  dotnet.plain_types = scaled(dotnet.plain_types);
  dotnet.dataset_plain = scaled(dotnet.dataset_plain);
  dotnet.deep_nesting_clean = scaled(dotnet.deep_nesting_clean);
  dotnet.deep_nesting_pathological = scaled(dotnet.deep_nesting_pathological);
  dotnet.non_serializable = scaled(dotnet.non_serializable);
  dotnet.no_default_ctor = scaled(dotnet.no_default_ctor);
  dotnet.generic_types = scaled(dotnet.generic_types);
  dotnet.abstract_classes = scaled(dotnet.abstract_classes);
  dotnet.interfaces = scaled(dotnet.interfaces);
}

void apply_scale(interop::StudyConfig& config, std::size_t percent) {
  apply_scale(config.java_spec, config.dotnet_spec, percent);
}

/// Renders a (possibly supervised) study result in the requested format.
/// Shared by `run` and `resume` of a study journal.
void print_study(const interop::StudyResult& result, const std::string& format) {
  if (format == "csv") {
    std::cout << interop::fig4_csv(result) << "\n" << interop::table3_csv(result);
  } else if (format == "markdown") {
    std::cout << interop::fig4_markdown(result) << "\n" << interop::table3_markdown(result);
  } else {
    std::cout << interop::format_fig4(result) << "\n"
              << interop::format_table3(result) << "\n"
              << interop::format_findings(result) << "\n"
              << interop::format_failure_catalog(result);
  }
}

int cmd_run(const std::vector<std::string>& args) {
  interop::StudyConfig config;
  ObsSinks sinks;
  ResilienceFlags res;
  std::string format = "text";
  std::string log_path;
  std::string snapshot_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(config, percent);
    } else if ((args[i] == "--threads" || args[i] == "--jobs") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], config.threads)) return usage();
    } else if (args[i] == "--versions" && i + 1 < args.size()) {
      // Accepted (and validated) for symmetry with the other campaign
      // verbs, but steps 1-3 never touch the wire, so the axis only
      // changes behaviour under communicate/chaos/scorecard.
      if (!parse_versions(args[++i], config.versions)) return 2;
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (args[i] == "--log" && i + 1 < args.size()) {
      log_path = args[++i];
    } else if (args[i] == "--snapshot" && i + 1 < args.size()) {
      snapshot_path = args[++i];
    } else if (args[i] == "--no-parse-cache") {
      config.parse_cache = false;
    } else if (args[i] == "--no-stream") {
      soap::set_streaming(false);
    } else {
      return usage();
    }
  }
  std::ofstream log_file;
  if (!log_path.empty()) {
    log_file.open(log_path);
    if (!log_file) {
      std::cerr << "wsinterop: cannot open log file " << log_path << "\n";
      return 1;
    }
    config.observer = [&log_file](const interop::TestRecord& record) {
      log_file << interop::to_json_line(record) << "\n";
    };
  }
  config.tracer = sinks.tracer_or_null();
  config.metrics = sinks.metrics_or_null();
  interop::StudyResult result;
  resilience::SupervisorReport supervisor;
  if (res.enabled()) {
    interop::SupervisedOptions sup;
    sup.journal = res.journal;
    sup.jobs = config.threads;
    sup.checkpoint_path = res.checkpoint_path;
    sup.trip_after_tasks = res.trip_after_tasks;
    Result<interop::SupervisedStudyResult> supervised =
        interop::run_study_supervised(config, sup);
    if (!supervised.ok()) {
      std::cerr << "wsinterop: " << supervised.error().message << "\n";
      return 1;
    }
    result = std::move(supervised.value().study);
    supervisor = std::move(supervised.value().supervisor);
  } else {
    result = interop::run_study(config);
  }
  if (!sinks.flush()) return 1;
  if (!snapshot_path.empty()) {
    std::ofstream snapshot(snapshot_path);
    if (!snapshot) {
      std::cerr << "wsinterop: cannot open snapshot file " << snapshot_path << "\n";
      return 1;
    }
    snapshot << interop::to_snapshot_csv(result);
  }
  print_study(result, format);
  if (res.enabled()) return finish_supervised(supervisor, format, 0);
  return 0;
}

/// Options shared by file and corpus lint modes.
struct LintOptions {
  std::vector<std::string> files;
  bool corpus = false;
  bool join_study = false;
  std::size_t scale = 100;
  std::size_t jobs = 0;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  analysis::RuleConfig rules;
};

int cmd_lint(const std::vector<std::string>& args) {
  LintOptions options;
  ObsSinks sinks;
  ResilienceFlags res;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--corpus") {
      options.corpus = true;
    } else if (args[i] == "--join-study") {
      options.join_study = true;
    } else if (args[i] == "--strict") {
      options.rules.severity_overrides["WSX1001"] = Severity::kError;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], options.scale)) return usage();
    } else if ((args[i] == "--jobs" || args[i] == "--threads") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], options.jobs)) return usage();
    } else if (args[i] == "--sarif" && i + 1 < args.size()) {
      options.sarif_path = args[++i];
    } else if (args[i] == "--baseline" && i + 1 < args.size()) {
      options.baseline_path = args[++i];
    } else if (args[i] == "--write-baseline" && i + 1 < args.size()) {
      options.write_baseline_path = args[++i];
    } else if (args[i] == "--disable" && i + 1 < args.size()) {
      std::string ids = args[++i];
      std::size_t start = 0;
      while (start <= ids.size()) {
        const std::size_t comma = ids.find(',', start);
        const std::string id =
            ids.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!id.empty()) options.rules.disabled.insert(id);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      options.files.push_back(args[i]);
    }
  }
  // Exactly one input mode: files, or the generated corpus. The resilience
  // flags supervise the corpus lint only — on file lists they are an error.
  if (options.corpus ? !options.files.empty() : options.files.empty()) return usage();
  if (res.enabled() && !options.corpus) return usage();

  analysis::Baseline baseline;
  if (!options.baseline_path.empty()) {
    std::ifstream file(options.baseline_path);
    if (!file) {
      std::cerr << "wsinterop: cannot open baseline " << options.baseline_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Result<analysis::Baseline> parsed = analysis::Baseline::parse(buffer.str());
    if (!parsed.ok()) {
      std::cerr << "wsinterop: " << parsed.error().message << "\n";
      return 1;
    }
    baseline = std::move(parsed.value());
  }

  std::vector<analysis::Finding> findings;
  resilience::SupervisorReport supervisor;
  if (options.corpus) {
    analysis::CorpusOptions corpus;
    apply_scale(corpus.java_spec, corpus.dotnet_spec, options.scale);
    corpus.jobs = options.jobs;
    corpus.rules = options.rules;
    corpus.join_study = options.join_study;
    corpus.tracer = sinks.tracer_or_null();
    corpus.metrics = sinks.metrics_or_null();
    analysis::CorpusReport report;
    if (res.enabled()) {
      analysis::SupervisedCorpusOptions sup;
      sup.journal = res.journal;
      sup.checkpoint_path = res.checkpoint_path;
      sup.trip_after_tasks = res.trip_after_tasks;
      Result<analysis::SupervisedCorpusResult> supervised =
          analysis::analyze_corpus_supervised(corpus, sup);
      if (!supervised.ok()) {
        std::cerr << "wsinterop: " << supervised.error().message << "\n";
        return 1;
      }
      report = std::move(supervised.value().report);
      supervisor = std::move(supervised.value().supervisor);
    } else {
      report = analysis::analyze_corpus(corpus);
    }
    if (!sinks.flush()) return 1;
    findings = report.all_findings();
    std::cout << analysis::format_report(report);
  } else {
    for (const std::string& path : options.files) {
      std::ifstream file(path);
      if (!file) {
        std::cerr << "wsinterop: cannot open " << path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      Result<wsdl::Definitions> defs = wsdl::parse(buffer.str());
      if (!defs.ok()) {
        std::cerr << "wsinterop: parse error in " << path << ": " << defs.error().message
                  << "\n";
        return 1;
      }
      analysis::AnalysisInput input;
      input.definitions = &defs.value();
      input.uri = path;
      const analysis::AnalysisResult result = analysis::analyze(input, options.rules);
      findings.insert(findings.end(), result.findings.begin(), result.findings.end());
    }
  }

  if (!options.write_baseline_path.empty()) {
    if (!write_text_file(options.write_baseline_path,
                         analysis::Baseline::from_findings(findings).str())) {
      return 1;
    }
  }
  const std::size_t before = findings.size();
  findings = analysis::apply_baseline(std::move(findings), baseline);
  if (!options.sarif_path.empty() &&
      !write_text_file(options.sarif_path, analysis::to_sarif(findings))) {
    return 1;
  }
  std::cout << analysis::format_findings(findings);
  std::cout << analysis::summarize(findings);
  if (before != findings.size()) {
    std::cout << " (" << before - findings.size() << " baselined)";
  }
  std::cout << "\n";
  const bool has_errors =
      std::any_of(findings.begin(), findings.end(), [](const analysis::Finding& f) {
        return f.severity == Severity::kError || f.severity == Severity::kCrash;
      });
  if (res.enabled()) return finish_supervised(supervisor, "text", has_errors ? 2 : 0);
  return has_errors ? 2 : 0;
}

const catalog::TypeInfo* find_type(const frameworks::ServerFramework& server,
                                   const std::string& type_name,
                                   catalog::TypeCatalog& storage) {
  storage = server.language() == "C#" ? catalog::make_dotnet_catalog()
                                      : catalog::make_java_catalog();
  return storage.find(type_name);
}

int cmd_describe(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto server = frameworks::make_server(args[0]);
  if (server == nullptr) {
    std::cerr << "wsinterop: unknown server '" << args[0] << "' (see 'wsinterop list')\n";
    return 1;
  }
  catalog::TypeCatalog storage{"", {}};
  const catalog::TypeInfo* type = find_type(*server, args[1], storage);
  if (type == nullptr) {
    std::cerr << "wsinterop: unknown type '" << args[1] << "'\n";
    return 1;
  }
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  if (!service.ok()) {
    std::cerr << "wsinterop: " << service.error().message << "\n";
    return 1;
  }
  std::cout << service->wsdl_text;
  return 0;
}

int cmd_test(const std::vector<std::string>& args_in) {
  std::vector<std::string> args = args_in;
  bool dump = false;
  std::erase_if(args, [&dump](const std::string& arg) {
    if (arg == "--dump") {
      dump = true;
      return true;
    }
    return false;
  });
  if (args.size() != 3) return usage();
  const auto server = frameworks::make_server(args[0]);
  const auto client = frameworks::make_client(args[2]);
  if (server == nullptr || client == nullptr) {
    std::cerr << "wsinterop: unknown framework (see 'wsinterop list')\n";
    return 1;
  }
  catalog::TypeCatalog storage{"", {}};
  const catalog::TypeInfo* type = find_type(*server, args[1], storage);
  if (type == nullptr) {
    std::cerr << "wsinterop: unknown type '" << args[1] << "'\n";
    return 1;
  }
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  if (!service.ok()) {
    std::cout << "step 1 (description): REFUSED — " << service.error().message << "\n";
    return 0;
  }
  std::cout << "step 1 (description): published, WS-I "
            << wsi::check(service->wsdl).summary() << "\n";
  frameworks::GenerationResult generation = client->generate(service->wsdl_text);
  for (const Diagnostic& diagnostic : generation.diagnostics.diagnostics()) {
    std::cout << "step 2 (generation): [" << to_string(diagnostic.severity) << "] "
              << diagnostic.code << ": " << diagnostic.message << "\n";
  }
  if (!generation.produced_artifacts()) {
    std::cout << "step 2 (generation): no artifacts produced\n";
    return 0;
  }
  if (generation.diagnostics.empty()) std::cout << "step 2 (generation): clean\n";
  if (dump) {
    std::cout << "--- generated artifacts ---\n"
              << code::render(*generation.artifacts) << "---------------------------\n";
  }
  if (!client->requires_compilation()) {
    const DiagnosticSink inst = compilers::check_instantiation(*generation.artifacts);
    std::cout << "step 3 (instantiation): " << (inst.empty() ? "clean" : "") << "\n";
    for (const Diagnostic& diagnostic : inst.diagnostics()) {
      std::cout << "step 3 (instantiation): [" << to_string(diagnostic.severity) << "] "
                << diagnostic.message << "\n";
    }
    return 0;
  }
  const auto compiler = compilers::make_compiler(client->language());
  const DiagnosticSink sink = compiler->compile(*generation.artifacts);
  if (sink.empty()) std::cout << "step 3 (compilation): clean\n";
  for (const Diagnostic& diagnostic : sink.diagnostics()) {
    std::cout << "step 3 (compilation): [" << to_string(diagnostic.severity) << "] "
              << diagnostic.code << ": " << diagnostic.message << "\n";
  }
  return 0;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  fuzz::FuzzConfig config;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--corpus" && i + 1 < args.size()) {
      if (!parse_count(args[++i], config.corpus_per_server)) return usage();
    } else {
      return usage();
    }
  }
  std::cout << fuzz::format_fuzz(fuzz::run_fuzz_campaign(config));
  return 0;
}

int cmd_communicate(const std::vector<std::string>& args) {
  interop::StudyConfig config;
  ObsSinks sinks;
  ResilienceFlags res;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(config, percent);
    } else if ((args[i] == "--threads" || args[i] == "--jobs") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], config.threads)) return usage();
    } else if (args[i] == "--versions" && i + 1 < args.size()) {
      if (!parse_versions(args[++i], config.versions)) return 2;
    } else if (args[i] == "--no-parse-cache") {
      config.parse_cache = false;
    } else if (args[i] == "--no-stream") {
      soap::set_streaming(false);
    } else {
      return usage();
    }
  }
  config.tracer = sinks.tracer_or_null();
  config.metrics = sinks.metrics_or_null();
  if (res.enabled()) {
    interop::SupervisedOptions sup;
    sup.journal = res.journal;
    sup.jobs = config.threads;
    sup.checkpoint_path = res.checkpoint_path;
    sup.trip_after_tasks = res.trip_after_tasks;
    Result<interop::SupervisedCommunicationResult> supervised =
        interop::run_communication_supervised(config, sup);
    if (!supervised.ok()) {
      std::cerr << "wsinterop: " << supervised.error().message << "\n";
      return 1;
    }
    if (!sinks.flush()) return 1;
    std::cout << interop::format_communication(supervised.value().communication);
    return finish_supervised(supervised.value().supervisor, "text", 0);
  }
  const interop::CommunicationResult result = interop::run_communication_study(config);
  if (!sinks.flush()) return 1;
  std::cout << interop::format_communication(result);
  return 0;
}

/// Renders a (possibly supervised) chaos result in the requested format;
/// returns 0 on success, 1 on an unwritable --csv file, and the usage exit
/// on an unknown format. Shared by `chaos` and `resume` of a chaos journal.
int print_chaos(const chaos::ChaosResult& result, const std::string& format,
                const std::string& csv_path) {
  if (!csv_path.empty() && !write_text_file(csv_path, chaos::chaos_csv(result))) return 1;
  if (format == "csv") {
    std::cout << chaos::chaos_csv(result);
  } else if (format == "markdown") {
    std::cout << chaos::chaos_markdown(result);
  } else if (format == "json") {
    std::cout << chaos::chaos_recovery_json(result) << "\n";
  } else if (format == "text") {
    std::cout << chaos::format_chaos(result);
  } else {
    return usage();
  }
  return 0;
}

int cmd_chaos(const std::vector<std::string>& args) {
  chaos::ChaosConfig config;
  ObsSinks sinks;
  ResilienceFlags res;
  std::string format = "text";
  std::string csv_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      std::size_t seed = 0;
      if (!parse_count(args[++i], seed)) return usage();
      config.plan.seed = seed;
    } else if (args[i] == "--rate" && i + 1 < args.size()) {
      std::size_t rate = 0;
      if (!parse_count(args[++i], rate) || rate > 100) return usage();
      config.plan.rate_percent = static_cast<unsigned>(rate);
    } else if (args[i] == "--faults" && i + 1 < args.size()) {
      std::stringstream kinds(args[++i]);
      std::string name;
      while (std::getline(kinds, name, ',')) {
        const std::optional<chaos::FaultKind> kind = chaos::parse_fault_kind(name);
        if (!kind.has_value()) {
          std::cerr << "wsinterop: unknown fault kind '" << name << "'; kinds are:";
          for (const chaos::FaultKind known : chaos::all_fault_kinds()) {
            std::cerr << ' ' << chaos::to_string(known);
          }
          std::cerr << "\n";
          return 2;
        }
        config.plan.kinds.push_back(*kind);
      }
    } else if (args[i] == "--versions" && i + 1 < args.size()) {
      if (!parse_versions(args[++i], config.versions)) return 2;
    } else if (args[i] == "--burst" && i + 1 < args.size()) {
      std::size_t burst = 0;
      if (!parse_count(args[++i], burst) || burst == 0) return usage();
      config.plan.max_burst = static_cast<unsigned>(burst);
    } else if (args[i] == "--calls" && i + 1 < args.size()) {
      if (!parse_count(args[++i], config.calls_per_pair) || config.calls_per_pair == 0) {
        return usage();
      }
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(config.java_spec, config.dotnet_spec, percent);
    } else if ((args[i] == "--jobs" || args[i] == "--threads") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], config.jobs)) return usage();
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      csv_path = args[++i];
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (args[i] == "--no-parse-cache") {
      config.parse_cache = false;
    } else if (args[i] == "--no-stream") {
      soap::set_streaming(false);
    } else {
      return usage();
    }
  }
  config.tracer = sinks.tracer_or_null();
  config.metrics = sinks.metrics_or_null();
  if (res.enabled()) {
    chaos::SupervisedChaosOptions sup;
    sup.journal = res.journal;
    sup.checkpoint_path = res.checkpoint_path;
    sup.trip_after_tasks = res.trip_after_tasks;
    Result<chaos::SupervisedChaosResult> supervised = chaos::run_chaos_supervised(config, sup);
    if (!supervised.ok()) {
      std::cerr << "wsinterop: " << supervised.error().message << "\n";
      return 1;
    }
    if (!sinks.flush()) return 1;
    const int rc = print_chaos(supervised.value().chaos, format, csv_path);
    if (rc != 0) return rc;
    return finish_supervised(supervised.value().supervisor, format, 0);
  }
  const chaos::ChaosResult result = chaos::run_chaos_study(config);
  if (!sinks.flush()) return 1;
  return print_chaos(result, format, csv_path);
}

/// Prints the propcheck matrix (or its canonical JSON) and turns property
/// violations into exit 3 so CI can gate on them; supervised trips keep
/// their own exit 75 via finish_supervised.
int print_propcheck(const gen::PropcheckResult& result, const std::string& format,
                    bool with_shrink) {
  if (format == "json") {
    std::cout << gen::propcheck_json(result) << "\n";
  } else if (format == "text") {
    std::cout << gen::format_propcheck(result, with_shrink);
  } else {
    std::cerr << "wsinterop: unknown format '" << format << "'\n";
    return 2;
  }
  return result.total_failures() == 0 ? 0 : 3;
}

/// `wsinterop propcheck` — WSDL-guided property-based testing of the
/// communication phase: generates a schema-valid corpus per operation,
/// replays it through every (service, client) pair, and checks that every
/// case stays inside the contract and classifies like the pair's baseline.
/// --sabotage injects the schema-violation bug the validator must catch;
/// --shrink minimises each counterexample and prints a replay command.
int cmd_propcheck(const std::vector<std::string>& args) {
  gen::GenConfig config;
  ObsSinks sinks;
  ResilienceFlags res;
  std::string format = "text";
  bool with_shrink = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      std::size_t seed = 0;
      if (!parse_count(args[++i], seed)) return usage();
      config.corpus.seed = seed;
    } else if (args[i] == "--cases" && i + 1 < args.size()) {
      if (!parse_count(args[++i], config.corpus.cases_per_operation) ||
          config.corpus.cases_per_operation == 0) {
        return usage();
      }
    } else if (args[i] == "--max-depth" && i + 1 < args.size()) {
      std::size_t depth = 0;
      if (!parse_count(args[++i], depth) || depth > 16) return usage();
      config.corpus.max_depth = static_cast<int>(depth);
    } else if (args[i] == "--sabotage") {
      config.corpus.sabotage = true;
    } else if (args[i] == "--shrink") {
      with_shrink = true;
    } else if (args[i] == "--no-shrink") {
      config.shrink = false;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(config.java_spec, config.dotnet_spec, percent);
    } else if ((args[i] == "--jobs" || args[i] == "--threads") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], config.jobs)) return usage();
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (args[i] == "--no-parse-cache") {
      config.parse_cache = false;
    } else if (args[i] == "--no-stream") {
      soap::set_streaming(false);
    } else {
      return usage();
    }
  }
  if (with_shrink) config.shrink = true;
  config.tracer = sinks.tracer_or_null();
  config.metrics = sinks.metrics_or_null();
  if (res.enabled()) {
    gen::SupervisedGenOptions sup;
    sup.journal = res.journal;
    sup.checkpoint_path = res.checkpoint_path;
    sup.trip_after_tasks = res.trip_after_tasks;
    Result<gen::SupervisedGenResult> supervised = gen::run_propcheck_supervised(config, sup);
    if (!supervised.ok()) {
      std::cerr << "wsinterop: " << supervised.error().message << "\n";
      return 1;
    }
    if (!sinks.flush()) return 1;
    const int rc = print_propcheck(supervised.value().propcheck, format, with_shrink);
    if (rc == 2) return rc;
    return finish_supervised(supervised.value().supervisor, format, rc);
  }
  const gen::PropcheckResult result = gen::run_propcheck(config);
  if (!sinks.flush()) return 1;
  return print_propcheck(result, format, with_shrink);
}

/// `wsinterop predict SERVER TYPE` — single-service static prediction; or
/// `wsinterop predict --corpus` — the whole generated corpus, scored
/// against the dynamic study unless --no-join. The accuracy floors gate on
/// the overall error-class score with integer-percent arithmetic (no
/// floating-point boundary surprises in CI); a miss exits 3.
int cmd_predict(const std::vector<std::string>& args) {
  analysis::predict::PredictOptions options;
  ObsSinks sinks;
  ResilienceFlags res;
  bool corpus = false;
  std::string index_path;
  std::size_t min_precision = 0;
  std::size_t min_recall = 0;
  bool gated = false;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (res.consume(args, i)) {
      if (res.bad) return usage();
    } else if (args[i] == "--corpus") {
      corpus = true;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(options.java_spec, options.dotnet_spec, percent);
    } else if ((args[i] == "--jobs" || args[i] == "--threads") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], options.jobs)) return usage();
      options.study_threads = options.jobs;
    } else if (args[i] == "--no-join") {
      options.join_study = false;
    } else if (args[i] == "--shape" && i + 1 < args.size()) {
      const std::string shape = args[++i];
      if (shape == frameworks::to_string(frameworks::ServiceShape::kSimpleEcho)) {
        options.shape = frameworks::ServiceShape::kSimpleEcho;
      } else if (shape == frameworks::to_string(frameworks::ServiceShape::kCrud)) {
        options.shape = frameworks::ServiceShape::kCrud;
      } else {
        std::cerr << "wsinterop: unknown shape '" << shape << "' (shapes: "
                  << frameworks::to_string(frameworks::ServiceShape::kSimpleEcho) << ", "
                  << frameworks::to_string(frameworks::ServiceShape::kCrud) << ")\n";
        return 2;
      }
    } else if (args[i] == "--index" && i + 1 < args.size()) {
      index_path = args[++i];
    } else if (args[i] == "--min-precision" && i + 1 < args.size()) {
      if (!parse_count(args[++i], min_precision) || min_precision > 100) return usage();
      gated = true;
    } else if (args[i] == "--min-recall" && i + 1 < args.size()) {
      if (!parse_count(args[++i], min_recall) || min_recall > 100) return usage();
      gated = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      positional.push_back(args[i]);
    }
  }
  if (corpus ? !positional.empty() : positional.size() != 2) return usage();
  // Everything but SERVER TYPE is corpus-only; the floors additionally need
  // the ground-truth join to have anything to gate on.
  if (!corpus && (res.enabled() || !index_path.empty() || gated || !options.join_study)) {
    return usage();
  }
  if (gated && !options.join_study) return usage();

  if (!corpus) {
    const auto server = frameworks::make_server(positional[0]);
    if (server == nullptr) {
      std::cerr << "wsinterop: unknown server '" << positional[0]
                << "' (see 'wsinterop list')\n";
      return 1;
    }
    catalog::TypeCatalog storage{"", {}};
    const catalog::TypeInfo* type = find_type(*server, positional[1], storage);
    if (type == nullptr) {
      std::cerr << "wsinterop: unknown type '" << positional[1] << "'\n";
      return 1;
    }
    Result<frameworks::DeployedService> service =
        server->deploy(frameworks::ServiceSpec{type, options.shape});
    if (!service.ok()) {
      std::cerr << "wsinterop: " << service.error().message << "\n";
      return 1;
    }
    const frameworks::SharedDescription description =
        frameworks::SharedDescription::from_deployed(service.value());
    std::cout << analysis::predict::format_service_prediction(
        analysis::predict::predict_service(description));
    return 0;
  }

  options.tracer = sinks.tracer_or_null();
  options.metrics = sinks.metrics_or_null();
  analysis::predict::PredictReport report;
  resilience::SupervisorReport supervisor;
  if (res.enabled()) {
    analysis::predict::SupervisedPredictOptions sup;
    sup.journal = res.journal;
    sup.checkpoint_path = res.checkpoint_path;
    sup.trip_after_tasks = res.trip_after_tasks;
    Result<analysis::predict::SupervisedPredictResult> supervised =
        analysis::predict::predict_corpus_supervised(options, sup);
    if (!supervised.ok()) {
      std::cerr << "wsinterop: " << supervised.error().message << "\n";
      return 1;
    }
    report = std::move(supervised.value().report);
    supervisor = std::move(supervised.value().supervisor);
  } else {
    report = analysis::predict::predict_corpus(options);
  }
  if (!sinks.flush()) return 1;
  if (!index_path.empty() &&
      !write_text_file(index_path,
                       analysis::predict::index_json(
                           analysis::predict::build_index(report)) +
                           "\n")) {
    return 1;
  }
  std::cout << analysis::predict::format_predict_report(report);

  int ok_code = 0;
  if (gated && report.joined) {
    const analysis::predict::ClientScore& overall = report.overall;
    const bool precision_ok =
        100 * overall.true_positives >=
        min_precision * (overall.true_positives + overall.false_positives);
    const bool recall_ok =
        100 * overall.true_positives >=
        min_recall * (overall.true_positives + overall.false_negatives);
    if (!precision_ok || !recall_ok) {
      std::cout << "predict: accuracy below floor (need precision >= " << min_precision
                << "%, recall >= " << min_recall << "%)\n";
      ok_code = 3;
    }
  }
  if (res.enabled()) return finish_supervised(supervisor, "text", ok_code);
  return ok_code;
}

/// `wsinterop substitute` — answers "which service can replace Y for client
/// X" from a serialized substitution index; no corpus rescan happens here.
int cmd_substitute(const std::vector<std::string>& args) {
  analysis::predict::SubstituteQuery query;
  std::string index_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--client" && i + 1 < args.size()) {
      query.client = args[++i];
    } else if (args[i] == "--service" && i + 1 < args.size()) {
      query.service = args[++i];
    } else if (args[i] == "--top" && i + 1 < args.size()) {
      if (!parse_count(args[++i], query.top) || query.top == 0) return usage();
    } else if (args[i] == "--index" && i + 1 < args.size()) {
      index_path = args[++i];
    } else {
      return usage();
    }
  }
  if (query.client.empty() || query.service.empty() || index_path.empty()) return usage();
  std::ifstream file(index_path);
  if (!file) {
    std::cerr << "wsinterop: cannot open index " << index_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<analysis::predict::SubstitutionIndex> index =
      analysis::predict::index_from_json(buffer.str());
  if (!index.ok()) {
    std::cerr << "wsinterop: " << index.error().message << "\n";
    return 1;
  }
  Result<std::vector<analysis::predict::Candidate>> candidates =
      analysis::predict::substitute(index.value(), query);
  if (!candidates.ok()) {
    std::cerr << "wsinterop: " << candidates.error().message << "\n";
    return 1;
  }
  std::cout << analysis::predict::format_candidates(query, candidates.value());
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto read_snapshot =
      [](const std::string& path) -> Result<std::vector<interop::SnapshotCell>> {
    std::ifstream file(path);
    if (!file) return Error{"snapshot.unreadable", "cannot open " + path};
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return interop::parse_snapshot_csv(buffer.str());
  };
  Result<std::vector<interop::SnapshotCell>> before = read_snapshot(args[0]);
  Result<std::vector<interop::SnapshotCell>> after = read_snapshot(args[1]);
  if (!before.ok() || !after.ok()) {
    std::cerr << "wsinterop: "
              << (!before.ok() ? before.error().message : after.error().message) << "\n";
    return 1;
  }
  const std::vector<interop::CellDiff> diff = interop::diff_snapshots(*before, *after);
  std::cout << interop::format_diff(diff);
  return diff.empty() ? 0 : 3;
}

int cmd_scorecard(const std::vector<std::string>& args) {
  bool with_chaos = false;
  std::size_t jobs = 0;
  std::vector<frameworks::VersionPolicy> versions;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--chaos") {
      with_chaos = true;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], jobs)) return usage();
    } else if (args[i] == "--versions" && i + 1 < args.size()) {
      if (!parse_versions(args[++i], versions)) return 2;
    } else {
      return usage();
    }
  }
  interop::StudyConfig study_config;
  study_config.threads = jobs;
  study_config.versions = versions;
  const interop::StudyResult study = interop::run_study(study_config);
  const interop::CommunicationResult communication =
      interop::run_communication_study(study_config);
  fuzz::FuzzConfig fuzz_config;
  fuzz_config.corpus_per_server = 5;
  const fuzz::FuzzReport fuzzing = fuzz::run_fuzz_campaign(fuzz_config);
  if (with_chaos) {
    chaos::ChaosConfig chaos_config;
    chaos_config.jobs = jobs;
    chaos_config.versions = versions;
    const chaos::ChaosResult chaos_result = chaos::run_chaos_study(chaos_config);
    std::cout << interop::format_scorecard(
        interop::build_scorecard(study, communication, fuzzing, chaos_result));
  } else {
    std::cout << interop::format_scorecard(
        interop::build_scorecard(study, communication, fuzzing));
  }
  return 0;
}

/// Runs a sized-down study with tracing and metrics always on and prints
/// the per-phase breakdown — the quickest way to see where a campaign
/// spends its time without setting up export files.
int cmd_profile(const std::vector<std::string>& args) {
  std::size_t scale = 10;
  std::size_t jobs = 0;
  bool parse_cache = true;
  ObsSinks sinks;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return usage();
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], jobs)) return usage();
    } else if (args[i] == "--no-parse-cache") {
      parse_cache = false;
    } else if (args[i] == "--no-stream") {
      soap::set_streaming(false);
    } else {
      return usage();
    }
  }
  interop::StudyConfig config;
  apply_scale(config, scale);
  config.threads = jobs;
  config.parse_cache = parse_cache;
  // Profiling without sinks would be pointless, so both are always live;
  // --trace/--metrics additionally export them.
  config.tracer = &sinks.tracer;
  config.metrics = &sinks.registry;
  const interop::StudyResult result = interop::run_study(config);
  if (!sinks.flush()) return 1;
  std::cout << "profile: study at scale " << scale << "% — " << result.total_tests()
            << " tests\n\n"
            << sinks.tracer.summary() << "\n"
            << sinks.registry.summary();
  return 0;
}

/// `wsinterop resume JOURNAL` — finishes an interrupted supervised campaign.
/// The campaign config and the deterministic supervisor knobs come from the
/// journal header (a fingerprint mismatch is impossible by construction);
/// only the throughput knobs (--jobs), the output format, and the crash
/// simulation may be chosen anew. Checkpointing continues into the same
/// journal file.
int cmd_resume(const std::vector<std::string>& args) {
  std::string journal_path;
  std::size_t jobs = 0;
  std::string format = "text";
  std::size_t trip = 0;
  ObsSinks sinks;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], jobs)) return usage();
    } else if (args[i] == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (args[i] == "--trip-after" && i + 1 < args.size()) {
      if (!parse_count(args[++i], trip)) return usage();
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else if (journal_path.empty()) {
      journal_path = args[i];
    } else {
      return usage();
    }
  }
  if (journal_path.empty()) return usage();

  std::ifstream file(journal_path);
  if (!file) {
    std::cerr << "wsinterop: cannot open journal " << journal_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  // A crash mid-append leaves a truncated last record; that is exactly the
  // situation resume exists for, so tolerate it (the task re-executes) and
  // say so, rather than refusing the whole journal.
  resilience::JournalParseOptions tolerant;
  std::string tail_note;
  tolerant.tolerate_truncated_tail = true;
  tolerant.diagnostic = &tail_note;
  Result<resilience::Journal> parsed = resilience::Journal::parse(buffer.str(), tolerant);
  if (!parsed.ok()) {
    std::cerr << "wsinterop: " << parsed.error().message << "\n";
    return 1;
  }
  if (!tail_note.empty()) {
    std::cerr << "wsinterop: " << journal_path << ": " << tail_note << "\n";
  }
  const resilience::Journal& journal = parsed.value();
  const auto fail = [](const Error& error) {
    std::cerr << "wsinterop: " << error.message << "\n";
    return 1;
  };

  if (journal.campaign == "study") {
    Result<interop::StudyConfig> config = interop::study_config_from_json(journal.config_json);
    if (!config.ok()) return fail(config.error());
    config->threads = jobs;
    config->tracer = sinks.tracer_or_null();
    config->metrics = sinks.metrics_or_null();
    interop::SupervisedOptions sup;
    sup.journal = journal.options;
    sup.jobs = jobs;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<interop::SupervisedStudyResult> result = interop::run_study_supervised(*config, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    print_study(result->study, format);
    return finish_supervised(result->supervisor, format, 0);
  }
  if (journal.campaign == "communication") {
    Result<interop::StudyConfig> config =
        interop::communication_config_from_json(journal.config_json);
    if (!config.ok()) return fail(config.error());
    config->threads = jobs;
    config->tracer = sinks.tracer_or_null();
    config->metrics = sinks.metrics_or_null();
    interop::SupervisedOptions sup;
    sup.journal = journal.options;
    sup.jobs = jobs;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<interop::SupervisedCommunicationResult> result =
        interop::run_communication_supervised(*config, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    std::cout << interop::format_communication(result->communication);
    return finish_supervised(result->supervisor, "text", 0);
  }
  if (journal.campaign == "chaos") {
    Result<chaos::ChaosConfig> config = chaos::chaos_config_from_json(journal.config_json);
    if (!config.ok()) return fail(config.error());
    config->jobs = jobs;
    config->tracer = sinks.tracer_or_null();
    config->metrics = sinks.metrics_or_null();
    chaos::SupervisedChaosOptions sup;
    sup.journal = journal.options;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<chaos::SupervisedChaosResult> result = chaos::run_chaos_supervised(*config, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    const int rc = print_chaos(result->chaos, format, "");
    if (rc != 0) return rc;
    return finish_supervised(result->supervisor, format, 0);
  }
  if (journal.campaign == "propcheck") {
    Result<gen::GenConfig> config = gen::gen_config_from_json(journal.config_json);
    if (!config.ok()) return fail(config.error());
    config->jobs = jobs;
    config->tracer = sinks.tracer_or_null();
    config->metrics = sinks.metrics_or_null();
    gen::SupervisedGenOptions sup;
    sup.journal = journal.options;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<gen::SupervisedGenResult> result = gen::run_propcheck_supervised(*config, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    const int rc = print_propcheck(result->propcheck, format, /*with_shrink=*/true);
    if (rc == 2) return rc;
    return finish_supervised(result->supervisor, format, rc);
  }
  if (journal.campaign == "lint-corpus") {
    Result<analysis::CorpusOptions> options =
        analysis::corpus_config_from_json(journal.config_json);
    if (!options.ok()) return fail(options.error());
    options->jobs = jobs;
    options->tracer = sinks.tracer_or_null();
    options->metrics = sinks.metrics_or_null();
    analysis::SupervisedCorpusOptions sup;
    sup.journal = journal.options;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<analysis::SupervisedCorpusResult> result =
        analysis::analyze_corpus_supervised(*options, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    std::cout << analysis::format_report(result->report);
    return finish_supervised(result->supervisor, "text", 0);
  }
  if (journal.campaign == "predict-corpus") {
    Result<analysis::predict::PredictOptions> options =
        analysis::predict::predict_config_from_json(journal.config_json);
    if (!options.ok()) return fail(options.error());
    options->jobs = jobs;
    options->study_threads = jobs;
    options->tracer = sinks.tracer_or_null();
    options->metrics = sinks.metrics_or_null();
    analysis::predict::SupervisedPredictOptions sup;
    sup.journal = journal.options;
    sup.checkpoint_path = journal_path;
    sup.resume = &journal;
    sup.trip_after_tasks = trip;
    Result<analysis::predict::SupervisedPredictResult> result =
        analysis::predict::predict_corpus_supervised(*options, sup);
    if (!result.ok()) return fail(result.error());
    if (!sinks.flush()) return 1;
    std::cout << analysis::predict::format_predict_report(result->report);
    return finish_supervised(result->supervisor, "text", 0);
  }
  std::cerr << "wsinterop: journal " << journal_path << " names unknown campaign '"
            << journal.campaign << "'\n";
  return 1;
}

/// `wsinterop serve` — loads the corpus once, precomputes every verdict
/// under the resilience supervisor (the cache journal doubles as the warm-
/// restart checkpoint), then answers queries from a script file, a
/// deterministic self-probe, or a localhost TCP listener. Responses for the
/// probe/script paths go to stdout one frame payload per line so the crash
/// drill can diff a cold daemon against a warm-restarted one byte for byte;
/// provenance (how many verdicts were replayed vs recomputed) goes to
/// stderr, which keeps the stdout transcript restart-invariant.
int cmd_serve(const std::vector<std::string>& args) {
  serve::OracleOptions oracle_options;
  serve::DaemonSettings settings;
  ObsSinks sinks;
  bool warm = false;
  bool stats = false;
  std::size_t probe = 0;
  std::string requests_path;
  bool tcp = false;
  std::size_t tcp_port = 0;
  std::size_t tcp_connections = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (sinks.consume(args, i)) {
      continue;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      std::size_t percent = 0;
      if (!parse_count(args[++i], percent)) return usage();
      apply_scale(oracle_options.predict.java_spec, oracle_options.predict.dotnet_spec,
                  percent);
    } else if (args[i] == "--shape" && i + 1 < args.size()) {
      const std::string shape = args[++i];
      if (shape == frameworks::to_string(frameworks::ServiceShape::kSimpleEcho)) {
        oracle_options.predict.shape = frameworks::ServiceShape::kSimpleEcho;
      } else if (shape == frameworks::to_string(frameworks::ServiceShape::kCrud)) {
        oracle_options.predict.shape = frameworks::ServiceShape::kCrud;
      } else {
        std::cerr << "wsinterop: unknown shape '" << shape << "'\n";
        return 2;
      }
    } else if ((args[i] == "--jobs" || args[i] == "--threads") && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], oracle_options.predict.jobs)) return usage();
    } else if (args[i] == "--cache" && i + 1 < args.size()) {
      oracle_options.cache_path = args[++i];
    } else if (args[i] == "--resume") {
      warm = true;
    } else if (args[i] == "--trip-after" && i + 1 < args.size()) {
      if (!parse_count(args[++i], oracle_options.trip_after_tasks)) return usage();
    } else if (args[i] == "--probe" && i + 1 < args.size()) {
      if (!parse_count(args[++i], probe)) return usage();
    } else if (args[i] == "--requests" && i + 1 < args.size()) {
      requests_path = args[++i];
    } else if (args[i] == "--lanes" && i + 1 < args.size()) {
      if (!parse_count(args[++i], settings.admission.lanes) ||
          settings.admission.lanes == 0) {
        return usage();
      }
    } else if (args[i] == "--queue" && i + 1 < args.size()) {
      if (!parse_count(args[++i], settings.admission.queue_capacity)) return usage();
    } else if (args[i] == "--quarantine-after" && i + 1 < args.size()) {
      if (!parse_count(args[++i], settings.quarantine_after) ||
          settings.quarantine_after == 0) {
        return usage();
      }
    } else if (args[i] == "--tcp" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tcp_port) || tcp_port > 65535) return usage();
      tcp = true;
    } else if (args[i] == "--connections" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tcp_connections) || tcp_connections == 0) return usage();
    } else if (args[i] == "--stats") {
      stats = true;
    } else {
      return usage();
    }
  }
  if (warm && oracle_options.cache_path.empty()) return usage();

  // The study join is pointless for a daemon (and slow): serve predictions.
  oracle_options.predict.join_study = false;
  settings.metrics = sinks.metrics_or_null();

  resilience::Journal cache;  // must outlive Oracle::load when resuming
  if (warm) {
    std::ifstream file(oracle_options.cache_path);
    if (!file) {
      std::cerr << "wsinterop: cannot open serve cache " << oracle_options.cache_path
                << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    resilience::JournalParseOptions tolerant;
    std::string tail_note;
    tolerant.tolerate_truncated_tail = true;
    tolerant.diagnostic = &tail_note;
    Result<resilience::Journal> parsed =
        resilience::Journal::parse(buffer.str(), tolerant);
    if (!parsed.ok()) {
      std::cerr << "wsinterop: " << parsed.error().message << "\n";
      return 1;
    }
    if (!tail_note.empty()) {
      std::cerr << "wsinterop: serve cache " << oracle_options.cache_path << ": "
                << tail_note << "\n";
    }
    cache = std::move(parsed.value());
    oracle_options.resume = &cache;
  }

  Result<serve::Oracle> oracle = serve::Oracle::load(oracle_options);
  if (!oracle.ok()) {
    std::cerr << "wsinterop: " << oracle.error().message << "\n";
    return 1;
  }
  const resilience::SupervisorReport precompute = oracle->precompute();
  std::cerr << "serve: " << oracle->services() << " services, "
            << precompute.executed << " predicted, " << precompute.resumed
            << " resumed from cache\n";
  serve::Daemon daemon(std::move(oracle.value()), settings);
  std::uint64_t now_ms = 0;

  if (precompute.tripped) {
    std::cerr << "serve: crash drill tripped after " << precompute.executed
              << " predictions; cache journal holds the partial state\n";
    sinks.flush();
    return 75;
  }

  if (probe > 0) {
    // Deterministic self-traffic against the precomputed paths (lint takes
    // uploads, so the probe skips it). One arrival per virtual millisecond
    // keeps the probe under capacity: every answer is kOk and the stdout
    // transcript depends only on the corpus, never on restart history.
    const std::vector<std::string>& clients = daemon.oracle().clients();
    const auto& records = daemon.oracle().records();
    if (clients.empty() || records.empty()) {
      std::cerr << "wsinterop: serve corpus is empty; nothing to probe\n";
      return 1;
    }
    for (std::size_t i = 0; i < probe; ++i) {
      serve::Request request;
      const std::size_t mix = i % 10;
      request.kind = mix < 6   ? serve::QueryKind::kVerdict
                     : mix < 8 ? serve::QueryKind::kExplain
                               : serve::QueryKind::kSubstitute;
      request.client = clients[i % clients.size()];
      const auto& record = records[(i * 7) % records.size()];
      request.service = record.server + "/" + record.service;
      ++now_ms;
      const serve::Response response = daemon.handle(request, now_ms);
      std::cout << serve::to_string(request.kind) << " " << request.client << " "
                << request.service << " -> " << serve::encode_response(response) << "\n";
    }
  }

  if (!requests_path.empty()) {
    std::ifstream file(requests_path);
    if (!file) {
      std::cerr << "wsinterop: cannot open request script " << requests_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    serve::FrameReader reader;
    reader.feed(buffer.str());
    for (;;) {
      std::string payload;
      Result<bool> next = reader.next(payload);
      if (!next.ok()) {
        std::cerr << "wsinterop: " << requests_path << ": " << next.error().message
                  << "\n";
        return 1;
      }
      if (!next.value()) break;
      ++now_ms;
      serve::Response response;
      Result<serve::Request> request = serve::decode_request(payload);
      if (!request.ok()) {
        response.status = serve::StatusCode::kBadRequest;
        response.reason = request.error().message;
      } else {
        response = daemon.handle(request.value(), now_ms);
      }
      std::cout << serve::encode_response(response) << "\n";
    }
    if (reader.pending() != 0) {
      std::cerr << "wsinterop: " << requests_path << ": " << reader.pending()
                << " trailing bytes do not form a complete frame\n";
      return 1;
    }
  }

  if (tcp) {
    Result<serve::TcpServer> server =
        serve::TcpServer::listen(static_cast<std::uint16_t>(tcp_port));
    if (!server.ok()) {
      std::cerr << "wsinterop: " << server.error().message << "\n";
      return 1;
    }
    std::cerr << "serve: listening on 127.0.0.1:" << server->port() << " for "
              << tcp_connections << " connection(s)\n";
    Result<std::size_t> answered = server->serve(daemon, tcp_connections, now_ms);
    if (!answered.ok()) {
      std::cerr << "wsinterop: " << answered.error().message << "\n";
      return 1;
    }
    std::cerr << "serve: answered " << answered.value() << " request(s) over TCP\n";
  }

  if (stats) std::cout << daemon.stats_body(now_ms) << "\n";
  // --metrics without --stats still deserves the export; stats_body() is
  // what mirrors admission/breaker state into the registry.
  if (!stats && settings.metrics != nullptr) (void)daemon.stats_body(now_ms);
  if (!sinks.flush()) return 1;
  return 0;
}

/// Compares every numeric field of a fresh BENCH_serve.json against a
/// committed baseline. Returns the miss count; each miss prints one line.
std::size_t gate_against_baseline(const json::Value& current, const json::Value& baseline,
                                  std::size_t tolerance_percent) {
  std::size_t misses = 0;
  for (const auto& [key, value] : current.members()) {
    if (!value.is_number()) continue;
    const json::Value* expected = baseline.find(key);
    if (expected == nullptr || !expected->is_number()) {
      std::cout << "loadgen: baseline is missing field '" << key << "'\n";
      ++misses;
      continue;
    }
    const double got = value.as_number();
    const double want = expected->as_number();
    const double slack =
        (want < 0 ? -want : want) * static_cast<double>(tolerance_percent) / 100.0;
    const double delta = got > want ? got - want : want - got;
    if (delta > slack) {
      std::cout << "loadgen: " << key << " = " << got << " outside baseline " << want
                << " +/- " << tolerance_percent << "%\n";
      ++misses;
    }
  }
  return misses;
}

/// `wsinterop loadgen` — the deterministic three-phase overload drill
/// (open, overload, crash + warm-restart recovery) against an in-process
/// daemon. Writes BENCH_serve.json, checks the drill invariants, and
/// optionally gates the fresh numbers against a committed baseline. Exit
/// codes follow the repo gate convention: 3 on an invariant or baseline
/// miss, 1 on IO failure, 2 on usage.
int cmd_loadgen(const std::vector<std::string>& args) {
  serve::LoadgenOptions options;
  std::size_t scale = 25;
  std::string out_path = "BENCH_serve.json";
  std::string check_path;
  std::size_t tolerance = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--scale" && i + 1 < args.size()) {
      if (!parse_count(args[++i], scale)) return usage();
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      std::size_t seed = 0;
      if (!parse_count(args[++i], seed)) return usage();
      options.seed = seed;
    } else if (args[i] == "--queries" && i + 1 < args.size()) {
      if (!parse_count(args[++i], options.queries_per_phase) ||
          options.queries_per_phase == 0) {
        return usage();
      }
    } else if (args[i] == "--lanes" && i + 1 < args.size()) {
      if (!parse_count(args[++i], options.admission.lanes) ||
          options.admission.lanes == 0) {
        return usage();
      }
    } else if (args[i] == "--queue" && i + 1 < args.size()) {
      if (!parse_count(args[++i], options.admission.queue_capacity)) return usage();
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_jobs(args[++i], options.predict.jobs)) return usage();
    } else if (args[i] == "--cache" && i + 1 < args.size()) {
      options.cache_path = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--check" && i + 1 < args.size()) {
      check_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      if (!parse_count(args[++i], tolerance) || tolerance > 100) return usage();
    } else {
      return usage();
    }
  }
  apply_scale(options.predict.java_spec, options.predict.dotnet_spec, scale);

  Result<serve::LoadgenReport> report = serve::run_loadgen(options);
  if (!report.ok()) {
    std::cerr << "wsinterop: " << report.error().message << "\n";
    return 1;
  }
  const std::string doc = serve::loadgen_json(*report, scale, options.seed);
  if (!write_text_file(out_path, doc + "\n")) return 1;

  for (const serve::PhaseStats& phase : report->phases) {
    std::cout << "loadgen: phase " << phase.name << " — sent " << phase.sent << ", ok "
              << phase.ok << ", shed " << phase.shed << ", deadline "
              << phase.deadline_rejected << ", p50 " << phase.p50_ms << "ms, p99 "
              << phase.p99_ms << "ms\n";
  }
  std::cout << "loadgen: warm restart resumed " << report->warm_resumed << " of "
            << (report->warm_resumed + report->warm_executed)
            << " verdicts; recover " << report->recover_ms << "ms vs cold "
            << report->cold_precompute_ms << "ms; cache "
            << (report->fingerprint_match ? "byte-identical" : "MISMATCH") << "\n";

  const std::vector<std::string> violations = serve::check_invariants(*report, options);
  for (const std::string& violation : violations) {
    std::cout << "loadgen: INVARIANT " << violation << "\n";
  }
  if (!violations.empty()) return 3;

  if (!check_path.empty()) {
    std::ifstream file(check_path);
    if (!file) {
      std::cerr << "wsinterop: cannot open baseline " << check_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Result<json::Value> baseline = json::parse(buffer.str());
    Result<json::Value> current = json::parse(doc);
    if (!baseline.ok() || !current.ok()) {
      std::cerr << "wsinterop: "
                << (!baseline.ok() ? baseline.error().message : current.error().message)
                << "\n";
      return 1;
    }
    const std::size_t misses =
        gate_against_baseline(current.value(), baseline.value(), tolerance);
    if (misses != 0) {
      std::cout << "loadgen: " << misses << " field(s) outside baseline " << check_path
                << " (tolerance " << tolerance << "%)\n";
      return 3;
    }
    std::cout << "loadgen: within " << tolerance << "% of baseline " << check_path
              << "\n";
  }
  return 0;
}

int cmd_list() {
  std::cout << "servers:\n";
  for (const auto& server : frameworks::make_servers()) {
    std::cout << "  " << server->name() << "  (" << server->application_server() << ", "
              << server->language() << ")\n";
  }
  std::cout << "clients:\n";
  for (const auto& client : frameworks::make_clients()) {
    std::cout << "  " << client->name() << "  (" << client->tool() << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") return cmd_run(args);
  if (command == "lint") return cmd_lint(args);
  if (command == "describe") return cmd_describe(args);
  if (command == "test") return cmd_test(args);
  if (command == "fuzz") return cmd_fuzz(args);
  if (command == "communicate") return cmd_communicate(args);
  if (command == "chaos") return cmd_chaos(args);
  if (command == "propcheck") return cmd_propcheck(args);
  if (command == "profile") return cmd_profile(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "substitute") return cmd_substitute(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "loadgen") return cmd_loadgen(args);
  if (command == "scorecard") return cmd_scorecard(args);
  if (command == "diff") return cmd_diff(args);
  if (command == "resume") return cmd_resume(args);
  if (command == "list") return cmd_list();
  return usage();
}
