// custom_framework — extending the study with your own framework model,
// the extension path the paper's released tool advertises ("can be used by
// developers and researchers to extend this study"). Implements a strict
// client that rejects any description failing WS-I, and runs it against
// the three stock servers.
#include <iostream>

#include "catalog/java_catalog.hpp"
#include "frameworks/artifact_builder.hpp"
#include "frameworks/registry.hpp"
#include "frameworks/shared_description.hpp"
#include "interop/study.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

namespace {

/// A hypothetical client that enforces WS-I compliance up front — the
/// behaviour the paper argues all tools should have.
class StrictClient final : public frameworks::ClientFramework {
 public:
  std::string name() const override { return "StrictWS 1.0"; }
  std::string tool() const override { return "strictgen"; }
  code::Language language() const override { return code::Language::kJava; }

  using frameworks::ClientFramework::generate;
  frameworks::GenerationResult generate(
      const frameworks::SharedDescription& description) const override {
    frameworks::GenerationResult result;
    if (!description.parsed_ok()) {
      result.diagnostics.error("strictgen.parse", description.parse_error().message);
      return result;
    }
    wsi::Profile profile;
    profile.require_operations = true;  // the paper's minOccurs>=1 advocacy
    const wsi::ComplianceReport report = wsi::check(description.definitions(), profile);
    if (!report.compliant()) {
      result.diagnostics.error("strictgen.ws-i", "description rejected: " + report.summary());
      return result;
    }
    frameworks::ArtifactBuildOptions options;
    options.language = code::Language::kJava;
    result.artifacts =
        frameworks::build_artifacts(description.definitions(), description.features(), options);
    return result;
  }
};

}  // namespace

int main() {
  std::vector<std::unique_ptr<frameworks::ClientFramework>> clients;
  clients.push_back(std::make_unique<StrictClient>());

  const catalog::TypeCatalog java = catalog::make_java_catalog();
  const std::vector<frameworks::ServiceSpec> services = frameworks::make_services(java);

  interop::StudyConfig config;
  for (const auto& server : frameworks::make_servers()) {
    if (server->language() != "Java") continue;
    const interop::ServerResult result =
        interop::run_server_campaign(*server, services, clients, config);
    const interop::CellResult& cell = result.cells.front();
    std::cout << server->name() << ": " << cell.tests << " tests, "
              << cell.generation.errors
              << " rejected by the strict WS-I gate (matches the server's "
              << result.description_warnings << " flagged descriptions)\n";
  }
  std::cout << "\nA WS-I-enforcing client turns every flagged description into a\n"
               "clean, early, attributable failure instead of a downstream one.\n";
  return 0;
}
