// wsi_lint — a WSDL linter. Reads a WSDL from a file (or generates a demo
// description when run without arguments), prints every WS-I Basic Profile
// assertion result, then the full wsx::analysis rule-pack findings (the
// BP-invisible checks: anyType, wildcards, collection types, recursion...).
// Pass --strict to enable the paper's minOccurs>=1 operations rule, --sarif
// FILE to also write the findings as SARIF 2.1.0.
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/registry.hpp"
#include "analysis/sarif.hpp"
#include "catalog/dotnet_catalog.hpp"
#include "frameworks/registry.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

namespace {

int lint(const wsdl::Definitions& defs, const wsi::Profile& profile, std::string uri,
         const std::string& sarif_path) {
  const wsi::ComplianceReport report = wsi::check(defs, profile);
  for (const wsi::AssertionResult& assertion : report.results()) {
    std::cout << "  [" << to_string(assertion.outcome) << "] " << assertion.id << " — "
              << assertion.title;
    if (!assertion.detail.empty()) std::cout << "\n         " << assertion.detail;
    std::cout << "\n";
  }
  std::cout << "result: " << report.summary() << "\n";

  // The same document through the full lint pack: these are the findings
  // the WS-I assertions cannot express.
  analysis::AnalysisInput input;
  input.definitions = &defs;
  input.uri = std::move(uri);
  const analysis::AnalysisResult full = analysis::analyze(input);
  std::cout << "lint: " << analysis::summarize(full.findings) << "\n"
            << analysis::format_findings(full.findings);
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    out << analysis::to_sarif(full.findings);
    std::cout << "sarif written to " << sarif_path << "\n";
  }
  return report.compliant() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  wsi::Profile profile;
  std::string path;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      profile.require_operations = true;
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else {
      path = arg;
    }
  }

  if (path.empty()) {
    // Demo: lint WCF's description of System.Data.DataTable and one
    // DataSet-idiom type.
    const catalog::TypeCatalog types = catalog::make_dotnet_catalog();
    const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
    for (const std::string_view name :
         {catalog::dotnet_names::kDataTable, std::string_view{}}) {
      const catalog::TypeInfo* type = nullptr;
      if (!name.empty()) {
        type = types.find(name);
      } else {
        for (const catalog::TypeInfo& candidate : types.types()) {
          if (candidate.has(catalog::Trait::kDataSetSchema)) {
            type = &candidate;
            break;
          }
        }
      }
      if (type == nullptr) continue;
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{type});
      if (!service.ok()) continue;
      std::cout << "== " << type->qualified_name() << " on " << server->name() << "\n";
      lint(service->wsdl, profile, type->name + ".wsdl", sarif_path);
      std::cout << "\n";
    }
    return 0;
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<wsdl::Definitions> defs = wsdl::parse(buffer.str());
  if (!defs.ok()) {
    std::cerr << "parse error: " << defs.error().message << "\n";
    return 1;
  }
  std::cout << "== " << path << "\n";
  return lint(*defs, profile, path, sarif_path);
}
