// wsi_lint — a WS-I Basic Profile linter for WSDL files. Reads a WSDL from
// a file (or generates a demo description when run without arguments) and
// prints every assertion result. Pass --strict to enable the paper's
// minOccurs>=1 operations rule.
#include <fstream>
#include <iostream>
#include <sstream>

#include "catalog/dotnet_catalog.hpp"
#include "frameworks/registry.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

namespace {

int lint(const wsdl::Definitions& defs, const wsi::Profile& profile) {
  const wsi::ComplianceReport report = wsi::check(defs, profile);
  for (const wsi::AssertionResult& assertion : report.results()) {
    std::cout << "  [" << to_string(assertion.outcome) << "] " << assertion.id << " — "
              << assertion.title;
    if (!assertion.detail.empty()) std::cout << "\n         " << assertion.detail;
    std::cout << "\n";
  }
  std::cout << "result: " << report.summary() << "\n";
  return report.compliant() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  wsi::Profile profile;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      profile.require_operations = true;
    } else {
      path = arg;
    }
  }

  if (path.empty()) {
    // Demo: lint WCF's description of System.Data.DataTable and one
    // DataSet-idiom type.
    const catalog::TypeCatalog types = catalog::make_dotnet_catalog();
    const auto server = frameworks::make_server("WCF .NET 4.0.30319.17929");
    for (const std::string_view name :
         {catalog::dotnet_names::kDataTable, std::string_view{}}) {
      const catalog::TypeInfo* type = nullptr;
      if (!name.empty()) {
        type = types.find(name);
      } else {
        for (const catalog::TypeInfo& candidate : types.types()) {
          if (candidate.has(catalog::Trait::kDataSetSchema)) {
            type = &candidate;
            break;
          }
        }
      }
      if (type == nullptr) continue;
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{type});
      if (!service.ok()) continue;
      std::cout << "== " << type->qualified_name() << " on " << server->name() << "\n";
      lint(service->wsdl, profile);
      std::cout << "\n";
    }
    return 0;
  }

  std::ifstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  Result<wsdl::Definitions> defs = wsdl::parse(buffer.str());
  if (!defs.ok()) {
    std::cerr << "parse error: " << defs.error().message << "\n";
    return 1;
  }
  std::cout << "== " << path << "\n";
  return lint(*defs, profile);
}
