// soap_roundtrip — the Communication (4) and Execution (5) steps the paper
// leaves as future work, driven across *different* frameworks: every
// client that survives generation+compilation invokes the service through
// a serialized SOAP envelope and checks the echoed payload.
#include <iostream>

#include "catalog/java_catalog.hpp"
#include "compilers/compiler.hpp"
#include "frameworks/registry.hpp"
#include "soap/message.hpp"

using namespace wsx;

int main() {
  const catalog::TypeCatalog types = catalog::make_java_catalog();
  const auto servers = frameworks::make_servers();
  const auto clients = frameworks::make_clients();

  // One plain service on each Java server.
  for (const auto& server : servers) {
    if (server->language() != "Java") continue;
    const catalog::TypeInfo* bean = nullptr;
    for (const catalog::TypeInfo& type : types.types()) {
      if (server->can_deploy(type) && !type.has(catalog::Trait::kThrowableDerived) &&
          !type.has(catalog::Trait::kWsaEndpointReference) &&
          !type.has(catalog::Trait::kLegacyDateFormat)) {
        bean = &type;
        break;
      }
    }
    Result<frameworks::DeployedService> service =
        server->deploy(frameworks::ServiceSpec{bean});
    if (!service.ok()) continue;
    std::cout << "== " << server->name() << " serving " << bean->qualified_name() << "\n";

    for (const auto& client : clients) {
      frameworks::GenerationResult generated = client->generate(service->wsdl_text);
      if (!generated.produced_artifacts() || generated.diagnostics.has_errors()) {
        std::cout << "  " << client->name() << ": blocked before communication\n";
        continue;
      }
      // Communication: the client marshals the call...
      Result<soap::Envelope> request =
          soap::build_request(service->wsdl, "echo", {{"arg0", "ping from " + client->name()}});
      if (!request.ok()) {
        std::cout << "  " << client->name() << ": marshalling failed\n";
        continue;
      }
      const std::string wire = soap::write(*request);
      // ...the server executes...
      Result<soap::Envelope> received = soap::parse(wire);
      const soap::Envelope response = server->handle_request(*service, *received);
      // ...and the client unmarshals the response.
      Result<std::string> value = soap::response_value(soap::parse(soap::write(response)).value());
      std::cout << "  " << client->name() << ": "
                << (value.ok() ? "echo ok — '" + *value + "'"
                               : "fault — " + value.error().message)
                << "\n";
    }
    std::cout << "\n";
  }
  return 0;
}
