// service_marketplace — the audition-framework workflow (paper §II related
// work) end to end: providers publish services into a registry whose
// admission audit runs WS-I plus the full client roster; consumers then
// query for services their stack can actually use.
#include <iostream>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "registry/registry.hpp"

using namespace wsx;

int main() {
  registry::ServiceRegistry marketplace;
  const catalog::TypeCatalog java = catalog::make_java_catalog();
  const auto servers = frameworks::make_servers();

  // Publish a representative slice: a few plain beans plus the paper's
  // troublemakers.
  std::size_t published = 0;
  std::size_t plain_budget = 4;
  for (const auto& server : servers) {
    if (server->language() != "Java") continue;
    for (const catalog::TypeInfo& type : java.types()) {
      const bool plain =
          type.traits == (static_cast<std::uint64_t>(catalog::Trait::kDefaultCtor) |
                          static_cast<std::uint64_t>(catalog::Trait::kSerializable));
      const bool troublemaker = type.has(catalog::Trait::kWsaEndpointReference) ||
                                type.has(catalog::Trait::kLegacyDateFormat) ||
                                type.has(catalog::Trait::kAsyncApi) ||
                                type.has(catalog::Trait::kXmlGregorianCalendar);
      if (!plain && !troublemaker) continue;
      if (plain && plain_budget == 0) continue;
      Result<frameworks::DeployedService> service =
          server->deploy(frameworks::ServiceSpec{&type});
      if (!service.ok()) {
        std::cout << "  refused at deployment: " << type.qualified_name() << " on "
                  << server->name() << "\n";
        continue;
      }
      Result<registry::Audit> verdict =
          marketplace.publish(*server, std::move(service.value()));
      if (verdict.ok()) {
        ++published;
        if (plain) --plain_budget;
      }
    }
    break;  // one provider suffices for the demo
  }

  std::cout << "\npublished " << published << " services; registry holds "
            << marketplace.size() << "\n\n";
  std::cout << "audit results:\n";
  for (const registry::Entry* entry : marketplace.find_consumable(registry::Audit::kRed)) {
    std::cout << "  [" << to_string(entry->audit) << "] " << entry->key << " ("
              << entry->type_name << ")";
    if (entry->failing_clients > 0) {
      std::cout << " — " << entry->failing_clients << " client tool(s) cannot consume it";
    }
    std::cout << "\n";
  }

  std::cout << "\nconsumable by every stack (yellow or better):\n";
  for (const registry::Entry* entry :
       marketplace.find_consumable(registry::Audit::kYellow)) {
    std::cout << "  " << entry->key << " @ " << entry->endpoint << "\n";
  }
  std::cout << "\nThe admission audit turns the paper's offline study into an online\n"
               "gate: a consumer querying 'yellow or better' never meets the\n"
               "interoperability failures the study catalogued.\n";
  return 0;
}
