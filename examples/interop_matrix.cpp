// interop_matrix — a scaled-down version of the paper's campaign: a few
// hundred services against all 3 servers and 11 clients, printing the
// per-cell error matrix. Shows how to parameterize StudyConfig.
#include <iomanip>
#include <iostream>

#include "interop/report.hpp"
#include "interop/study.hpp"

using namespace wsx;

int main() {
  interop::StudyConfig config;
  // 1/10-scale populations: same structure, faster run.
  config.java_spec.plain_beans = 178;
  config.java_spec.throwable_clean = 41;
  config.java_spec.throwable_raw = 6;
  config.java_spec.raw_generic_beans = 18;
  config.java_spec.anytype_array_beans = 5;
  config.java_spec.no_default_ctor = 60;
  config.java_spec.abstract_classes = 30;
  config.java_spec.interfaces = 40;
  config.java_spec.generic_types = 18;
  config.dotnet_spec.plain_types = 211;
  config.dotnet_spec.dataset_plain = 6;
  config.dotnet_spec.dataset_duplicated = 2;
  config.dotnet_spec.dataset_nested = 1;
  config.dotnet_spec.dataset_array = 1;
  config.dotnet_spec.encoded_binding = 1;
  config.dotnet_spec.missing_soap_action = 1;
  config.dotnet_spec.deep_nesting_clean = 28;
  config.dotnet_spec.deep_nesting_pathological = 2;
  config.dotnet_spec.generator_crash = 1;
  config.dotnet_spec.non_serializable = 400;
  config.dotnet_spec.no_default_ctor = 350;
  config.dotnet_spec.generic_types = 208;
  config.dotnet_spec.abstract_classes = 120;
  config.dotnet_spec.interfaces = 80;

  const interop::StudyResult result = interop::run_study(config);

  std::cout << "Scaled interoperability matrix (" << result.total_tests() << " tests)\n\n";
  for (const interop::ServerResult& server : result.servers) {
    std::cout << server.server << " — " << server.services_deployed << "/"
              << server.services_created << " services deployed, "
              << server.description_warnings << " flagged by WS-I\n";
    for (const interop::CellResult& cell : server.cells) {
      std::cout << "  " << std::left << std::setw(44) << cell.client << std::right
                << " gen " << std::setw(4) << cell.generation.warnings << "w/" << std::setw(3)
                << cell.generation.errors << "e";
      if (cell.compiled) {
        std::cout << "   compile " << std::setw(4) << cell.compilation.warnings << "w/"
                  << std::setw(3) << cell.compilation.errors << "e";
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "interoperability errors: " << result.total_interop_errors() << "\n";
  return 0;
}
