// fuzz_driver — using the mutation API directly: derive mutants from one
// service description, show each mutant's WS-I verdict next to every
// tool's reaction. A compact version of bench_fuzz for a single service.
#include <iostream>

#include "catalog/java_catalog.hpp"
#include "frameworks/registry.hpp"
#include "fuzz/mutation.hpp"
#include "wsdl/parser.hpp"
#include "wsi/profile.hpp"

using namespace wsx;

int main(int argc, char** argv) {
  const std::string type_name =
      argc > 1 ? argv[1] : std::string(catalog::java_names::kXmlGregorianCalendar);

  const catalog::TypeCatalog catalog = catalog::make_java_catalog();
  const catalog::TypeInfo* type = catalog.find(type_name);
  if (type == nullptr) {
    std::cerr << "unknown type: " << type_name << "\n";
    return 1;
  }
  const auto server = frameworks::make_server("Metro 2.3");
  Result<frameworks::DeployedService> service =
      server->deploy(frameworks::ServiceSpec{type});
  if (!service.ok()) {
    std::cerr << "deployment refused: " << service.error().message << "\n";
    return 1;
  }
  const auto clients = frameworks::make_clients();

  std::cout << "Mutating the description of " << type->qualified_name() << " ("
            << service->wsdl_text.size() << " bytes)\n\n";
  for (const fuzz::Mutant& mutant : fuzz::mutate_all(service->wsdl_text)) {
    std::cout << "== " << to_string(mutant.kind) << ": " << mutant.description << "\n";
    Result<wsdl::Definitions> parsed = wsdl::parse(mutant.wsdl_text);
    if (parsed.ok()) {
      std::cout << "   WS-I: " << wsi::check(*parsed).summary() << "\n";
    } else {
      std::cout << "   WS-I: (document does not parse: " << parsed.error().code << ")\n";
    }
    std::size_t rejected = 0;
    std::size_t warned = 0;
    std::size_t silent = 0;
    for (const auto& client : clients) {
      const frameworks::GenerationResult result = client->generate(mutant.wsdl_text);
      if (result.diagnostics.has_errors()) {
        ++rejected;
      } else if (result.diagnostics.has_warnings()) {
        ++warned;
      } else {
        ++silent;
      }
    }
    std::cout << "   tools: " << rejected << " rejected, " << warned << " warned, " << silent
              << " silent\n";
  }
  return 0;
}
