// regression_watch — tracking framework behaviour across versions with
// snapshots: run the campaign against the stock Axis1, snapshot it, rerun
// with the patched Axis1 (the wrapper-naming fix of §IV.B.3), and diff.
// The diff shows exactly which cells a framework fix changes — the
// workflow the paper's released tool enables for practitioners.
#include <iostream>

#include "catalog/java_catalog.hpp"
#include "frameworks/axis1_client.hpp"
#include "frameworks/registry.hpp"
#include "interop/persistence.hpp"

using namespace wsx;

namespace {

interop::StudyResult run_with_axis1(bool patched) {
  const catalog::TypeCatalog java = catalog::make_java_catalog();
  const std::vector<frameworks::ServiceSpec> services = frameworks::make_services(java);
  std::vector<std::unique_ptr<frameworks::ClientFramework>> clients;
  clients.push_back(std::make_unique<frameworks::Axis1Client>(patched));

  interop::StudyResult result;
  for (const auto& server : frameworks::make_servers()) {
    if (server->language() != "Java") continue;
    result.servers.push_back(
        interop::run_server_campaign(*server, services, clients, interop::StudyConfig{}));
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Baseline: stock Apache Axis1 1.4 against the Java servers\n";
  const interop::StudyResult before = run_with_axis1(/*patched=*/false);
  const std::string before_csv = interop::to_snapshot_csv(before);

  std::cout << "Patched:  Axis1 with the wrapper-naming fix (paper §IV.B.3)\n\n";
  const interop::StudyResult after = run_with_axis1(/*patched=*/true);
  const std::string after_csv = interop::to_snapshot_csv(after);

  Result<std::vector<interop::SnapshotCell>> before_cells =
      interop::parse_snapshot_csv(before_csv);
  Result<std::vector<interop::SnapshotCell>> after_cells =
      interop::parse_snapshot_csv(after_csv);
  if (!before_cells.ok() || !after_cells.ok()) {
    std::cerr << "snapshot round-trip failed\n";
    return 1;
  }
  std::cout << interop::format_diff(interop::diff_snapshots(*before_cells, *after_cells));
  std::cout << "\nThe 477 + 412 = 889 compilation errors the paper attributes to the\n"
               "Exception/Error wrapper naming disappear; nothing else changes.\n";
  return 0;
}
